//! `dmlc` — command-line driver for the dml-rs pipeline.
//!
//! ```text
//! dmlc check <file.dml> [--trace-out FILE]   type-check; report checks
//! dmlc infer <file.dml> [--json]  synthesize + verify range refinements
//! dmlc strip <file.dml>        print the source with annotations removed
//! dmlc explain <file.dml> [--goal N]  render per-obligation proof traces
//! dmlc constraints <file.dml>  print every generated constraint
//! dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE]
//! dmlc run <file.dml> <fun> [ints...]   run a function on integer args
//! dmlc eval <file.dml> <fun> [ints...]  alias for `run`
//! dmlc fuzz [--seed S] [--iters N] [--json]  differential solver fuzzer
//! dmlc figure4                 print the paper's Figure 4 constraints
//! dmlc table <1|2|3> [factor] [--timings]  regenerate an evaluation table
//! dmlc table 1 --infer         Table 1 with annotations stripped + inferred
//! ```
//!
//! `dmlc infer` runs the interval abstract interpreter over every
//! unannotated function, turns the fixpoint into candidate `where`-clauses,
//! and keeps only those the solver verifies — reporting residual bound
//! checks before and after, plus the exact fix-it text for each accepted
//! annotation. `dmlc strip` is its test harness companion: it removes every
//! `where`-clause so a corpus can be round-tripped through inference.
//!
//! Observability (see `docs/ARCHITECTURE.md` for the trace schema):
//!
//! * `dmlc explain` compiles with tracing on and renders each goal's proof
//!   story — hypothesis set, elimination order, fuel, witness — in a
//!   deterministic format (byte-identical across workers/cache settings).
//! * `dmlc check --trace-out trace.json` writes a Chrome trace-event file
//!   (loadable in `chrome://tracing` / Perfetto) with pipeline phase spans,
//!   per-goal solver spans, fuel, and verdict-cache shard occupancy.
//! * `dmlc table 1 --timings` appends per-phase solver latency histograms.
//!
//! Session flags (accepted by `check`, `constraints`, `lint`, `run`/`eval`):
//!
//! * `--fuel N` — per-goal Fourier–Motzkin budget; exhausted goals come
//!   back unknown and their checks stay at run time.
//! * `--deadline-ms N` — per-goal wall-clock budget.
//! * `--strict` — unproven obligations abort compilation (the permissive
//!   default lets them degrade to residual runtime checks).

use dml::experiments;
use dml::{Compiler, Mode, ObKind, Severity, Value};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (compiler, args) = match parse_session_flags(&args) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match args.first().map(String::as_str) {
        Some("check") => check_cmd(&compiler, &args),
        Some("infer") => infer_cmd(&compiler, &args),
        Some("strip") => with_file(&args, strip),
        Some("explain") => explain_cmd(&compiler, &args),
        Some("constraints") => with_file(&args, |src| constraints(&compiler, src)),
        Some("lint") => lint(&compiler, &args),
        Some("run" | "eval") => run(&compiler, &args),
        Some("fuzz") => fuzz(&args),
        Some("figure4") => {
            for line in experiments::figure4() {
                println!("{line}");
            }
            ExitCode::SUCCESS
        }
        Some("table") => table(&args),
        _ => {
            eprintln!(
                "usage: dmlc <check|infer|strip|explain|constraints|lint|run|eval|fuzz|figure4|table> ...\n\
                 \n\
                 dmlc check <file.dml> [--trace-out FILE] [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc infer <file.dml> [--json] [--fuel N] [--deadline-ms N]\n\
                 dmlc strip <file.dml>\n\
                 dmlc explain <file.dml> [--goal N] [--fuel N] [--deadline-ms N]\n\
                 dmlc constraints <file.dml> [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE] [--fuel N] [--strict]\n\
                 dmlc run <file.dml> <fun> [ints...] [--fuel N] [--deadline-ms N] [--strict]\n\
                 dmlc eval <file.dml> <fun> [ints...]   (alias for run)\n\
                 dmlc fuzz [--seed S] [--iters N] [--bound B] [--json] [--infer] [--repro-dir D] [--no-programs]\n\
                 dmlc figure4\n\
                 dmlc table <1|2|3> [factor] [--timings] [--infer]"
            );
            ExitCode::FAILURE
        }
    }
}

/// Extracts the `--fuel` / `--deadline-ms` / `--strict` session flags from
/// anywhere on the command line, returning the configured [`Compiler`] and
/// the remaining arguments.
fn parse_session_flags(args: &[String]) -> Result<(Compiler, Vec<String>), String> {
    let mut compiler = Compiler::new();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fuel" => {
                let v = it.next().ok_or("--fuel expects a number")?;
                let n: u64 =
                    v.parse().map_err(|_| format!("--fuel expects a number, got `{v}`"))?;
                compiler = compiler.fuel(n);
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms expects a number")?;
                let n: u64 =
                    v.parse().map_err(|_| format!("--deadline-ms expects a number, got `{v}`"))?;
                compiler = compiler.deadline(Duration::from_millis(n));
            }
            "--strict" => compiler = compiler.strict(true),
            _ => rest.push(a.clone()),
        }
    }
    Ok((compiler, rest))
}

fn with_file(args: &[String], f: impl Fn(&str) -> ExitCode) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    match std::fs::read_to_string(path) {
        Ok(src) => f(&src),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc check <file> [--trace-out FILE]` — with `--trace-out`, compiles
/// with tracing on and writes a Chrome trace-event file alongside the
/// normal report (which stays byte-identical in the default mode).
fn check_cmd(compiler: &Compiler, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    let mut trace_out: Option<String> = None;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--trace-out" => match rest.next() {
                Some(f) => trace_out = Some(f.clone()),
                None => {
                    eprintln!("--trace-out expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let session = if trace_out.is_some() { compiler.clone().trace(true) } else { compiler.clone() };
    match session.compile(&src) {
        Ok(compiled) => {
            if let Some(out_path) = &trace_out {
                let trace = dml::chrome_trace(&compiled, &src, path);
                if let Err(e) = std::fs::write(out_path, trace.render()) {
                    eprintln!("cannot write {out_path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("trace written to {out_path} ({} events)", trace.len());
            }
            report_check(&compiled, &src)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc infer <file> [--json]` — compiles with inference enabled and
/// prints the before/after residual-check report: accepted annotations
/// (with fix-it text), rejected candidates (with the solver's reason), and
/// the honestly-residual sites.
fn infer_cmd(compiler: &Compiler, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc infer <file.dml> [--json]");
        return ExitCode::FAILURE;
    };
    let mut json = false;
    for flag in &args[2..] {
        match flag.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.clone().infer(true).compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(report) = compiled.infer_report() else {
        eprintln!("inference produced no report (internal error)");
        return ExitCode::FAILURE;
    };
    if json {
        println!("{}", report.render_json(&src));
    } else {
        print!("{}", report.render_human(&src));
    }
    ExitCode::SUCCESS
}

/// `dmlc strip <file>` — prints the source with every `where`-annotation
/// removed (the inference test harness's corpus generator).
fn strip(src: &str) -> ExitCode {
    match dml::strip_annotations(src) {
        Ok(stripped) => {
            print!("{stripped}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc explain <file> [--goal N]` — renders the deterministic per-goal
/// proof traces of a traced compile.
fn explain_cmd(compiler: &Compiler, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc explain <file.dml> [--goal N]");
        return ExitCode::FAILURE;
    };
    let mut goal: Option<usize> = None;
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--goal" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => goal = Some(n),
                None => {
                    eprintln!("--goal expects a goal number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compiler.clone().trace(true).compile(&src) {
        Ok(compiled) => {
            if let Some(n) = goal {
                let total = compiled.goal_count();
                if n == 0 || n > total {
                    match total {
                        0 => eprintln!("goal {n} does not exist: the program has no solver goals"),
                        1 => eprintln!("goal {n} does not exist: the only valid goal is 1"),
                        _ => eprintln!("goal {n} does not exist: valid goals are 1..={total}"),
                    }
                    return ExitCode::FAILURE;
                }
            }
            print!("{}", dml::render_explain(&compiled, &src, goal));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc fuzz [--seed S] [--iters N] [--bound B] [--json] [--infer]
/// [--repro-dir D] [--no-programs]` — runs the differential solver fuzzer
/// (`dml-oracle`): random goals are decided by the production solver under
/// a configuration matrix and cross-checked against two independent
/// reference deciders, with metamorphic and end-to-end program properties
/// alongside. `--infer` additionally strips each corpus program, re-infers
/// its annotations, and cross-checks every solver-proven obligation of the
/// refined program against the exact-rational oracle. Exits FAILURE if any
/// divergence is found; repro files land in `--repro-dir`.
fn fuzz(args: &[String]) -> ExitCode {
    let mut cfg = dml_oracle::FuzzConfig::default();
    let mut json = false;
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(s) => cfg.seed = s,
                None => {
                    eprintln!("--seed expects a number");
                    return ExitCode::FAILURE;
                }
            },
            "--iters" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.iters = n,
                None => {
                    eprintln!("--iters expects a number");
                    return ExitCode::FAILURE;
                }
            },
            "--bound" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(b) if b > 0 => cfg.bound = b,
                _ => {
                    eprintln!("--bound expects a positive number");
                    return ExitCode::FAILURE;
                }
            },
            "--repro-dir" => match rest.next() {
                Some(d) => cfg.repro_dir = Some(std::path::PathBuf::from(d)),
                None => {
                    eprintln!("--repro-dir expects a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = true,
            "--infer" => cfg.infer = true,
            "--no-programs" => cfg.programs = false,
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = dml_oracle::run_fuzz(&cfg);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn report_check(compiled: &dml::Compiled, src: &str) -> ExitCode {
    let stats = compiled.stats();
    println!(
        "{} constraints generated ({} goals), {:.1} ms generation, {:.1} ms solving",
        stats.constraints,
        stats.goals,
        stats.generation_time.as_secs_f64() * 1e3,
        stats.solve_time.as_secs_f64() * 1e3,
    );
    println!(
        "solver cache: {} hits, {} misses",
        stats.solver.cache_hits, stats.solver.cache_misses
    );
    println!(
        "proven check sites: {}; unproven: {}",
        compiled.proven_sites().len(),
        compiled.unproven_sites().len()
    );
    for (site, con) in compiled.match_warnings() {
        println!(
            "warning: match at {site} may not be exhaustive (constructor `{con}` \
             not provably impossible)"
        );
    }
    if compiled.fully_verified() {
        println!("fully verified: all run-time checks at proven sites are eliminated");
        return ExitCode::SUCCESS;
    }
    // Not fully verified. In permissive mode, unproven *check*
    // obligations degrade gracefully to residual runtime checks;
    // only failed non-check obligations (type equations, guards)
    // make the program ill-typed.
    let ill_typed = compiled
        .failures()
        .any(|(o, _)| !o.kind.is_check() && !matches!(o.kind, ObKind::Unreachable { .. }));
    for rc in compiled.residual_checks() {
        println!("{rc}");
    }
    if ill_typed {
        println!("NOT fully verified; unproven obligations:\n");
        print!("{}", compiled.explain_failures(src));
        ExitCode::FAILURE
    } else {
        println!(
            "{} residual runtime check(s) remain (permissive mode; \
             use --strict to make this an error)",
            compiled.residual_checks().len()
        );
        ExitCode::SUCCESS
    }
}

fn constraints(compiler: &Compiler, src: &str) -> ExitCode {
    match compiler.compile(src) {
        Ok(compiled) => {
            let mut unproven = 0usize;
            for (o, r) in compiled.obligations() {
                if !r.is_proven() {
                    unproven += 1;
                }
                println!("{o}  [{}]", if r.is_proven() { "valid" } else { "NOT PROVEN" });
            }
            // To stderr: cache counters vary with solver configuration,
            // while stdout stays byte-identical across workers/cache
            // settings (the determinism contract of the solve phase).
            let stats = compiled.stats();
            eprintln!(
                "solver cache: {} hits, {} misses",
                stats.solver.cache_hits, stats.solver.cache_misses
            );
            if unproven > 0 {
                eprintln!("{unproven} obligation(s) not proven");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `dmlc lint <file> [--format human|json|sarif] [--deny CODE]`
///
/// Exit code contract: FAILURE on compile errors, on unknown flags, and
/// whenever any finding has error severity (a `--deny`'d code promotes its
/// findings to errors); SUCCESS otherwise, warnings included.
fn lint(compiler: &Compiler, args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: dmlc lint <file.dml> [--format human|json|sarif] [--deny CODE]");
        return ExitCode::FAILURE;
    };
    let mut format = "human".to_string();
    let mut deny: Vec<&'static str> = Vec::new();
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--format" => match rest.next().map(String::as_str) {
                Some(f @ ("human" | "json" | "sarif")) => format = f.to_string(),
                other => {
                    eprintln!(
                        "--format expects human|json|sarif, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--deny" => match rest.next().and_then(|c| dml::lint_by_code(c)) {
                Some(l) => deny.push(l.code),
                None => {
                    eprintln!("--deny expects a known lint code (DML001..DML007) or name");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut findings = compiled.lints();
    for f in &mut findings {
        if deny.contains(&f.code) {
            f.severity = Severity::Error;
        }
    }
    match format.as_str() {
        "human" => print!("{}", dml::render::human(&findings, &src)),
        "json" => print!("{}", dml::render::json(&findings, &src)),
        "sarif" => print!("{}", dml::render::sarif(&findings, &src, path)),
        _ => unreachable!("validated above"),
    }
    if findings.iter().any(|f| f.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run(compiler: &Compiler, args: &[String]) -> ExitCode {
    let (Some(path), Some(fun)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: dmlc run <file.dml> <fun> [ints...]");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match compiler.compile(&src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ints = Vec::new();
    for a in &args[3..] {
        match a.parse::<i64>() {
            Ok(n) => ints.push(Value::Int(n)),
            Err(_) => {
                eprintln!("argument `{a}` is not an integer");
                return ExitCode::FAILURE;
            }
        }
    }
    let call_args = match ints.len() {
        0 => vec![Value::Unit],
        1 => ints,
        _ => vec![Value::Tuple(std::rc::Rc::new(ints))],
    };
    let mut machine = compiled.machine(Mode::Eliminated);
    match machine.call(fun, call_args) {
        Ok(v) => {
            println!("{v}");
            println!(
                "checks: {} executed ({} residual), {} eliminated",
                machine.counters.executed(),
                machine.counters.residual(),
                machine.counters.eliminated()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn table(args: &[String]) -> ExitCode {
    let timings = args.iter().any(|a| a == "--timings");
    let infer = args.iter().any(|a| a == "--infer");
    let rest: Vec<&String> = args.iter().filter(|a| *a != "--timings" && *a != "--infer").collect();
    let which = rest.get(1).map(|s| s.as_str()).unwrap_or("1");
    let factor: u32 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    match which {
        "1" if infer => {
            print!("{}", experiments::table1_infer_rendered(&experiments::table1_infer()));
        }
        "1" => {
            let rows = experiments::table1();
            print!("{}", experiments::table1_rows_rendered(&rows));
            if timings {
                print!("{}", experiments::table1_timings(&rows));
            }
        }
        "2" => print!("{}", experiments::table_rendered(&experiments::table2(factor))),
        "3" => print!("{}", experiments::table_rendered(&experiments::table3(factor))),
        other => {
            eprintln!("unknown table `{other}` (expected 1, 2, or 3)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
