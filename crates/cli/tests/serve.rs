//! Integration tests for the persistent check service: the on-disk
//! verdict cache across separate processes, and the `dmlc serve` daemon's
//! determinism contract against one-shot `dmlc check`.

use dml::serve::protocol::{request_line, Json, Value};
use std::io::Write;
use std::process::{Command, Stdio};

fn dmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmlc"))
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dmlc-serve-tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_file(dir: &std::path::Path, name: &str, contents: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

const PROGRAM: &str = "\
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int

fun second(v) = sub(v, 1)
where second <| {n:nat | n > 1} int array(n) -> int
";

/// The same program alpha-renamed: different variable and function names,
/// identical canonical goals.
const PROGRAM_RENAMED: &str = "\
fun head_elem(arr) = sub(arr, 0)
where head_elem <| {len:nat | len > 0} int array(len) -> int

fun next_elem(arr) = sub(arr, 1)
where next_elem <| {len:nat | len > 1} int array(len) -> int
";

#[test]
fn disk_cache_round_trips_across_processes() {
    let dir = temp_dir("round-trip");
    let cache = dir.join("verdicts.db");
    let a = write_file(&dir, "a.dml", PROGRAM);
    let b = write_file(&dir, "b.dml", PROGRAM_RENAMED);

    // Process 1: cold, populates the store.
    let out = dmlc().arg("check").arg(&a).arg("--disk-cache").arg(&cache).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(cache.exists(), "first process persisted the store");

    // Process 2: a *different* process checking the alpha-renamed program
    // answers its goals from disk.
    let out = dmlc().arg("check").arg(&b).arg("--disk-cache").arg(&cache).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stdout.contains("from disk)"), "renamed duplicates hit the disk tier:\n{stdout}");
    assert!(stdout.contains("0 misses"), "every goal was already known:\n{stdout}");
    assert!(stderr.contains("verdict(s) loaded"), "{stderr}");
}

#[test]
fn corrupted_or_stale_cache_is_ignored_not_fatal() {
    let dir = temp_dir("corrupt");
    let src = write_file(&dir, "p.dml", PROGRAM);
    for (name, contents) in [
        ("garbage.db", "not a cache file at all\n\x00\x01\x02"),
        ("old.db", "dml-verdict-cache 0 logic 0\ndeadbeefdeadbeef u P\n"),
        ("truncated.db", "dml-verdict-cache 1 logic 1\n0123 u"),
    ] {
        let cache = write_file(&dir, name, contents);
        let out = dmlc().arg("check").arg(&src).arg("--disk-cache").arg(&cache).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{name} must not be fatal: {stderr}");
        assert!(stderr.contains("0 verdict(s) loaded"), "{name} treated as empty: {stderr}");
        // The bad file is replaced with a valid store on flush.
        let rewritten = std::fs::read_to_string(&cache).unwrap();
        assert!(rewritten.starts_with("dml-verdict-cache 1 logic "), "{name}: {rewritten}");
    }
}

/// Drives a `dmlc serve` daemon over stdio and returns one parsed response
/// per request line.
fn drive_daemon(requests: &[String]) -> Vec<Value> {
    let mut child = dmlc()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdin = child.stdin.take().unwrap();
    for r in requests {
        stdin.write_all(r.as_bytes()).unwrap();
    }
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    text.lines().map(|l| Value::parse(l).expect("daemon speaks valid JSON")).collect()
}

#[test]
fn daemon_check_is_byte_identical_to_one_shot_and_reports_warm_hits() {
    let dir = temp_dir("daemon");
    let src_path = write_file(&dir, "p.dml", PROGRAM);

    let one_shot = dmlc().arg("check").arg(&src_path).output().unwrap();
    assert!(one_shot.status.success());
    let one_shot_body = dml::stable_body(&String::from_utf8_lossy(&one_shot.stdout));

    let check = |id: i64| {
        request_line(
            id,
            "check",
            vec![
                ("source", Json::Str(PROGRAM.to_string())),
                ("path", Json::Str("p.dml".to_string())),
            ],
        )
    };
    let responses = drive_daemon(&[
        check(1),
        check(2), // warm: same file again
        request_line(3, "stats", Vec::new()),
        request_line(4, "shutdown", Vec::new()),
    ]);
    assert_eq!(responses.len(), 4);

    for (i, response) in responses[..2].iter().enumerate() {
        let result = response.get("result").unwrap_or_else(|| panic!("check {i} succeeds"));
        let report = result.get("report").and_then(Value::as_str).expect("report is a string");
        assert_eq!(
            dml::stable_body(report),
            one_shot_body,
            "daemon check {i} diverged from one-shot output"
        );
        assert_eq!(result.get("fullyVerified").and_then(Value::as_bool), Some(true));
    }

    // The warm re-check reused every obligation without touching the
    // solver.
    let warm = responses[1].get("result").unwrap();
    assert_eq!(warm.get("incremental").and_then(Value::as_bool), Some(true));
    let warm_stats = warm.get("stats").unwrap();
    assert_eq!(warm_stats.get("goals").and_then(Value::as_i64), Some(0));
    let reused = warm_stats.get("obligationsReused").and_then(Value::as_i64).unwrap();
    assert!(reused > 0, "obligations were reused");

    let stats = responses[2].get("result").expect("stats succeeds");
    assert_eq!(stats.get("requests").and_then(|r| r.get("check")).and_then(Value::as_i64), Some(2));
    assert!(responses[3].get("result").is_some(), "shutdown acknowledged");
}

#[test]
fn daemon_warm_goal_cache_answers_pathless_checks() {
    // Without a `path` the daemon skips incremental reuse, so the second
    // identical check exercises the shared goal cache instead.
    let check =
        |id: i64| request_line(id, "check", vec![("source", Json::Str(PROGRAM.to_string()))]);
    let responses = drive_daemon(&[check(1), check(2), request_line(3, "shutdown", Vec::new())]);
    let warm = responses[1].get("result").expect("warm check succeeds");
    let stats = warm.get("stats").unwrap();
    assert_eq!(warm.get("incremental").and_then(Value::as_bool), Some(false));
    assert_eq!(stats.get("cacheMisses").and_then(Value::as_i64), Some(0));
    let hits = stats.get("cacheHits").and_then(Value::as_i64).unwrap();
    assert!(hits > 0, "warm goal-cache hit rate > 0, got {stats:?}");
}

#[test]
fn daemon_rejects_wrong_schema_and_survives() {
    let responses = drive_daemon(&[
        "{\"schemaVersion\":99,\"id\":1,\"method\":\"check\"}\n".to_string(),
        request_line(2, "stats", Vec::new()),
        request_line(3, "shutdown", Vec::new()),
    ]);
    assert_eq!(
        responses[0].get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("unsupported-schema")
    );
    assert!(responses[1].get("result").is_some(), "daemon kept serving after the error");
}

#[cfg(unix)]
#[test]
fn remote_flag_round_trips_through_a_socket_daemon() {
    let dir = temp_dir("remote");
    let src_path = write_file(&dir, "p.dml", PROGRAM);
    let sock = dir.join("dmlc.sock");
    let _ = std::fs::remove_file(&sock);

    let mut daemon =
        dmlc().arg("serve").arg("--socket").arg(&sock).stderr(Stdio::null()).spawn().unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sock.exists() {
        assert!(std::time::Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let one_shot = dmlc().arg("check").arg(&src_path).output().unwrap();
    let remote = dmlc().arg("check").arg(&src_path).arg("--remote").arg(&sock).output().unwrap();
    assert!(remote.status.success(), "{}", String::from_utf8_lossy(&remote.stderr));
    assert_eq!(
        dml::stable_body(&String::from_utf8_lossy(&remote.stdout)),
        dml::stable_body(&String::from_utf8_lossy(&one_shot.stdout)),
        "remote and one-shot check output diverged"
    );

    // `explain` must be byte-identical including volatile-free trace text.
    let one_shot = dmlc().arg("explain").arg(&src_path).output().unwrap();
    let remote = dmlc().arg("explain").arg(&src_path).arg("--remote").arg(&sock).output().unwrap();
    assert_eq!(
        String::from_utf8_lossy(&remote.stdout),
        String::from_utf8_lossy(&one_shot.stdout),
        "explain output must match byte for byte"
    );

    let stats = dmlc().arg("stats").arg("--remote").arg(&sock).output().unwrap();
    assert!(stats.status.success());
    assert!(String::from_utf8_lossy(&stats.stdout).contains("\"requests\""));

    let shutdown = dmlc().arg("shutdown").arg("--remote").arg(&sock).output().unwrap();
    assert!(shutdown.status.success());
    assert!(daemon.wait().unwrap().success(), "daemon exits cleanly on shutdown");
    assert!(!sock.exists(), "socket file removed on shutdown");
}
