//! Integration tests for `dmlc check --jobs N <files...>`: the merged
//! batch report must be byte-identical to the concatenation of
//! sequential single-file `dmlc check` runs (modulo the volatile timing
//! and cache lines), and a shared `--disk-cache` store must serve
//! verdicts across processes and files.

use std::io::Write;
use std::process::Command;

fn dmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmlc"))
}

fn write_temp(dir: &str, name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

/// Strips the volatile report lines (wall times, cache counters) the same
/// way `dml::stable_body` does, leaving the byte-comparable remainder.
fn stable(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.starts_with("solver cache:") && !l.starts_with("solve timing:"))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// Guard `i + 1 < n` needs a real Fourier–Motzkin derivation (no
/// assumption fast path), so its goal travels through the verdict cache —
/// which is what the disk-hit test depends on.
const ALPHA: &str = "fun fa(v, i) = sub(v, i)\n\
                     where fa <| {n:nat, i:nat | i + 1 < n} int array(n) * int(i) -> int\n";
const BETA: &str = "fun gb(w, j) = sub(w, j)\n\
                    where gb <| {m:nat, j:nat | j + 1 < m} int array(m) * int(j) -> int\n";
const GAMMA: &str = "fun hc(u, k) = sub(u, k)\n\
                     where hc <| {p:nat, k:nat | k + 1 < p} int array(p) * int(k) -> int\n";
const RESIDUAL: &str = "fun loose(v, i) = sub(v, i)\n\
                        where loose <| {n:nat, i:nat} int array(n) * int(i) -> int\n";

#[test]
fn jobs_merged_report_matches_sequential_single_file_runs() {
    let files = [
        write_temp("dmlc-jobs", "a.dml", ALPHA),
        write_temp("dmlc-jobs", "b.dml", BETA),
        write_temp("dmlc-jobs", "c.dml", RESIDUAL),
    ];

    // Reference: one `dmlc check` process per file, concatenated under
    // the batch header format.
    let mut expected = String::new();
    for path in &files {
        let out = dmlc().arg("check").arg(path).output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        expected.push_str(&format!("== {} ==\n", path.display()));
        expected.push_str(&String::from_utf8_lossy(&out.stdout));
    }

    for jobs in ["1", "2", "auto"] {
        let out = dmlc().arg("check").args(&files).args(["--jobs", jobs]).output().unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "--jobs {jobs}: {stderr}");
        assert_eq!(
            stable(&stdout),
            stable(&expected),
            "--jobs {jobs} merged report diverged from sequential runs"
        );
        assert!(stderr.contains("batch: 3 file(s), 0 failed"), "--jobs {jobs}: {stderr}");
    }
}

#[test]
fn jobs_batch_counts_failures_without_aborting() {
    let ok = write_temp("dmlc-jobs-fail", "ok.dml", ALPHA);
    let broken = write_temp("dmlc-jobs-fail", "broken.dml", "fun oops(v) = sub(v,\n");
    let out = dmlc().arg("check").arg(&ok).arg(&broken).args(["--jobs", "2"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a failing file fails the batch exit code");
    assert!(stdout.contains("fully verified"), "healthy file still reported: {stdout}");
    assert!(stdout.contains("error:"), "broken file's error in the merged report: {stdout}");
    assert!(stderr.contains("1 failed"), "{stderr}");
}

#[test]
fn jobs_rejects_bad_values() {
    let path = write_temp("dmlc-jobs-bad", "a.dml", ALPHA);
    let out = dmlc().arg("check").arg(&path).args(["--jobs", "zero"]).output().unwrap();
    assert!(!out.status.success());
    let out = dmlc().arg("check").arg(&path).arg("--jobs").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn shared_disk_cache_serves_verdicts_across_processes_and_files() {
    let store = std::env::temp_dir().join("dmlc-jobs-disk").join("verdicts.store");
    std::fs::create_dir_all(store.parent().unwrap()).unwrap();
    let _ = std::fs::remove_file(&store);
    let a = write_temp("dmlc-jobs-disk", "a.dml", ALPHA);
    let b = write_temp("dmlc-jobs-disk", "b.dml", BETA);
    let c = write_temp("dmlc-jobs-disk", "c.dml", GAMMA);

    // Process 1 populates the store from file A alone.
    let out = dmlc()
        .arg("check")
        .arg(&a)
        .args(["--disk-cache", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(store.exists(), "priming run must flush the store");

    // Process 2 checks B and C — α-variants of A's goal — with a cold
    // in-memory cache: the verdict must arrive through the disk tier, and
    // the batch summary must say so.
    let out = dmlc()
        .arg("check")
        .arg(&b)
        .arg(&c)
        .args(["--jobs", "2", "--disk-cache", store.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let summary = stderr.lines().find(|l| l.starts_with("batch:")).unwrap_or_else(|| {
        panic!("no batch summary on stderr: {stderr}");
    });
    let disk_hits: usize = summary
        .split(',')
        .find_map(|part| part.trim().strip_suffix(" disk hits"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no disk-hit count in summary: {summary}"));
    assert!(disk_hits > 0, "cross-file run served nothing from the disk tier: {summary}");
}
