//! Integration tests driving the `dmlc` binary end to end.

use std::io::Write;
use std::process::Command;

fn dmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmlc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dmlc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GOOD: &str = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
fun make(k) = array(k, 7)
where make <| {k:nat} int(k) -> int array(k)
fun demo(k) = first(array(k, 7))
where demo <| {k:nat | k > 0} int(k) -> int
"#;

const BAD: &str = r#"
fun oops(v) = sub(v, length v)
where oops <| {n:nat} int array(n) -> int
"#;

#[test]
fn check_reports_verified() {
    let path = write_temp("good.dml", GOOD);
    let out = dmlc().arg("check").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("fully verified"), "{stdout}");
}

#[test]
fn check_degrades_gracefully_in_permissive_mode() {
    let path = write_temp("bad.dml", BAD);
    let out = dmlc().arg("check").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "unproven bounds degrade to residual checks: {stdout}");
    assert!(stdout.contains("residual runtime check"), "{stdout}");
    assert!(stdout.contains("array bound check for `sub`"), "{stdout}");
}

#[test]
fn check_strict_rejects_unproven_obligations() {
    let path = write_temp("bad-strict.dml", BAD);
    let out = dmlc().args(["check"]).arg(&path).arg("--strict").output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "--strict fails on unproven bounds");
    assert!(stderr.contains("unproven obligation(s) in strict mode"), "{stderr}");
    assert!(stderr.contains("array bound check for `sub`"), "{stderr}");
}

#[test]
fn check_low_fuel_stays_permissive() {
    let src = "fun first(v) = sub(v, 0)\nwhere first <| {n:nat | n > 0} int array(n) -> int\n";
    let path = write_temp("fuel.dml", src);
    let out = dmlc().args(["check"]).arg(&path).args(["--fuel", "0"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "fuel exhaustion degrades gracefully: {stdout}");
    assert!(stdout.contains("residual runtime check"), "{stdout}");
    // The same budget under --strict is an error.
    let out = dmlc().args(["check"]).arg(&path).args(["--fuel", "0", "--strict"]).output().unwrap();
    assert!(!out.status.success(), "--fuel 0 --strict fails");
}

#[test]
fn run_executes_a_function() {
    let path = write_temp("run.dml", GOOD);
    let out = dmlc().args(["run"]).arg(&path).args(["demo", "5"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.lines().next().unwrap().trim() == "7", "{stdout}");
    assert!(stdout.contains("eliminated"), "{stdout}");
}

#[test]
fn constraints_lists_obligations() {
    let path = write_temp("cons.dml", GOOD);
    let out = dmlc().arg("constraints").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("array bound check for `sub`"), "{stdout}");
    assert!(stdout.contains("[valid]"), "{stdout}");
}

#[test]
fn constraints_fails_when_obligations_unproven() {
    let path = write_temp("cons-bad.dml", BAD);
    let out = dmlc().arg("constraints").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "unproven obligations must fail the exit code");
    assert!(stdout.contains("NOT PROVEN"), "{stdout}");
    assert!(stderr.contains("not proven"), "{stderr}");
}

/// A deliberately redundant guard (`i < n` hypothesis makes the condition
/// entailed) for the lint tests.
const LINTY: &str = r#"
fun get(v, i) = if i < length(v) then sub(v, i) else 0
where get <| {n:nat, i:nat | i < n} int array(n) * int(i) -> int
"#;

#[test]
fn lint_reports_dead_branch_but_exits_zero_on_warnings() {
    let path = write_temp("linty.dml", LINTY);
    let out = dmlc().arg("lint").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "warnings alone keep exit code 0: {stdout}");
    assert!(stdout.contains("warning[DML001]"), "{stdout}");
    assert!(stdout.contains("always true"), "{stdout}");
}

#[test]
fn lint_deny_promotes_to_error_exit() {
    let path = write_temp("linty-deny.dml", LINTY);
    let out = dmlc().args(["lint"]).arg(&path).args(["--deny", "DML001"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "--deny DML001 must fail: {stdout}");
    assert!(stdout.contains("error[DML001]"), "{stdout}");
    // Denying a lint that does not fire keeps success.
    let out = dmlc().args(["lint"]).arg(&path).args(["--deny", "DML005"]).output().unwrap();
    assert!(out.status.success());
    // Unknown codes are rejected.
    let out = dmlc().args(["lint"]).arg(&path).args(["--deny", "DML999"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn lint_clean_program_has_no_findings() {
    let path = write_temp("lint-clean.dml", GOOD);
    let out = dmlc().arg("lint").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn lint_json_and_sarif_formats() {
    let path = write_temp("lint-fmt.dml", LINTY);
    let out = dmlc().args(["lint"]).arg(&path).args(["--format", "json"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"code\": \"DML001\""), "{stdout}");
    assert!(stdout.contains("\"line\": 2"), "{stdout}");

    let out = dmlc().args(["lint"]).arg(&path).args(["--format", "sarif"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"DML001\""), "{stdout}");
    assert!(stdout.contains("lint-fmt.dml"), "artifact uri present: {stdout}");

    let out = dmlc().args(["lint"]).arg(&path).args(["--format", "yaml"]).output().unwrap();
    assert!(!out.status.success(), "unknown format rejected");
}

/// Drives the binary over the repository's showcase example — the same
/// invocation CI uses for its SARIF artifact.
#[test]
fn lint_golden_over_showcase_example() {
    let example = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/lints.dml");
    let out = dmlc().arg("lint").arg(&example).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "warnings only: {stdout}");
    for code in ["DML001", "DML002", "DML003", "DML004", "DML005", "DML006"] {
        assert!(stdout.contains(&format!("warning[{code}]")), "{code} fires: {stdout}");
    }
    assert!(stdout.contains("7 finding(s): 0 error(s), 7 warning(s)"), "{stdout}");

    let out = dmlc().arg("lint").arg(&example).args(["--format", "sarif"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for code in ["DML001", "DML002", "DML003", "DML004", "DML005", "DML006"] {
        assert!(stdout.contains(&format!("\"ruleId\": \"{code}\"")), "{code}: {stdout}");
    }

    let out = dmlc().arg("lint").arg(&example).args(["--deny", "dead-branch"]).output().unwrap();
    assert!(!out.status.success(), "--deny by lint name promotes to error exit");
}

#[test]
fn figure4_prints_constraints() {
    let out = dmlc().arg("figure4").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("forall"), "{stdout}");
    assert!(stdout.contains("valid"), "{stdout}");
}

#[test]
fn usage_on_bad_invocation() {
    let out = dmlc().output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
    let out = dmlc().args(["table", "9"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_file_reported() {
    let out = dmlc().args(["check", "/nonexistent/xyz.dml"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn explain_valid_goal_renders() {
    let path = write_temp("explain-good.dml", GOOD);
    let out = dmlc().arg("explain").arg(&path).args(["--goal", "1"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("goal 1"), "{stdout}");
}

#[test]
fn explain_out_of_range_goal_fails_with_valid_range() {
    let path = write_temp("explain-range.dml", GOOD);
    let out = dmlc().arg("explain").arg(&path).args(["--goal", "999"]).output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "out-of-range goal exits nonzero");
    assert!(stderr.contains("goal 999 does not exist"), "{stderr}");
    assert!(stderr.contains("valid goals are 1..="), "{stderr}");

    let out = dmlc().arg("explain").arg(&path).args(["--goal", "0"]).output().unwrap();
    assert!(!out.status.success(), "goal numbering starts at 1");
}

#[test]
fn fuzz_fixed_seed_is_clean_and_deterministic() {
    let run = || {
        let out = dmlc()
            .args(["fuzz", "--seed", "42", "--iters", "40", "--no-programs"])
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert!(out.status.success(), "{stdout}");
        assert!(stdout.contains("no divergences"), "{stdout}");
        stdout
    };
    assert_eq!(run(), run(), "same seed, same report");
}

#[test]
fn fuzz_json_report() {
    let out = dmlc()
        .args(["fuzz", "--seed", "7", "--iters", "10", "--no-programs", "--json"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains(r#""seed":7"#), "{stdout}");
    assert!(stdout.contains(r#""divergences":[]"#), "{stdout}");
}

#[test]
fn fuzz_rejects_bad_flags() {
    let out = dmlc().args(["fuzz", "--seed"]).output().unwrap();
    assert!(!out.status.success());
    let out = dmlc().args(["fuzz", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}
