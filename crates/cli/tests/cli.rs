//! Integration tests driving the `dmlc` binary end to end.

use std::io::Write;
use std::process::Command;

fn dmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmlc"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dmlc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const GOOD: &str = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
fun make(k) = array(k, 7)
where make <| {k:nat} int(k) -> int array(k)
fun demo(k) = first(array(k, 7))
where demo <| {k:nat | k > 0} int(k) -> int
"#;

const BAD: &str = r#"
fun oops(v) = sub(v, length v)
where oops <| {n:nat} int array(n) -> int
"#;

#[test]
fn check_reports_verified() {
    let path = write_temp("good.dml", GOOD);
    let out = dmlc().arg("check").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("fully verified"), "{stdout}");
}

#[test]
fn check_reports_failures_with_explanations() {
    let path = write_temp("bad.dml", BAD);
    let out = dmlc().arg("check").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success());
    assert!(stdout.contains("NOT fully verified"), "{stdout}");
    assert!(stdout.contains("cannot prove"), "{stdout}");
    assert!(stdout.contains("sub(v, length v)"), "snippet shown: {stdout}");
}

#[test]
fn run_executes_a_function() {
    let path = write_temp("run.dml", GOOD);
    let out = dmlc().args(["run"]).arg(&path).args(["demo", "5"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.lines().next().unwrap().trim() == "7", "{stdout}");
    assert!(stdout.contains("eliminated"), "{stdout}");
}

#[test]
fn constraints_lists_obligations() {
    let path = write_temp("cons.dml", GOOD);
    let out = dmlc().arg("constraints").arg(&path).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("array bound check for `sub`"), "{stdout}");
    assert!(stdout.contains("[valid]"), "{stdout}");
}

#[test]
fn figure4_prints_constraints() {
    let out = dmlc().arg("figure4").output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("forall"), "{stdout}");
    assert!(stdout.contains("valid"), "{stdout}");
}

#[test]
fn usage_on_bad_invocation() {
    let out = dmlc().output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
    let out = dmlc().args(["table", "9"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn missing_file_reported() {
    let out = dmlc().args(["check", "/nonexistent/xyz.dml"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
}
