//! Per-site verdict summaries: the obligation → backend plumbing.
//!
//! The native backend (`dml-emit`) lowers each checking-primitive call site
//! to a checked or unchecked access form depending on whether *every* guard
//! obligation of the site was proven. This module folds the flat solved
//! obligation list into one record per site, carrying the 1-based goal
//! numbers (in `obligations()` order — the same numbering `dmlc constraints`
//! prints) so the emitter can write traceable `// SAFETY: goal #N proven`
//! comments.

use crate::obligation::{ObKind, Obligation};
use dml_index::Verdict;
use dml_syntax::Span;
use dml_types::env::CheckKind;
use std::collections::HashSet;

/// The solved status of one checking-primitive call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteVerdict {
    /// Span of the primitive application.
    pub site: Span,
    /// The primitive (`sub`, `update`, `nth`, ...).
    pub prim: String,
    /// Array bound or list tag.
    pub check: CheckKind,
    /// The enclosing function, for reporting.
    pub in_fun: String,
    /// 1-based indices (into the full obligation list) of this site's
    /// guard obligations.
    pub goals: Vec<usize>,
    /// `true` when the backend may use the unchecked access form here:
    /// every guard goal of the site is proven *and* the site is in the
    /// pipeline's fail-safe proven set (which empties when any non-check
    /// obligation of the program fails).
    pub proven: bool,
}

/// Folds solved obligations into per-site verdicts, sorted by source
/// position. `proven_sites` is the pipeline's fail-safe set
/// (`Compiled::proven_sites`); a site is marked proven only if it appears
/// there.
pub fn site_verdicts(
    results: &[(Obligation, Verdict)],
    proven_sites: &HashSet<Span>,
) -> Vec<SiteVerdict> {
    let mut out: Vec<SiteVerdict> = Vec::new();
    for (k, (ob, _)) in results.iter().enumerate() {
        let ObKind::Bound { prim, check } = &ob.kind else { continue };
        let goal = k + 1;
        if let Some(existing) = out.iter_mut().find(|s| s.site == ob.site) {
            existing.goals.push(goal);
            continue;
        }
        out.push(SiteVerdict {
            site: ob.site,
            prim: prim.clone(),
            check: *check,
            in_fun: ob.in_fun.clone(),
            goals: vec![goal],
            proven: proven_sites.contains(&ob.site),
        });
    }
    out.sort_by_key(|s| (s.site.start, s.site.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{Constraint, Prop, UnknownReason};

    fn bound(prim: &str, start: u32, end: u32) -> Obligation {
        Obligation {
            kind: ObKind::Bound { prim: prim.into(), check: CheckKind::ArrayBound },
            site: Span { start, end },
            constraint: Constraint::Prop(Prop::True),
            in_fun: "f".into(),
        }
    }

    #[test]
    fn goals_are_one_based_and_grouped_by_site() {
        let results = vec![
            (bound("sub", 10, 14), Verdict::Proven),
            (bound("sub", 10, 14), Verdict::Proven),
            (bound("update", 20, 26), Verdict::Unknown(UnknownReason::FuelExhausted)),
        ];
        let proven: HashSet<Span> = [Span { start: 10, end: 14 }].into_iter().collect();
        let sites = site_verdicts(&results, &proven);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].goals, vec![1, 2]);
        assert!(sites[0].proven);
        assert_eq!(sites[1].goals, vec![3]);
        assert!(!sites[1].proven);
    }

    #[test]
    fn proven_requires_membership_in_the_fail_safe_set() {
        // Both goals proven, but the pipeline emptied the proven set (some
        // non-check obligation failed): the site must stay checked.
        let results = vec![(bound("sub", 1, 5), Verdict::Proven)];
        let sites = site_verdicts(&results, &HashSet::new());
        assert!(!sites[0].proven, "fail-safe: empty proven set wins");
    }

    #[test]
    fn sites_sort_by_position() {
        let results =
            vec![(bound("sub", 50, 54), Verdict::Proven), (bound("nth", 5, 9), Verdict::Proven)];
        let sites = site_verdicts(&results, &HashSet::new());
        assert_eq!(sites[0].site.start, 5);
        assert_eq!(sites[1].site.start, 50);
    }
}
