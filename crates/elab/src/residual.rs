//! Residual runtime checks: the obligation → source-site mapping for
//! graceful degradation.
//!
//! The paper's contract is that bound checks the elaborator *cannot* prove
//! stay in the program as ordinary runtime checks — elimination is an
//! optimization, never a soundness gamble (§1, §6). When the solver comes
//! back `Unknown` (nonlinear bound, fuel exhausted, deadline) or `Refuted`
//! for a check obligation, the site keeps its check and the pipeline
//! records it here so that
//!
//! * the interpreter counts the check as *residual* when it executes
//!   (`dml-eval`'s counters, feeding the "checks eliminated vs. residual"
//!   table columns), and
//! * the `DML006` lint can point at the exact source span with the
//!   solver's reason.

use crate::obligation::{ObKind, Obligation};
use dml_index::{UnknownReason, Verdict};
use dml_syntax::Span;
use dml_types::env::CheckKind;
use std::fmt;

/// One source site whose bound/tag check stays in the compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualCheck {
    /// The span of the primitive application that keeps its check.
    pub site: Span,
    /// The checking primitive (`sub`, `update`, `nth`, ...).
    pub prim: String,
    /// Array bound or list tag.
    pub check: CheckKind,
    /// The enclosing function, for reporting.
    pub in_fun: String,
    /// Why the solver left the check in place.
    pub reason: UnknownReason,
}

impl ResidualCheck {
    /// The trace event recording that this check was lowered to a residual
    /// runtime check, with the site resolved to `line:col` in `src`.
    pub fn trace_event(&self, src: &str) -> dml_obs::TraceEvent {
        dml_obs::TraceEvent::Residual {
            site: dml_syntax::line_col(src, self.site.start).to_string(),
            prim: self.prim.clone(),
            reason: self.reason.to_string(),
        }
    }
}

impl fmt::Display for ResidualCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.check {
            CheckKind::ListTag => "list tag check",
            _ => "array bound check",
        };
        write!(
            f,
            "residual {what} for `{}` in {} at {}: {}",
            self.prim, self.in_fun, self.site, self.reason
        )
    }
}

/// Collects the residual checks of a solved obligation set: every *check*
/// obligation (`ObKind::Bound`) whose verdict is not `Proven`, deduplicated
/// by site and sorted by source position.
///
/// A site with several unproven goals appears once, carrying the first
/// unproven goal's reason. Refuted checks (the solver exhibited a
/// counterexample, so the check is *definitely* needed) are folded in as
/// [`UnknownReason::PossiblyFalsifiable`]; callers that want to
/// distinguish them still have the per-obligation verdicts.
pub fn residual_checks(results: &[(Obligation, Verdict)]) -> Vec<ResidualCheck> {
    let mut out: Vec<ResidualCheck> = Vec::new();
    for (ob, verdict) in results {
        let ObKind::Bound { prim, check } = &ob.kind else { continue };
        if verdict.is_proven() {
            continue;
        }
        if out.iter().any(|r| r.site == ob.site) {
            continue;
        }
        let reason = match verdict {
            Verdict::Unknown(r) => r.clone(),
            // A refuted bound is certainly needed at runtime; the closest
            // structured reason is "possibly falsifiable" (the lint layer
            // distinguishes the two via the verdict it also receives).
            _ => UnknownReason::PossiblyFalsifiable,
        };
        out.push(ResidualCheck {
            site: ob.site,
            prim: prim.clone(),
            check: *check,
            in_fun: ob.in_fun.clone(),
            reason,
        });
    }
    out.sort_by_key(|r| (r.site.start, r.site.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{Constraint, Prop};

    fn ob(kind: ObKind, start: u32, end: u32) -> Obligation {
        Obligation {
            kind,
            site: Span { start, end },
            constraint: Constraint::Prop(Prop::True),
            in_fun: "f".into(),
        }
    }

    fn bound(prim: &str, start: u32, end: u32) -> Obligation {
        ob(ObKind::Bound { prim: prim.into(), check: CheckKind::ArrayBound }, start, end)
    }

    #[test]
    fn only_unproven_check_obligations_are_residual() {
        let results = vec![
            (bound("sub", 10, 14), Verdict::Proven),
            (bound("update", 20, 26), Verdict::Unknown(UnknownReason::Nonlinear("i * i".into()))),
            (ob(ObKind::TypeEq, 30, 34), Verdict::Unknown(UnknownReason::FuelExhausted)),
            (bound("sub", 40, 44), Verdict::Refuted),
        ];
        let residual = residual_checks(&results);
        assert_eq!(residual.len(), 2, "proven and non-check obligations drop out");
        assert_eq!(residual[0].site, Span { start: 20, end: 26 });
        assert_eq!(residual[0].reason, UnknownReason::Nonlinear("i * i".into()));
        assert_eq!(residual[1].site, Span { start: 40, end: 44 });
    }

    #[test]
    fn sites_dedup_and_sort() {
        let results = vec![
            (bound("sub", 50, 54), Verdict::Unknown(UnknownReason::FuelExhausted)),
            (bound("sub", 50, 54), Verdict::Unknown(UnknownReason::PossiblyFalsifiable)),
            (bound("nth", 5, 9), Verdict::Unknown(UnknownReason::Deadline)),
        ];
        let residual = residual_checks(&results);
        assert_eq!(residual.len(), 2);
        assert_eq!(residual[0].site, Span { start: 5, end: 9 });
        assert_eq!(residual[1].site, Span { start: 50, end: 54 });
        assert_eq!(
            residual[1].reason,
            UnknownReason::FuelExhausted,
            "first unproven goal's reason wins"
        );
    }

    #[test]
    fn display_names_prim_and_reason() {
        let results =
            vec![(bound("sub", 1, 3), Verdict::Unknown(UnknownReason::Nonlinear("i * i".into())))];
        let text = residual_checks(&results)[0].to_string();
        assert!(text.contains("sub") && text.contains("non-linear"), "{text}");
    }
}
