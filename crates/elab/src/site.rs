//! Per-site context snapshots for downstream semantic analysis.
//!
//! While elaborating, the elaborator records the logical context it had in
//! scope at every branching point (`if` conditions and `case` arms). The
//! snapshots do not participate in constraint generation at all — they are
//! a read-only trace consumed by the `dml-analysis` lints, which re-play
//! the hypotheses through the solver's entailment entry point to ask
//! questions the type checker never needs to (e.g. "is this condition
//! forced true?").

use dml_index::{Prop, Sort, Var};
use dml_syntax::Span;

/// What program point a [`SiteContext`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteRole {
    /// The condition of an `if` (or a branch of `andalso`/`orelse`
    /// elaborated as one).
    IfCond,
    /// A `case` arm, snapshotted after its pattern's index equations were
    /// assumed.
    CaseArm {
        /// The arm's constructor, when the pattern names one.
        con: Option<String>,
    },
}

/// A snapshot of the elaborator's logical context at a program point.
///
/// Existential (instantiation) variables are *strengthened to universals*
/// in `vars`, exactly as the solver's goal splitting does for residual
/// existentials: an entailment query under the strengthened context proves
/// the original. The conservativity goes the right way for lints — a lint
/// fires only on `Valid` verdicts, so strengthening can suppress a finding
/// but never fabricate one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteContext {
    /// What kind of program point this is.
    pub role: SiteRole,
    /// The source span of the condition / arm pattern.
    pub span: Span,
    /// The enclosing function, for reporting.
    pub in_fun: String,
    /// Index variables in scope, with their sorts.
    pub vars: Vec<(Var, Sort)>,
    /// Hypotheses in scope (conjunctively). Sort guards (e.g. `0 ≤ n` for
    /// `n:nat`) are included — the solver treats every variable as an
    /// unconstrained integer/boolean otherwise.
    pub hyps: Vec<Prop>,
    /// For [`SiteRole::IfCond`]: the condition's singleton-boolean
    /// refinement `p` when the condition has type `bool(p)`; `None` for
    /// unrefined conditions (nothing to analyse).
    pub cond: Option<Prop>,
}
