//! End-to-end elaboration tests: parse → env → phase 1 → phase 2 → solve.

use super::*;
use dml_solver::{Solver, SolverOptions, Verdict};
use dml_types::builtins::{base_env, check_kind};
use dml_types::infer::infer_program;

/// Runs the full front-end on `src`, returning the elaboration output and
/// the per-obligation validity results.
fn run(src: &str) -> (ElabOutput, Vec<(Obligation, Verdict)>) {
    let program = dml_syntax::parse_program(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    let mut gen = VarGen::new();
    let mut env = base_env(&mut gen);
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => env.add_datatype(dd, &mut gen).unwrap(),
            sast::Decl::Typeref(tr) => env.add_typeref(tr, &mut gen).unwrap(),
            sast::Decl::Assert(sigs) => env.add_assert(sigs, &check_kind, &mut gen).unwrap(),
            _ => {}
        }
    }
    let phase1 = infer_program(&program, &env).unwrap_or_else(|e| panic!("phase 1: {e}"));
    let out = elaborate(&program, &env, &phase1, gen).unwrap_or_else(|e| panic!("phase 2: {e}"));
    let mut gen = out.gen.clone();
    let solver = Solver::new(SolverOptions::default());
    let mut results = Vec::new();
    for ob in &out.obligations {
        let outcome = solver.prove(&ob.constraint, &mut gen);
        let ok = outcome.all_proven();
        results.push((
            ob.clone(),
            if ok {
                Verdict::Proven
            } else {
                outcome
                    .results
                    .into_iter()
                    .find(|(_, r)| !r.is_proven())
                    .map(|(_, r)| r)
                    .expect("some goal failed")
            },
        ));
    }
    (out, results)
}

fn all_valid(results: &[(Obligation, Verdict)]) -> bool {
    results.iter().all(|(_, r)| r.is_proven())
}

fn failures(results: &[(Obligation, Verdict)]) -> Vec<String> {
    results.iter().filter(|(_, r)| !r.is_proven()).map(|(o, r)| format!("{o} -- {r:?}")).collect()
}

const DOTPROD: &str = r#"
fun dotprod(v1, v2) = let
  fun loop(i, n, sum) =
    if i = n then sum
    else loop(i+1, n, sum + sub(v1, i) * sub(v2, i))
  where loop <| {n:nat | n <= p} {i:nat | i <= n} int(i) * int(n) * int -> int
in
  loop(0, length v1, 0)
end
where dotprod <| {p:nat} {q:nat | p <= q} int array(p) * int array(q) -> int
"#;

#[test]
fn dotprod_fully_verified() {
    let (out, results) = run(DOTPROD);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
    let bound: Vec<_> = out.check_obligations().collect();
    assert!(!bound.is_empty(), "sub calls must generate bound obligations");
    assert!(bound.iter().all(|o| matches!(&o.kind, ObKind::Bound { prim, .. } if prim == "sub")));
}

#[test]
fn dotprod_constraints_look_like_the_paper() {
    let (out, _) = run(DOTPROD);
    let text: Vec<String> = out.obligations.iter().map(|o| o.constraint.to_string()).collect();
    // At least one constraint universally quantifies and implies, as in
    // Figure 4 / §3.1.
    assert!(text.iter().any(|t| t.starts_with("forall") && t.contains("==>")), "{text:#?}");
}

const REVERSE: &str = r#"
fun reverse(l) = let
  fun rev(nil, ys) = ys
    | rev(x::xs, ys) = rev(xs, x::ys)
  where rev <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
in
  rev(l, nil)
end
where reverse <| {n:nat} 'a list(n) -> 'a list(n)
"#;

#[test]
fn reverse_fully_verified() {
    let (_, results) = run(REVERSE);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn reverse_generates_existential_equation_constraints() {
    // §3.1: the first clause produces ∀…∃M∃N.(M = 0 ∧ N = n ⊃ M + N = n).
    let (out, _) = run(REVERSE);
    let has_result_eq = out.obligations.iter().any(|o| {
        o.kind == ObKind::TypeEq && o.in_fun == "rev" && o.constraint.to_string().contains("=")
    });
    assert!(has_result_eq, "rev's result-type equations should be present");
}

const FILTER: &str = r#"
fun filter p l = case l of
    nil => nil
  | x :: xs => if p(x) then x :: filter p xs else filter p xs
where filter <| {m:nat} ('a -> bool) -> 'a list(m) -> [n:nat | n <= m] 'a list(n)
"#;

#[test]
fn filter_existential_result_verified() {
    let (_, results) = run(FILTER);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

const BSEARCH: &str = r#"
datatype 'a answer = NOTFOUND | FOUND of int * 'a

fun('a){size:nat} bsearch cmp (key, arr) = let
  fun look(lo, hi) =
    if hi >= lo then
      let val m = lo + (hi - lo) div 2
          val x = sub(arr, m)
      in
        case cmp(key, x) of
          LESS => look(lo, m-1)
        | EQUAL => FOUND(m, x)
        | GREATER => look(m+1, hi)
      end
    else NOTFOUND
  where look <| {l:nat | l <= size} {h:int | 0 <= h+1 && h+1 <= size}
                int(l) * int(h) -> 'a answer
in
  look (0, length arr - 1)
end
where bsearch <| ('a * 'a -> order) -> 'a * 'a array(size) -> 'a answer
"#;

#[test]
fn bsearch_fully_verified() {
    let (out, results) = run(BSEARCH);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
    // Exactly one `sub` call site.
    let sites: BTreeSet<Span> = out.check_obligations().map(|o| o.site).collect();
    assert_eq!(sites.len(), 1, "one sub call in bsearch");
}

#[test]
fn out_of_bounds_access_not_proven() {
    let src = r#"
fun bad(v) = sub(v, length v)
where bad <| {n:nat} int array(n) -> int
"#;
    let (_, results) = run(src);
    let bound_failures: Vec<_> =
        results.iter().filter(|(o, r)| o.kind.is_check() && !r.is_proven()).collect();
    assert!(!bound_failures.is_empty(), "sub(v, length v) must not be proven safe");
}

#[test]
fn first_element_requires_nonempty() {
    // Without a positivity constraint the access is unprovable...
    let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat} int array(n) -> int
"#;
    let (_, results) = run(src);
    assert!(!all_valid(&results), "sub(v, 0) on a possibly-empty array is unsafe");

    // ...with it, it is proven.
    let src = r#"
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn unannotated_code_elaborates_conservatively() {
    // No annotations at all: the program must still elaborate; the bound
    // obligation is simply not proven (the check stays at run time).
    let src = "fun get(v, i) = sub(v, i)";
    let (out, results) = run(src);
    assert!(!out.obligations.is_empty());
    let bound: Vec<_> = results.iter().filter(|(o, _)| o.kind.is_check()).collect();
    assert!(!bound.is_empty());
    assert!(bound.iter().any(|(_, r)| !r.is_proven()), "unannotated access stays checked");
}

#[test]
fn update_in_loop_verified() {
    let src = r#"
fun fill(v, x) = let
  fun go(i, n) =
    if i < n then (update(v, i, x); go(i+1, n)) else ()
  where go <| {k:nat | k <= n} {i:nat | i <= k} int(i) * int(k) -> unit
in
  go(0, length v)
end
where fill <| {n:nat} 'a array(n) * 'a -> unit
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn list_nth_verified() {
    let src = r#"
fun second(l) = nth(l, 1)
where second <| {n:nat | n >= 2} 'a list(n) -> 'a
"#;
    let (out, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
    assert!(out
        .check_obligations()
        .any(|o| matches!(&o.kind, ObKind::Bound { check: CheckKind::ListTag, .. })));
}

#[test]
fn singleton_propagation_through_let() {
    let src = r#"
fun mid(v) = let
  val n = length v
  val m = n div 2
in
  sub(v, m)
end
where mid <| {n:nat | n > 0} int array(n) -> int
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn boolean_singleton_guards_branches() {
    let src = r#"
fun safeget(v, i) =
  if 0 <= i andalso i < length v then sub(v, i) else 0
where safeget <| int array * int -> int
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn checked_variant_generates_no_bound_obligations() {
    let src = "fun get(v, i) = subCK(v, i)";
    let (out, _) = run(src);
    assert_eq!(out.check_obligations().count(), 0, "subCK has no bound guard");
}

#[test]
fn pattern_literal_refines() {
    let src = r#"
fun f(l) = case l of
    nil => 0
  | x :: xs => x + f(xs)
where f <| {n:nat} int list(n) -> int
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn wrong_result_length_fails() {
    // Claims to preserve length but drops an element.
    let src = r#"
fun chop(l) = case l of
    nil => nil
  | x :: xs => xs
where chop <| {n:nat} 'a list(n) -> 'a list(n)
"#;
    let (_, results) = run(src);
    assert!(!all_valid(&results), "dropping an element must fail the length spec");
}

#[test]
fn append_length_arith() {
    let src = r#"
fun append(l1, l2) = case l1 of
    nil => l2
  | x :: xs => x :: append(xs, l2)
where append <| {m:nat} {n:nat} 'a list(m) * 'a list(n) -> 'a list(m+n)
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn div_guard_emitted_and_proven_for_constant() {
    let src = "fun half(x) = x div 2";
    let (out, results) = run(src);
    assert!(out.obligations.iter().any(|o| o.kind == ObKind::DivGuard));
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn div_guard_unproven_for_unknown() {
    let src = "fun ratio(x, y) = x div y";
    let (_, results) = run(src);
    let div_failed = results.iter().any(|(o, r)| o.kind == ObKind::DivGuard && !r.is_proven());
    assert!(div_failed, "dividing by an unknown integer cannot be proven safe");
}

#[test]
fn array_alloc_guard() {
    let src = r#"
fun make(n) = array(n, 0)
where make <| {n:nat} int(n) -> int array(n)
"#;
    let (_, results) = run(src);
    assert!(all_valid(&results), "failures:\n{}", failures(&results).join("\n"));
}

#[test]
fn top_level_schemes_recorded() {
    let (out, _) = run(DOTPROD);
    assert!(out.top_level.contains_key("dotprod"));
    let s = out.top_level["dotprod"].to_string();
    assert!(s.contains("array"), "{s}");
}
