//! Phase 2: bidirectional dependent elaboration and constraint generation
//! (§3.1 of the paper).
//!
//! After phase-1 ML inference succeeds, the program is traversed a second
//! time. Dependent annotations switch the elaborator into *checking* mode;
//! unannotated code *synthesises* types whose indices are interpreted
//! existentially (§2.3). Every place where an index fact must hold produces
//! an [`Obligation`]: a fully-closed constraint
//! `∀ctx. ∃evars. (hypotheses ⊃ conclusion)` tagged with its source span
//! and kind.
//!
//! The obligations whose kind is an array-bound or list-tag guard are the
//! paper's eliminable checks: if the solver proves all of a call site's
//! guard obligations (and the program as a whole type-checks), that `sub`/
//! `update`/`nth` call compiles to the unchecked primitive.
//!
//! Key mechanisms, mirroring §3.1:
//!
//! * **Application** instantiates Π-bound index variables with fresh
//!   *existential* variables; checking the argument produces defining
//!   equations (pushed as hypotheses *and* emitted as obligations), after
//!   which the instantiated guard is emitted as an obligation.
//! * **Clause checking** instantiates the function's Π variables
//!   existentially and lets patterns generate hypothesis equations
//!   (`M = 0` for `nil`, `N = n` for a variable pattern), exactly
//!   reproducing the constraint shapes of §3.1.
//! * **Pattern matching** introduces universal variables for the
//!   constructor's index binder with its guard as a hypothesis, giving the
//!   `b ⊃ φ` constraints the paper needs for match arms.
//! * **Singleton booleans** refine `if`: a condition of type `bool(p)`
//!   adds `p` (resp. `¬p`) to the hypotheses of the branches.

pub mod elab;
pub mod obligation;
pub mod report;
pub mod residual;
pub mod site;
pub mod sites;

pub use elab::{elaborate, ElabError, ElabOutput, Elaborator};
pub use obligation::{ObKind, Obligation};
pub use report::{explain, sequent_view, SequentView};
pub use residual::{residual_checks, ResidualCheck};
pub use site::{SiteContext, SiteRole};
pub use sites::{site_verdicts, SiteVerdict};
