//! Proof obligations produced by elaboration.

use dml_index::Constraint;
use dml_syntax::Span;
use dml_types::env::CheckKind;
use std::fmt;

/// What an obligation asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObKind {
    /// The guard of a checking primitive (`sub`, `update`, `nth`, ...);
    /// proving every `Bound` obligation of a call site eliminates its
    /// run-time check.
    Bound {
        /// The primitive's name.
        prim: String,
        /// Array bound or list tag.
        check: CheckKind,
    },
    /// A division-by-zero guard (`div`, `mod`).
    DivGuard,
    /// Any other instantiated guard (e.g. `array` allocation size, subset
    /// types, existential package guards).
    Guard,
    /// An index equation from a type coercion (result types, singleton
    /// flows). Failure is a dependent type error.
    TypeEq,
    /// A match-exhaustiveness obligation: the named constructor is missing
    /// from a `case` and must be *impossible* under the index constraints
    /// (conclusion `false`). Failure is a warning (potential match
    /// failure), not a type error — it never blocks check elimination.
    Unreachable {
        /// The uncovered constructor.
        con: String,
    },
}

impl ObKind {
    /// `true` for obligations whose proof eliminates a run-time check.
    pub fn is_check(&self) -> bool {
        matches!(self, ObKind::Bound { .. })
    }
}

impl fmt::Display for ObKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObKind::Bound { prim, check } => match check {
                CheckKind::ListTag => write!(f, "list tag check for `{prim}`"),
                _ => write!(f, "array bound check for `{prim}`"),
            },
            ObKind::DivGuard => write!(f, "division guard"),
            ObKind::Guard => write!(f, "guard"),
            ObKind::TypeEq => write!(f, "index equation"),
            ObKind::Unreachable { con } => {
                write!(f, "exhaustiveness (missing `{con}` must be impossible)")
            }
        }
    }
}

/// A fully-closed proof obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct Obligation {
    /// What is being asserted.
    pub kind: ObKind,
    /// The source span of the originating expression (for `Bound`
    /// obligations, the span of the primitive application — the evaluator
    /// uses the same span to select checked vs. unchecked behaviour).
    pub site: Span,
    /// The closed constraint `∀ctx. ∃evars. hyps ⊃ concl`.
    pub constraint: Constraint,
    /// The enclosing function, for reporting.
    pub in_fun: String,
}

impl Obligation {
    /// The trace event announcing this obligation, with the site resolved
    /// to a human-readable `line:col` position in `src`. Feeds the
    /// observability layer (`dmlc explain`, `--trace-out`).
    pub fn trace_event(&self, src: &str) -> dml_obs::TraceEvent {
        dml_obs::TraceEvent::Obligation {
            kind: self.kind.to_string(),
            site: dml_syntax::line_col(src, self.site.start).to_string(),
            in_fun: self.in_fun.clone(),
        }
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} in {} at {}] {}", self.kind, self.in_fun, self.site, self.constraint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_check() {
        assert!(ObKind::Bound { prim: "sub".into(), check: CheckKind::ArrayBound }.is_check());
        assert!(!ObKind::TypeEq.is_check());
        assert!(!ObKind::DivGuard.is_check());
        assert!(!ObKind::Unreachable { con: "nil".into() }.is_check());
    }

    #[test]
    fn display_mentions_prim() {
        let k = ObKind::Bound { prim: "sub".into(), check: CheckKind::ArrayBound };
        assert!(k.to_string().contains("sub"));
        let k = ObKind::Bound { prim: "nth".into(), check: CheckKind::ListTag };
        assert!(k.to_string().contains("list tag"));
    }
}
