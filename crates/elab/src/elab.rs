//! The bidirectional dependent elaborator.
//!
//! See the crate docs for the big picture. The central invariants:
//!
//! * The context is a stack of entries — universal index variables,
//!   existential index variables (application instantiations), and
//!   hypotheses. Obligations are recorded when discovered and **closed at
//!   the end of their enclosing branch/clause scope** as
//!   `∀unis. ∃evars. (hyps ⊃ concl)`, with all universals quantified
//!   outside all existentials (an instantiation may depend on anything in
//!   scope, exactly as in the paper's §3.1 constraints). Deferred closing
//!   ensures defining equations contributed by *later* arguments of a
//!   curried application are available as hypotheses.
//! * Binder identifiers are globally unique: every binder is opened with
//!   fresh variables, so substitution is capture-free.
//! * Index equations discovered during argument/result coercion are
//!   classified at emission: a *defining* equation (first pin-down of an
//!   instantiation variable) becomes a hypothesis only, exactly like the
//!   paper's `M = 0`; a *re-constraining* equation is a genuine proof
//!   obligation (closed without itself among its hypotheses).

use crate::obligation::{ObKind, Obligation};
use crate::site::{SiteContext, SiteRole};
use dml_index::{Constraint, IExp, Prop, Sort, Var, VarGen};
use dml_syntax::ast as sast;
use dml_syntax::Span;
use dml_types::convert::{Converter, Scope};
use dml_types::env::{CheckKind, Env};
use dml_types::infer::InferResult;
use dml_types::ml::erase;
use dml_types::ty::{Binder, Ix, Scheme, Ty};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A phase-2 elaboration error (shape mismatches that phase 1 cannot see,
/// unsupported constructs, malformed annotations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl ElabError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ElabError { message: message.into(), span }
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "elaboration error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ElabError {}

/// The result of phase-2 elaboration.
#[derive(Debug, Clone)]
pub struct ElabOutput {
    /// All proof obligations, in generation order.
    pub obligations: Vec<Obligation>,
    /// Dependent schemes of top-level bindings.
    pub top_level: HashMap<String, Scheme>,
    /// The variable supply, for the solver to continue from.
    pub gen: VarGen,
    /// Context snapshots at branching points, for the semantic lints.
    /// Purely observational — recording them does not affect obligation
    /// generation.
    pub contexts: Vec<SiteContext>,
}

impl ElabOutput {
    /// The obligations that are eliminable run-time checks.
    pub fn check_obligations(&self) -> impl Iterator<Item = &Obligation> {
        self.obligations.iter().filter(|o| o.kind.is_check())
    }
}

/// Elaborates a program (whose `datatype`/`typeref`/`assert` declarations
/// are already in `env` and whose phase-1 inference result is `phase1`).
///
/// # Errors
///
/// Returns the first [`ElabError`] encountered. Constraint *failures* are
/// not errors — they surface later as unproven obligations.
pub fn elaborate(
    program: &sast::Program,
    env: &Env,
    phase1: &InferResult,
    gen: VarGen,
) -> Result<ElabOutput, ElabError> {
    let mut el = Elaborator::new(env, phase1, gen);
    let mut vals: Vals = HashMap::new();
    let scope = Scope::new();
    for d in &program.decls {
        el.decl(d, &mut vals, &scope)?;
        // Close any obligations from top-level `val` bindings (their
        // context entries persist for later declarations).
        el.flush_pending(0);
    }
    let mut top_level = HashMap::new();
    for (name, scheme) in &vals {
        top_level.insert(name.clone(), el.zonk_scheme(scheme));
    }
    Ok(ElabOutput { obligations: el.obligations, top_level, gen: el.gen, contexts: el.contexts })
}

type Vals = HashMap<String, Scheme>;

/// A context entry.
#[derive(Debug, Clone)]
enum Entry {
    /// Universally quantified index variable.
    Uni(Var, Sort),
    /// Existentially quantified (instantiation) variable.
    Exi(Var, Sort),
    /// Hypothesis.
    Hyp(Prop),
}

/// The elaborator state. Most users go through [`elaborate`]; the struct is
/// public for the pipeline crate's diagnostics.
pub struct Elaborator<'e> {
    env: &'e Env,
    phase1: &'e InferResult,
    gen: VarGen,
    metas: HashMap<u32, Ty>,
    next_meta: u32,
    ctx: Vec<Entry>,
    obligations: Vec<Obligation>,
    /// Obligations awaiting closure: conclusions are recorded when
    /// discovered but closed over the context only when their enclosing
    /// scope ends, so that defining equations contributed by *later*
    /// arguments (curried applications) are available as hypotheses.
    pending: Vec<(ObKind, Span, Prop, Option<usize>)>,
    fun_stack: Vec<String>,
    /// Context snapshots at branching points (see [`SiteContext`]).
    contexts: Vec<SiteContext>,
    /// All instantiation (existential) variables ever created.
    exi_vars: std::collections::HashSet<Var>,
    /// Instantiation variables already pinned down by a defining equation.
    determined: std::collections::HashSet<Var>,
}

impl<'e> Elaborator<'e> {
    /// Creates an elaborator.
    pub fn new(env: &'e Env, phase1: &'e InferResult, gen: VarGen) -> Self {
        Elaborator {
            env,
            phase1,
            gen,
            metas: HashMap::new(),
            next_meta: 0,
            ctx: Vec::new(),
            obligations: Vec::new(),
            pending: Vec::new(),
            fun_stack: Vec::new(),
            contexts: Vec::new(),
            exi_vars: std::collections::HashSet::new(),
            determined: std::collections::HashSet::new(),
        }
    }

    // -----------------------------------------------------------------
    // Context and obligations.
    // -----------------------------------------------------------------

    fn push_uni(&mut self, v: Var, s: Sort) {
        self.ctx.push(Entry::Uni(v, s));
    }

    fn push_exi(&mut self, v: Var, s: Sort) {
        self.exi_vars.insert(v.clone());
        self.ctx.push(Entry::Exi(v, s));
    }

    fn push_hyp(&mut self, p: Prop) {
        if p != Prop::True {
            self.ctx.push(Entry::Hyp(p));
        }
    }

    /// Marks the start of a branch/clause scope.
    fn scope_begin(&self) -> (usize, usize) {
        (self.ctx.len(), self.pending.len())
    }

    /// Ends a scope: closes the scope's pending obligations over the full
    /// current context, then pops the scope's entries.
    fn scope_end(&mut self, mark: (usize, usize)) {
        self.flush_pending(mark.1);
        self.ctx.truncate(mark.0);
    }

    /// Closes a conclusion over the current context
    /// (`∀unis. ∃evars. (hyps ⊃ concl)`), skipping the hypothesis at index
    /// `skip` (used for an equation's own obligation).
    fn close_excluding(&self, concl: Prop, skip: Option<usize>) -> Constraint {
        let mut hyps = Prop::True;
        for (k, e) in self.ctx.iter().enumerate() {
            if Some(k) == skip {
                continue;
            }
            if let Entry::Hyp(p) = e {
                hyps = hyps.and(p.clone());
            }
        }
        let mut c = Constraint::Prop(concl).guarded_by(hyps);
        if c.is_trivial() {
            return c;
        }
        // One free-variable pass for the whole closure: binder ids are
        // globally unique, so a context variable is wrapped iff it occurs
        // free in the pre-quantification body. (Wrapping per quantifier via
        // `Constraint::exists`/`forall` recomputes free_vars of the growing
        // body each time — quadratic in context depth, and the context here
        // can be >100 entries deep.)
        let mut fv = c.free_vars();
        for e in self.ctx.iter().rev() {
            if let Entry::Exi(v, s) = e {
                if fv.remove(v) {
                    c = Constraint::Exists(v.clone(), *s, Box::new(c));
                }
            }
        }
        for e in self.ctx.iter().rev() {
            if let Entry::Uni(v, s) = e {
                if fv.remove(v) {
                    c = Constraint::Forall(v.clone(), *s, Box::new(c));
                }
            }
        }
        c
    }

    fn emit(&mut self, kind: ObKind, site: Span, concl: Prop) {
        if concl == Prop::True {
            return;
        }
        self.pending.push((kind, site, concl, None));
    }

    /// Snapshots the current logical context for the semantic lints.
    /// Read-only with respect to elaboration: nothing here feeds back into
    /// obligation generation. Existentials are strengthened to universals
    /// (see [`SiteContext`]).
    fn record_site(&mut self, role: SiteRole, span: Span, cond: Option<Prop>) {
        let mut vars = Vec::new();
        let mut hyps = Vec::new();
        for e in &self.ctx {
            match e {
                Entry::Uni(v, s) | Entry::Exi(v, s) => vars.push((v.clone(), *s)),
                Entry::Hyp(p) => {
                    if *p != Prop::True {
                        hyps.push(p.clone());
                    }
                }
            }
        }
        let in_fun = self.fun_stack.last().cloned().unwrap_or_else(|| "<top>".to_string());
        self.contexts.push(SiteContext { role, span, in_fun, vars, hyps, cond });
    }

    /// The constructor a `case` arm pattern names, if any.
    fn arm_con(&self, p: &sast::Pat) -> Option<String> {
        match p {
            sast::Pat::Con(c, _, _) => Some(c.name.clone()),
            sast::Pat::Var(c) if self.env.is_constructor(&c.name) => Some(c.name.clone()),
            _ => None,
        }
    }

    /// Emits the integer index equation `x = y` arising from a coercion.
    ///
    /// If the equation is *defining* — it pins down exactly one so-far
    /// undetermined instantiation variable, alone on one side — it becomes
    /// a hypothesis only, exactly like the paper's `M = 0` equations. A
    /// *re-constraining* equation (all its instantiation variables already
    /// determined, or not solvable by substitution) is a genuine proof
    /// obligation; it is also pushed as a hypothesis for later goals, which
    /// is sound because checks are only eliminated when every obligation in
    /// the program is proven.
    fn emit_int_equation(&mut self, site: Span, x: IExp, y: IExp) {
        if x == y {
            return;
        }
        let eq = Prop::eq(x.clone(), y.clone());
        if let Some(v) = self.defining_var(&x, &y) {
            self.determined.insert(v);
            self.push_hyp(eq);
            return;
        }
        self.ctx.push(Entry::Hyp(eq.clone()));
        let idx = self.ctx.len() - 1;
        self.pending.push((ObKind::TypeEq, site, eq, Some(idx)));
    }

    /// If `x = y` defines a single undetermined instantiation variable
    /// (alone on one side, absent from the other, and the only undetermined
    /// instantiation variable in the equation), returns it.
    fn defining_var(&self, x: &IExp, y: &IExp) -> Option<Var> {
        let mut undet: Vec<Var> = Vec::new();
        let mut fv = std::collections::BTreeSet::new();
        x.free_vars_into(&mut fv);
        y.free_vars_into(&mut fv);
        for v in fv {
            if self.exi_vars.contains(&v) && !self.determined.contains(&v) {
                undet.push(v);
            }
        }
        if undet.len() != 1 {
            return None;
        }
        let v = undet.pop().expect("one element");
        let alone = matches!(x, IExp::Var(w) if *w == v && !y.free_vars().contains(&v))
            || matches!(y, IExp::Var(w) if *w == v && !x.free_vars().contains(&v));
        alone.then_some(v)
    }

    /// Pushes an equation as a hypothesis only (pattern-matching facts),
    /// updating the determined-variable set.
    fn push_equation_hyp(&mut self, x: IExp, y: IExp) {
        if x == y {
            return;
        }
        if let Some(v) = self.defining_var(&x, &y) {
            self.determined.insert(v);
        }
        self.push_hyp(Prop::eq(x, y));
    }

    /// Closes and records all pending obligations at or beyond `pmark`,
    /// using the *current* (pre-truncation) context.
    fn flush_pending(&mut self, pmark: usize) {
        let drained: Vec<_> = self.pending.drain(pmark..).collect();
        let in_fun = self.fun_stack.last().cloned().unwrap_or_else(|| "<top>".to_string());
        for (kind, site, concl, skip) in drained {
            let constraint = self.close_excluding(concl, skip);
            self.obligations.push(Obligation { kind, site, constraint, in_fun: in_fun.clone() });
        }
    }

    // -----------------------------------------------------------------
    // Metavariables.
    // -----------------------------------------------------------------

    fn fresh_meta(&mut self) -> Ty {
        let m = self.next_meta;
        self.next_meta += 1;
        Ty::Meta(m)
    }

    fn resolve_shallow(&self, ty: &Ty) -> Ty {
        let mut t = ty.clone();
        while let Ty::Meta(m) = t {
            match self.metas.get(&m) {
                Some(next) => t = next.clone(),
                None => return Ty::Meta(m),
            }
        }
        t
    }

    /// Fully resolves metavariables in a type.
    fn zonk(&self, ty: &Ty) -> Ty {
        match self.resolve_shallow(ty) {
            Ty::Meta(m) => Ty::Meta(m),
            Ty::Rigid(n) => Ty::Rigid(n),
            Ty::App(n, tys, ixs) => Ty::App(n, tys.iter().map(|t| self.zonk(t)).collect(), ixs),
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| self.zonk(t)).collect()),
            Ty::Arrow(a, b) => Ty::Arrow(Box::new(self.zonk(&a)), Box::new(self.zonk(&b))),
            Ty::Pi(b, t) => Ty::Pi(b, Box::new(self.zonk(&t))),
            Ty::Sigma(b, t) => Ty::Sigma(b, Box::new(self.zonk(&t))),
        }
    }

    fn zonk_scheme(&self, s: &Scheme) -> Scheme {
        Scheme { tyvars: s.tyvars.clone(), ty: self.zonk(&s.ty) }
    }

    // -----------------------------------------------------------------
    // Binder opening and scheme instantiation.
    // -----------------------------------------------------------------

    /// Opens a binder with fresh variables, returning the instantiated
    /// guard, body, and fresh variables. Does not push context entries.
    fn open_binder(
        &mut self,
        b: &Binder,
        body: &Ty,
        tag: Option<&str>,
    ) -> (Prop, Ty, Vec<(Var, Sort)>) {
        let mut guard = b.guard.clone();
        let mut bd = body.clone();
        let mut fresh = Vec::with_capacity(b.vars.len());
        for (v, s) in &b.vars {
            let f = match tag {
                Some(t) => self.gen.fresh_tagged(&format!("{t}{}", v.name())),
                None => self.gen.fresh(v.name()),
            };
            match s {
                Sort::Int => {
                    let e = IExp::var(f.clone());
                    guard = guard.subst(v, &e);
                    bd = bd.subst(v, &e);
                }
                Sort::Bool => {
                    guard = guard.subst_bool(v, &Prop::BVar(f.clone()));
                    bd = bd.subst_bvar(v, &f);
                }
            }
            fresh.push((f, *s));
        }
        (guard, bd, fresh)
    }

    /// Opens `Π b. body` universally: pushes the variables and the guard
    /// as a hypothesis. Optionally records surface names in `scope`.
    fn open_universal(&mut self, b: &Binder, body: &Ty, scope: Option<&mut Scope>) -> Ty {
        let (guard, bd, fresh) = self.open_binder(b, body, None);
        if let Some(sc) = scope {
            for (v, s) in &fresh {
                sc.bind(v.name(), v.clone(), *s);
            }
        }
        for (v, s) in fresh {
            self.push_uni(v, s);
        }
        self.push_hyp(guard);
        bd
    }

    /// Opens `Π b. body` (or `Σ b. body`) existentially: pushes the
    /// variables as instantiation variables and returns the instantiated
    /// guard for the caller to emit as an obligation.
    fn open_existential(&mut self, b: &Binder, body: &Ty, scope: Option<&mut Scope>) -> (Prop, Ty) {
        let (guard, bd, fresh) = self.open_binder(b, body, None);
        if let Some(sc) = scope {
            for (v, s) in &fresh {
                sc.bind(v.name(), v.clone(), *s);
            }
        }
        for (v, s) in fresh {
            self.push_exi(v, s);
        }
        (guard, bd)
    }

    /// Unpacks leading Σ quantifiers universally (package consumption).
    fn unpack_sigmas(&mut self, ty: Ty) -> Ty {
        let mut t = self.resolve_shallow(&ty);
        while let Ty::Sigma(b, body) = t {
            t = self.open_universal(&b, &body, None);
            t = self.resolve_shallow(&t);
        }
        t
    }

    /// Instantiates a value scheme: ML type variables become fresh
    /// metavariables; index binders are refreshed for id uniqueness.
    fn instantiate(&mut self, s: &Scheme) -> Ty {
        let mut ty = s.ty.clone();
        for tv in &s.tyvars {
            let m = self.fresh_meta();
            ty = ty.subst_rigid(tv, &m);
        }
        ty.refresh(&mut self.gen)
    }

    // -----------------------------------------------------------------
    // Declarations.
    // -----------------------------------------------------------------

    fn decl(&mut self, d: &sast::Decl, vals: &mut Vals, scope: &Scope) -> Result<(), ElabError> {
        match d {
            sast::Decl::Datatype(_)
            | sast::Decl::Typeref(_)
            | sast::Decl::Assert(_)
            | sast::Decl::Exception(_) => Ok(()),
            sast::Decl::Fun(funs) => self.fun_group(funs, vals, scope),
            sast::Decl::Val(v) => self.val_decl(v, vals, scope),
        }
    }

    fn fun_group(
        &mut self,
        funs: &[sast::FunDecl],
        vals: &mut Vals,
        scope: &Scope,
    ) -> Result<(), ElabError> {
        let mut schemes = Vec::with_capacity(funs.len());
        for f in funs {
            let scheme = self.fun_scheme(f, scope)?;
            schemes.push(scheme);
        }
        for (f, s) in funs.iter().zip(&schemes) {
            vals.insert(f.name.name.clone(), s.clone());
        }
        for (f, s) in funs.iter().zip(&schemes) {
            self.check_fun(f, s, vals, scope)?;
        }
        Ok(())
    }

    fn fun_scheme(&mut self, f: &sast::FunDecl, scope: &Scope) -> Result<Scheme, ElabError> {
        match &f.anno {
            Some(anno) => {
                let mut scope2 = scope.clone();
                let env = self.env;
                let mut conv = Converter::new(&env.families, &mut self.gen);
                let ip_binder = conv
                    .convert_quants(&f.index_params, &mut scope2)
                    .map_err(|e| ElabError::new(e.message, e.span))?;
                let ty = conv
                    .convert_dtype(anno, &scope2)
                    .map_err(|e| ElabError::new(e.message, e.span))?;
                let ty =
                    if ip_binder.vars.is_empty() { ty } else { Ty::Pi(ip_binder, Box::new(ty)) };
                let mut rigids = BTreeSet::new();
                erase(&ty).rigids_into(&mut rigids);
                Ok(Scheme { tyvars: rigids.into_iter().collect(), ty })
            }
            None => {
                let ml = self.phase1.schemes.get(&f.name.span).ok_or_else(|| {
                    ElabError::new(
                        format!("no phase-1 scheme recorded for `{}`", f.name.name),
                        f.name.span,
                    )
                })?;
                let ty = self.env.lift(&ml.ty, &mut self.gen);
                Ok(Scheme { tyvars: ml.vars.clone(), ty })
            }
        }
    }

    fn check_fun(
        &mut self,
        f: &sast::FunDecl,
        scheme: &Scheme,
        vals: &Vals,
        scope: &Scope,
    ) -> Result<(), ElabError> {
        self.fun_stack.push(f.name.name.clone());
        let result = self.check_fun_inner(f, scheme, vals, scope);
        self.fun_stack.pop();
        result
    }

    fn check_fun_inner(
        &mut self,
        f: &sast::FunDecl,
        scheme: &Scheme,
        vals: &Vals,
        scope: &Scope,
    ) -> Result<(), ElabError> {
        for clause in &f.clauses {
            let mark = self.scope_begin();
            let mut cvals = vals.clone();
            let mut cscope = scope.clone();
            // Clause checking instantiates the leading Π variables
            // *existentially*; pattern matching supplies the defining
            // hypothesis equations (§3.1).
            let mut ty = scheme.ty.clone();
            for param in &clause.params {
                ty = self.resolve_shallow(&ty);
                loop {
                    match ty {
                        Ty::Pi(b, body) => {
                            let (guard, bd) = self.open_existential(&b, &body, Some(&mut cscope));
                            // The caller guarantees the guard; assume it.
                            self.push_hyp(guard);
                            ty = self.resolve_shallow(&bd);
                        }
                        Ty::Sigma(b, body) => {
                            ty = self.open_universal(&b, &body, Some(&mut cscope));
                            ty = self.resolve_shallow(&ty);
                        }
                        other => {
                            ty = other;
                            break;
                        }
                    }
                }
                let Ty::Arrow(dom, cod) = ty else {
                    return Err(ElabError::new(
                        format!(
                            "`{}` has {} parameter(s) but its type `{}` is not a function",
                            f.name.name,
                            clause.params.len(),
                            scheme.ty
                        ),
                        f.name.span,
                    ));
                };
                self.bind_pattern(param, &dom, &mut cvals)?;
                ty = *cod;
            }
            self.check(&clause.body, &ty, &cvals, &cscope)?;
            self.scope_end(mark);
        }
        self.check_clause_exhaustiveness(f, scheme)?;
        Ok(())
    }

    /// Exhaustiveness for multi-clause `fun` definitions, in the common
    /// single-scrutinee form: when exactly one pattern position (a path
    /// through parameter tuples) carries constructor patterns and every
    /// other position is irrefutable in every clause, the analysis reduces
    /// to the `case` one — missing constructors at that position must be
    /// provably impossible, else a warning is emitted. Definitions that
    /// scrutinise several positions at once are skipped, and nested
    /// refutable sub-patterns inside the scrutinee's own argument are not
    /// analysed (best-effort warnings; exhaustiveness never affects the
    /// soundness of check elimination, since a match failure is an
    /// ML-level error shared by both execution modes).
    fn check_clause_exhaustiveness(
        &mut self,
        f: &sast::FunDecl,
        scheme: &Scheme,
    ) -> Result<(), ElabError> {
        let Some(path) = single_scrutinee_path(&f.clauses) else {
            return Ok(());
        };
        let covered: std::collections::HashSet<String> = f
            .clauses
            .iter()
            .filter_map(|c| match pattern_at_path(&c.params, &path) {
                Some(sast::Pat::Con(c, _, _)) => Some(c.name.clone()),
                Some(sast::Pat::Var(v)) => Some(v.name.clone()),
                _ => None,
            })
            .collect();
        // Locate the scrutinee type by peeling a fresh instantiation.
        let mark = self.scope_begin();
        let mut ty = scheme.ty.clone();
        let mut scrut: Option<Ty> = None;
        for param_idx in 0..=path.0 {
            ty = self.resolve_shallow(&ty);
            loop {
                match ty {
                    Ty::Pi(b, body) => {
                        let (guard, bd) = self.open_existential(&b, &body, None);
                        self.push_hyp(guard);
                        ty = self.resolve_shallow(&bd);
                    }
                    Ty::Sigma(b, body) => {
                        ty = self.open_universal(&b, &body, None);
                        ty = self.resolve_shallow(&ty);
                    }
                    other => {
                        ty = other;
                        break;
                    }
                }
            }
            let Ty::Arrow(dom, cod) = ty else {
                self.ctx.truncate(mark.0);
                self.pending.truncate(mark.1);
                return Ok(());
            };
            if param_idx == path.0 {
                let mut t = self.unpack_sigmas(*dom);
                for &k in &path.1 {
                    t = match self.resolve_shallow(&t) {
                        Ty::Tuple(ts) if k < ts.len() => self.unpack_sigmas(ts[k].clone()),
                        _ => {
                            self.ctx.truncate(mark.0);
                            self.pending.truncate(mark.1);
                            return Ok(());
                        }
                    };
                }
                scrut = Some(t);
            }
            ty = *cod;
        }
        if let Some(scrut_ty) = scrut {
            if let Ty::App(dt_name, _, _) = self.resolve_shallow(&scrut_ty) {
                if let Some(info) = self.env.datatypes.get(&dt_name).cloned() {
                    for con in &info.cons {
                        if covered.contains(con) {
                            continue;
                        }
                        let inner = self.scope_begin();
                        let id = sast::Ident::synth(con);
                        let arg = if self.env.cons[con].arg.is_some() {
                            Some(sast::Pat::Wild(f.name.span))
                        } else {
                            None
                        };
                        let mut scratch = Vals::new();
                        self.bind_con_pattern(&id, arg.as_ref(), &scrut_ty, &mut scratch)?;
                        self.emit(
                            ObKind::Unreachable { con: con.clone() },
                            f.name.span,
                            Prop::False,
                        );
                        self.scope_end(inner);
                    }
                }
            }
        }
        self.scope_end(mark);
        Ok(())
    }

    fn val_decl(
        &mut self,
        v: &sast::ValDecl,
        vals: &mut Vals,
        scope: &Scope,
    ) -> Result<(), ElabError> {
        let ty = match &v.anno {
            Some(anno) => {
                let env = self.env;
                let mut conv = Converter::new(&env.families, &mut self.gen);
                let mut want = conv
                    .convert_dtype(anno, scope)
                    .map_err(|e| ElabError::new(e.message, e.span))?;
                // For a non-branching right-hand side, open the annotation's
                // Σ quantifiers with instantiation variables before checking:
                // the variables stay linked to the actual value's indices
                // (needed for `val pa : [s:nat] ... array(s) = array(n, x)`).
                // A branching right-hand side picks a different witness per
                // branch, so the Σ must stay packed and the binding is
                // abstract.
                let branching =
                    matches!(&v.expr, sast::Expr::If(_, _, _, _) | sast::Expr::Case(_, _, _));
                if !branching {
                    while let Ty::Sigma(b, body) = self.resolve_shallow(&want) {
                        let (guard, inner) = self.open_existential(&b, &body, None);
                        self.emit(ObKind::Guard, v.span, guard);
                        want = inner;
                    }
                }
                self.check(&v.expr, &want, vals, scope)?;
                want
            }
            None => self.synth(&v.expr, vals, scope)?,
        };
        self.bind_pattern(&v.pat, &ty, vals)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Patterns.
    // -----------------------------------------------------------------

    /// Binds a pattern against a type: pushes hypothesis equations and
    /// universal variables, and extends `vals` with the bound variables.
    fn bind_pattern(&mut self, p: &sast::Pat, ty: &Ty, vals: &mut Vals) -> Result<(), ElabError> {
        let ty = self.unpack_sigmas(ty.clone());
        match p {
            sast::Pat::Wild(_) => Ok(()),
            sast::Pat::Var(id) if self.env.is_constructor(&id.name) => {
                self.bind_con_pattern(id, None, &ty, vals)
            }
            sast::Pat::Var(id) => {
                // Replace every index of the type by a fresh universal
                // variable with a defining hypothesis (the paper's "ys is
                // assumed to be of type 'a list(n)" step).
                let bound_ty = self.generalize_indices(&ty, &id.name);
                vals.insert(id.name.clone(), Scheme::mono(bound_ty));
                Ok(())
            }
            sast::Pat::Int(n, _) => {
                if let Ty::App(name, _, ixs) = &ty {
                    if name == "int" {
                        if let Some(Ix::Int(i)) = ixs.first() {
                            self.push_hyp(Prop::eq(i.clone(), IExp::lit(*n)));
                        }
                    }
                }
                Ok(())
            }
            sast::Pat::Bool(b, _) => {
                if let Ty::App(name, _, ixs) = &ty {
                    if name == "bool" {
                        if let Some(Ix::Bool(q)) = ixs.first() {
                            let q = q.clone();
                            self.push_hyp(if *b { q } else { q.negate() });
                        }
                    }
                }
                Ok(())
            }
            sast::Pat::Tuple(ps, span) => {
                if ps.is_empty() {
                    return Ok(());
                }
                match &ty {
                    Ty::Tuple(ts) if ts.len() == ps.len() => {
                        for (p, t) in ps.iter().zip(ts) {
                            self.bind_pattern(p, t, vals)?;
                        }
                        Ok(())
                    }
                    // Opaque scrutinee: components are opaque too.
                    Ty::Rigid(n) if n.starts_with("_u") => {
                        for p in ps {
                            self.bind_pattern(p, &ty, vals)?;
                        }
                        Ok(())
                    }
                    other => Err(ElabError::new(
                        format!("tuple pattern of {} against `{other}`", ps.len()),
                        *span,
                    )),
                }
            }
            sast::Pat::Con(id, arg, _) => self.bind_con_pattern(id, arg.as_deref(), &ty, vals),
            sast::Pat::Anno(inner, _anno, _) => {
                // The ML-level consistency of the annotation was verified by
                // phase 1; bind the structure.
                self.bind_pattern(inner, &ty, vals)
            }
        }
    }

    /// Replaces indexed type arguments with fresh universals + equations.
    /// A pattern variable of an *unindexed* family type (a bare `int` from
    /// an unrefined annotation, say) receives fresh universal indices with
    /// no equations — the existential interpretation of the missing index —
    /// so that all occurrences of the variable share one index.
    fn generalize_indices(&mut self, ty: &Ty, base: &str) -> Ty {
        match ty {
            Ty::App(name, tys, ixs) => {
                let sorts =
                    self.env.families.get(name).map(|f| f.ix_sorts.clone()).unwrap_or_default();
                if ixs.is_empty() && sorts.is_empty() {
                    return ty.clone();
                }
                // Missing indices: invent them (universally, no equation).
                let ixs: Vec<Ix> = if ixs.is_empty() {
                    let fresh_ixs: Vec<Ix> = sorts
                        .iter()
                        .map(|s| {
                            let v = self.gen.fresh(base);
                            match s {
                                sast::Sort::Bool => {
                                    self.push_uni(v.clone(), Sort::Bool);
                                    Ix::Bool(Prop::BVar(v))
                                }
                                other => {
                                    self.push_uni(v.clone(), Sort::Int);
                                    if matches!(other, sast::Sort::Nat) {
                                        self.push_hyp(Prop::le(IExp::lit(0), IExp::var(v.clone())));
                                    }
                                    Ix::Int(IExp::var(v))
                                }
                            }
                        })
                        .collect();
                    return Ty::App(name.clone(), tys.clone(), fresh_ixs);
                } else {
                    ixs.clone()
                };
                let mut new_ixs = Vec::with_capacity(ixs.len());
                for (k, ix) in ixs.iter().enumerate() {
                    match ix {
                        Ix::Int(e) => {
                            let v = self.gen.fresh(base);
                            self.push_uni(v.clone(), Sort::Int);
                            // Family sort knowledge (e.g. nat) is a sound
                            // hypothesis about the actual value's index.
                            if matches!(sorts.get(k), Some(sast::Sort::Nat)) {
                                self.push_hyp(Prop::le(IExp::lit(0), IExp::var(v.clone())));
                            }
                            self.push_equation_hyp(e.clone(), IExp::var(v.clone()));
                            new_ixs.push(Ix::Int(IExp::var(v)));
                        }
                        Ix::Bool(q) => {
                            let v = self.gen.fresh(base);
                            self.push_uni(v.clone(), Sort::Bool);
                            let b = Prop::BVar(v.clone());
                            // q <-> b as two hypotheses.
                            self.push_hyp(q.clone().negate().or(b.clone()));
                            self.push_hyp(b.clone().negate().or(q.clone()));
                            new_ixs.push(Ix::Bool(b));
                        }
                    }
                }
                Ty::App(name.clone(), tys.clone(), new_ixs)
            }
            other => other.clone(),
        }
    }

    /// Match exhaustiveness with refinements: for every constructor of the
    /// scrutinee's datatype that no arm covers, emit an
    /// [`ObKind::Unreachable`] obligation — `false` must follow from the
    /// hypotheses plus the constructor's index equations. A provable
    /// obligation means the missing arm can never be reached (the paper's
    /// tag-check-elimination reasoning applied to `case`); an unproven one
    /// is reported as a non-exhaustiveness warning by the pipeline.
    fn check_exhaustiveness(
        &mut self,
        scrut_ty: &Ty,
        arms: &[(sast::Pat, sast::Expr)],
        span: Span,
    ) -> Result<(), ElabError> {
        let Ty::App(dt_name, _, _) = self.resolve_shallow(scrut_ty) else {
            return Ok(());
        };
        let Some(info) = self.env.datatypes.get(&dt_name).cloned() else {
            return Ok(());
        };
        let mut covered: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (p, _) in arms {
            match p {
                sast::Pat::Con(c, _, _) => {
                    covered.insert(c.name.clone());
                }
                sast::Pat::Var(c) if self.env.is_constructor(&c.name) => {
                    covered.insert(c.name.clone());
                }
                // A catch-all (variable/wildcard) or a literal pattern makes
                // the analysis give up (trivially exhaustive resp. outside
                // the constructor lattice).
                _ => return Ok(()),
            }
        }
        for con in &info.cons {
            if covered.contains(con) {
                continue;
            }
            let mark = self.scope_begin();
            let id = sast::Ident::synth(con);
            let arg =
                if self.env.cons[con].arg.is_some() { Some(sast::Pat::Wild(span)) } else { None };
            // Assume the scrutinee *is* this constructor; its index
            // equations become hypotheses under which `false` must hold.
            let mut scratch = Vals::new();
            self.bind_con_pattern(&id, arg.as_ref(), scrut_ty, &mut scratch)?;
            self.emit(ObKind::Unreachable { con: con.clone() }, span, Prop::False);
            self.scope_end(mark);
        }
        Ok(())
    }

    fn bind_con_pattern(
        &mut self,
        id: &sast::Ident,
        arg: Option<&sast::Pat>,
        scrut_ty: &Ty,
        vals: &mut Vals,
    ) -> Result<(), ElabError> {
        let con =
            self.env.cons.get(&id.name).ok_or_else(|| {
                ElabError::new(format!("unknown constructor `{}`", id.name), id.span)
            })?;
        let con = con.clone();
        let (dt_tyargs, dt_ixs) = match &self.resolve_shallow(scrut_ty) {
            Ty::App(name, tys, ixs) if *name == con.datatype => (tys.clone(), ixs.clone()),
            // Opaque scrutinee (see `coerce`) or unresolved metavariable:
            // instantiate the datatype's parameters with fresh
            // metavariables and learn nothing about indices.
            Ty::Rigid(n) if n.starts_with("_u") => {
                let metas: Vec<Ty> = con.tyvars.iter().map(|_| self.fresh_meta()).collect();
                (metas, Vec::new())
            }
            Ty::Meta(_) => {
                let metas: Vec<Ty> = con.tyvars.iter().map(|_| self.fresh_meta()).collect();
                (metas, Vec::new())
            }
            other => {
                return Err(ElabError::new(
                    format!(
                        "constructor `{}` of `{}` matched against `{other}`",
                        id.name, con.datatype
                    ),
                    id.span,
                ))
            }
        };
        // Instantiate the constructor's type variables with the scrutinee's.
        let mut arg_ty = con.arg.clone();
        let mut result = con.result.clone();
        for (tv, t) in con.tyvars.iter().zip(&dt_tyargs) {
            arg_ty = arg_ty.map(|a| a.subst_rigid(tv, t));
            result = result.subst_rigid(tv, t);
        }
        // Open the index binder universally: matching *reveals* the hidden
        // indices; the guard is a sound hypothesis.
        let (guard, opened, fresh) = self.open_binder(
            &con.binder,
            &Ty::Tuple(vec![arg_ty.clone().unwrap_or_else(Ty::unit), result.clone()]),
            None,
        );
        let (arg_ty, result) = match opened {
            Ty::Tuple(mut ts) if ts.len() == 2 => {
                let r = ts.pop().expect("two");
                let a = ts.pop().expect("two");
                (if con.arg.is_some() { Some(a) } else { None }, r)
            }
            _ => unreachable!("opened a 2-tuple"),
        };
        for (v, s) in fresh {
            self.push_uni(v, s);
        }
        self.push_hyp(guard);
        // Hypothesis equations between the constructor's result indices and
        // the scrutinee's indices (if the scrutinee is indexed).
        if let Ty::App(_, _, con_ixs) = &result {
            for (ci, si) in con_ixs.iter().zip(&dt_ixs) {
                match (ci, si) {
                    (Ix::Int(a), Ix::Int(b)) => self.push_equation_hyp(a.clone(), b.clone()),
                    (Ix::Bool(a), Ix::Bool(b)) => {
                        self.push_hyp(a.clone().negate().or(b.clone()));
                        self.push_hyp(b.clone().negate().or(a.clone()));
                    }
                    _ => {}
                }
            }
        }
        match (arg, arg_ty) {
            (Some(p), Some(at)) => self.bind_pattern(p, &at, vals),
            (None, None) => Ok(()),
            (Some(_), None) => {
                Err(ElabError::new(format!("constructor `{}` takes no argument", id.name), id.span))
            }
            (None, Some(_)) => Err(ElabError::new(
                format!("constructor `{}` expects an argument", id.name),
                id.span,
            )),
        }
    }

    // -----------------------------------------------------------------
    // Checking.
    // -----------------------------------------------------------------

    fn check(
        &mut self,
        e: &sast::Expr,
        want: &Ty,
        vals: &Vals,
        scope: &Scope,
    ) -> Result<(), ElabError> {
        let want = self.resolve_shallow(want);
        // Branching constructs distribute the expected type into their
        // branches *before* any Σ in `want` is opened, so that each branch
        // chooses its own existential witness (filter's `nil` and `::`
        // branches pick different lengths for the same `[n:nat | n <= m]`).
        if !matches!(
            e,
            sast::Expr::If(_, _, _, _)
                | sast::Expr::Case(_, _, _)
                | sast::Expr::Let(_, _, _)
                | sast::Expr::Seq(_, _)
        ) {
            match &want {
                Ty::Pi(b, body) => {
                    let inner = self.open_universal(b, body, None);
                    return self.check(e, &inner, vals, scope);
                }
                Ty::Sigma(b, body) => {
                    let (guard, inner) = self.open_existential(b, body, None);
                    self.check(e, &inner, vals, scope)?;
                    self.emit(ObKind::Guard, e.span(), guard);
                    return Ok(());
                }
                Ty::Meta(_) => {
                    let got = self.synth(e, vals, scope)?;
                    return self.coerce(&got, &want, e.span());
                }
                _ => {}
            }
        }
        match e {
            sast::Expr::If(c, t, f, _) => {
                let cond = self.synth_cond(c, vals, scope)?;
                self.record_site(SiteRole::IfCond, c.span(), cond.clone());
                let mark = self.scope_begin();
                if let Some(p) = &cond {
                    self.push_hyp(p.clone());
                }
                self.check(t, &want, vals, scope)?;
                self.scope_end(mark);
                if let Some(p) = &cond {
                    self.push_hyp(p.clone().negate());
                }
                self.check(f, &want, vals, scope)?;
                self.scope_end(mark);
                Ok(())
            }
            sast::Expr::Case(scrut, arms, span) => {
                let st = self.synth(scrut, vals, scope)?;
                let st = self.unpack_sigmas(st);
                for (p, body) in arms {
                    let mark = self.scope_begin();
                    let mut avals = vals.clone();
                    self.bind_pattern(p, &st, &mut avals)?;
                    self.record_site(SiteRole::CaseArm { con: self.arm_con(p) }, p.span(), None);
                    self.check(body, &want, &avals, scope)?;
                    self.scope_end(mark);
                }
                self.check_exhaustiveness(&st, arms, *span)?;
                Ok(())
            }
            sast::Expr::Let(decls, body, _) => {
                let mut lvals = vals.clone();
                for d in decls {
                    self.decl(d, &mut lvals, scope)?;
                }
                self.check(body, &want, &lvals, scope)
            }
            sast::Expr::Seq(es, _) => {
                let (last, init) = es.split_last().expect("parser ensures non-empty");
                for x in init {
                    self.synth(x, vals, scope)?;
                }
                self.check(last, &want, vals, scope)
            }
            sast::Expr::Tuple(es, span) => match &want {
                Ty::Tuple(ts) if ts.len() == es.len() => {
                    for (x, t) in es.iter().zip(ts) {
                        self.check(x, t, vals, scope)?;
                    }
                    Ok(())
                }
                Ty::App(u, _, _) if u == "unit" && es.is_empty() => Ok(()),
                other => {
                    if es.is_empty() && matches!(other, Ty::Meta(_)) {
                        let got = Ty::unit();
                        return self.coerce(&got, &want, *span);
                    }
                    Err(ElabError::new(
                        format!("tuple of {} checked against `{other}`", es.len()),
                        *span,
                    ))
                }
            },
            sast::Expr::Fn(arms, span) => match &want {
                Ty::Arrow(dom, cod) => {
                    for (p, body) in arms {
                        let mark = self.scope_begin();
                        let mut avals = vals.clone();
                        self.bind_pattern(p, dom, &mut avals)?;
                        self.check(body, cod, &avals, scope)?;
                        self.scope_end(mark);
                    }
                    Ok(())
                }
                other => Err(ElabError::new(
                    format!("fn expression checked against non-function `{other}`"),
                    *span,
                )),
            },
            sast::Expr::Anno(inner, anno, span) => {
                let env = self.env;
                let mut conv = Converter::new(&env.families, &mut self.gen);
                let t = conv
                    .convert_dtype(anno, scope)
                    .map_err(|e| ElabError::new(e.message, e.span))?;
                self.check(inner, &t, vals, scope)?;
                self.coerce(&t, &want, *span)
            }
            // `raise` inhabits every type; it imposes no constraints.
            sast::Expr::Raise(_, _) => Ok(()),
            sast::Expr::Handle(body, arms, _) => {
                // Handlers run with none of the body's hypotheses (the body
                // aborted at an unknown point), so each checks in its own
                // scope.
                self.check(body, &want, vals, scope)?;
                for (_, h) in arms {
                    let mark = self.scope_begin();
                    self.check(h, &want, vals, scope)?;
                    self.scope_end(mark);
                }
                Ok(())
            }
            _ => {
                let got = self.synth(e, vals, scope)?;
                self.coerce(&got, &want, e.span())
            }
        }
    }

    // -----------------------------------------------------------------
    // Synthesis.
    // -----------------------------------------------------------------

    fn synth(&mut self, e: &sast::Expr, vals: &Vals, scope: &Scope) -> Result<Ty, ElabError> {
        match e {
            sast::Expr::Var(id) => self.lookup(id, vals),
            sast::Expr::Int(n, _) => Ok(Ty::int_singleton(IExp::lit(*n))),
            sast::Expr::Bool(b, _) => {
                Ok(Ty::bool_singleton(if *b { Prop::True } else { Prop::False }))
            }
            sast::Expr::App(f, a, span) => {
                let (fun_ty, callee) = match f.as_ref() {
                    sast::Expr::Var(id) => (self.lookup(id, vals)?, Some(id.name.clone())),
                    other => (self.synth(other, vals, scope)?, None),
                };
                self.apply(fun_ty, callee.as_deref(), a, *span, vals, scope)
            }
            sast::Expr::Tuple(es, _) => {
                if es.is_empty() {
                    return Ok(Ty::unit());
                }
                let ts =
                    es.iter().map(|x| self.synth(x, vals, scope)).collect::<Result<Vec<_>, _>>()?;
                Ok(Ty::Tuple(ts))
            }
            sast::Expr::If(c, t, f, _) => {
                let cond = self.synth_cond(c, vals, scope)?;
                self.record_site(SiteRole::IfCond, c.span(), cond.clone());
                let mark = self.scope_begin();
                if let Some(p) = &cond {
                    self.push_hyp(p.clone());
                }
                let tt = self.synth(t, vals, scope)?;
                let tt = self.zonk(&tt);
                self.scope_end(mark);
                if let Some(p) = &cond {
                    self.push_hyp(p.clone().negate());
                }
                let ft = self.synth(f, vals, scope)?;
                let ft = self.zonk(&ft);
                self.scope_end(mark);
                // Join by erasing refinements (sound; annotated code uses
                // checking mode and keeps full precision).
                if tt == ft {
                    Ok(tt)
                } else {
                    let lifted = self.env.lift(&erase(&tt), &mut self.gen);
                    let _ = ft;
                    Ok(lifted)
                }
            }
            sast::Expr::Case(scrut, arms, span) => {
                let st = self.synth(scrut, vals, scope)?;
                let st = self.unpack_sigmas(st);
                self.check_exhaustiveness(&st, arms, *span)?;
                let mut out: Option<Ty> = None;
                for (p, body) in arms {
                    let mark = self.scope_begin();
                    let mut avals = vals.clone();
                    self.bind_pattern(p, &st, &mut avals)?;
                    self.record_site(SiteRole::CaseArm { con: self.arm_con(p) }, p.span(), None);
                    let bt = self.synth(body, &avals, scope)?;
                    let bt = self.zonk(&bt);
                    self.scope_end(mark);
                    out = Some(match out {
                        None => bt,
                        Some(prev) if prev == bt => prev,
                        Some(prev) => self.env.lift(&erase(&prev), &mut self.gen),
                    });
                }
                out.ok_or_else(|| ElabError::new("empty case expression", *span))
            }
            sast::Expr::Let(decls, body, _) => {
                let mut lvals = vals.clone();
                for d in decls {
                    self.decl(d, &mut lvals, scope)?;
                }
                self.synth(body, &lvals, scope)
            }
            sast::Expr::Seq(es, _) => {
                let (last, init) = es.split_last().expect("parser ensures non-empty");
                for x in init {
                    self.synth(x, vals, scope)?;
                }
                self.synth(last, vals, scope)
            }
            sast::Expr::Anno(inner, anno, _) => {
                let env = self.env;
                let mut conv = Converter::new(&env.families, &mut self.gen);
                let t = conv
                    .convert_dtype(anno, scope)
                    .map_err(|e| ElabError::new(e.message, e.span))?;
                self.check(inner, &t, vals, scope)?;
                Ok(t)
            }
            sast::Expr::Andalso(a, b, _) => {
                // Short-circuit refinement: the right operand elaborates
                // under the left's truth (its accesses may be guarded by
                // it, e.g. `r < m andalso sub(a, r) > x`). The hypothesis
                // is scoped to the operand: obligations discovered inside
                // flush against it, then it is neutralised so it cannot
                // leak to later goals (the whole conjunction may be false).
                let pa = self.synth_cond(a, vals, scope)?;
                let hyp_idx = pa.as_ref().map(|p| {
                    // Unconditional push so the index is always valid.
                    self.ctx.push(Entry::Hyp(p.clone()));
                    self.ctx.len() - 1
                });
                let pmark = self.pending.len();
                let pb = self.synth_cond(b, vals, scope)?;
                self.flush_pending(pmark);
                if let Some(i) = hyp_idx {
                    self.ctx[i] = Entry::Hyp(Prop::True);
                }
                Ok(match (pa, pb) {
                    (Some(p), Some(q)) => Ty::bool_singleton(p.and(q)),
                    _ => Ty::bool(),
                })
            }
            sast::Expr::Orelse(a, b, _) => {
                // Dually, the right operand runs only when the left is
                // false.
                let pa = self.synth_cond(a, vals, scope)?;
                let hyp_idx = pa.as_ref().map(|p| {
                    self.ctx.push(Entry::Hyp(p.clone().negate()));
                    self.ctx.len() - 1
                });
                let pmark = self.pending.len();
                let pb = self.synth_cond(b, vals, scope)?;
                self.flush_pending(pmark);
                if let Some(i) = hyp_idx {
                    self.ctx[i] = Entry::Hyp(Prop::True);
                }
                Ok(match (pa, pb) {
                    (Some(p), Some(q)) => Ty::bool_singleton(p.or(q)),
                    _ => Ty::bool(),
                })
            }
            sast::Expr::Fn(_, span) => Err(ElabError::new(
                "fn expressions need a checking context (apply an annotation)",
                *span,
            )),
            sast::Expr::Raise(_, _) => Ok(self.fresh_meta()),
            sast::Expr::Handle(body, arms, _) => {
                let bt = self.synth(body, vals, scope)?;
                let bt = self.zonk(&bt);
                let mut out = bt.clone();
                for (_, h) in arms {
                    let mark = self.scope_begin();
                    let ht = self.synth(h, vals, scope)?;
                    let ht = self.zonk(&ht);
                    self.scope_end(mark);
                    if ht != out {
                        // Join by erasure, as for if/case in synthesis mode.
                        out = self.env.lift(&erase(&out), &mut self.gen);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Synthesises a boolean condition, returning its refinement if any.
    fn synth_cond(
        &mut self,
        e: &sast::Expr,
        vals: &Vals,
        scope: &Scope,
    ) -> Result<Option<Prop>, ElabError> {
        let t = self.synth(e, vals, scope)?;
        let t = self.unpack_sigmas(t);
        match t {
            Ty::App(name, _, ixs) if name == "bool" => match ixs.into_iter().next() {
                Some(Ix::Bool(p)) => Ok(Some(p)),
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }

    fn lookup(&mut self, id: &sast::Ident, vals: &Vals) -> Result<Ty, ElabError> {
        if let Some(s) = vals.get(&id.name) {
            let s = s.clone();
            return Ok(self.instantiate(&s));
        }
        if self.env.is_constructor(&id.name) {
            return Ok(self.con_type(&id.name));
        }
        if let Some(vi) = self.env.values.get(&id.name) {
            let s = vi.scheme.clone();
            return Ok(self.instantiate(&s));
        }
        Err(ElabError::new(format!("unbound variable `{}`", id.name), id.span))
    }

    fn con_type(&mut self, name: &str) -> Ty {
        let con = self.env.cons[name].clone();
        let mut arg = con.arg.clone();
        let mut result = con.result.clone();
        for tv in &con.tyvars {
            let m = self.fresh_meta();
            arg = arg.map(|a| a.subst_rigid(tv, &m));
            result = result.subst_rigid(tv, &m);
        }
        let body = match arg {
            Some(a) => Ty::Arrow(Box::new(a), Box::new(result)),
            None => result,
        };
        let ty = if con.binder.vars.is_empty() {
            body
        } else {
            Ty::Pi(con.binder.clone(), Box::new(body))
        };
        ty.refresh(&mut self.gen)
    }

    /// Applies `fun_ty` to `arg`: peels Π (existential instantiation) and
    /// Σ (universal unpacking), checks the argument, then emits the
    /// instantiated guards as obligations.
    fn apply(
        &mut self,
        fun_ty: Ty,
        callee: Option<&str>,
        arg: &sast::Expr,
        span: Span,
        vals: &Vals,
        scope: &Scope,
    ) -> Result<Ty, ElabError> {
        let mut ty = self.resolve_shallow(&fun_ty);
        let mut guards: Vec<Prop> = Vec::new();
        loop {
            match ty {
                Ty::Pi(b, body) => {
                    let (guard, bd) = self.open_existential(&b, &body, None);
                    if guard != Prop::True {
                        guards.push(guard);
                    }
                    ty = self.resolve_shallow(&bd);
                }
                Ty::Sigma(b, body) => {
                    ty = self.open_universal(&b, &body, None);
                    ty = self.resolve_shallow(&ty);
                }
                other => {
                    ty = other;
                    break;
                }
            }
        }
        let Ty::Arrow(dom, cod) = ty else {
            return Err(ElabError::new(format!("applied a non-function of type `{ty}`"), span));
        };
        self.check(arg, &dom, vals, scope)?;
        let kind = self.guard_kind(callee);
        for g in guards {
            self.emit(kind.clone(), span, g);
        }
        Ok(*cod)
    }

    fn guard_kind(&self, callee: Option<&str>) -> ObKind {
        match callee {
            Some(name) => match self.env.values.get(name).map(|v| v.check) {
                Some(CheckKind::ArrayBound) => {
                    ObKind::Bound { prim: name.to_string(), check: CheckKind::ArrayBound }
                }
                Some(CheckKind::ListTag) => {
                    ObKind::Bound { prim: name.to_string(), check: CheckKind::ListTag }
                }
                Some(CheckKind::DivZero) => ObKind::DivGuard,
                _ => ObKind::Guard,
            },
            None => ObKind::Guard,
        }
    }

    // -----------------------------------------------------------------
    // Coercion (index subtyping).
    // -----------------------------------------------------------------

    /// Coerces `from ≤ to`, emitting index equations as obligations (and
    /// hypotheses).
    fn coerce(&mut self, from: &Ty, to: &Ty, site: Span) -> Result<(), ElabError> {
        let from = self.resolve_shallow(from);
        let to = self.resolve_shallow(to);
        match (&from, &to) {
            (Ty::Meta(m), t) => {
                let widened = self.widen_for_meta(t);
                self.metas.insert(*m, widened);
                Ok(())
            }
            (t, Ty::Meta(m)) => {
                let widened = self.widen_for_meta(t);
                self.metas.insert(*m, widened);
                Ok(())
            }
            // Opaque rigids (`_uN`) stand for phase-1 unification variables
            // that stayed unresolved inside a local binding's recorded
            // scheme. They carry no index information, so coercion is
            // allowed without obligations (fail-safe: nothing is proven
            // from them).
            (Ty::Rigid(n), _) | (_, Ty::Rigid(n)) if n.starts_with("_u") => Ok(()),
            (Ty::Sigma(b, body), _) => {
                let inner = self.open_universal(b, body, None);
                self.coerce(&inner, &to, site)
            }
            (_, Ty::Sigma(b, body)) => {
                let (guard, inner) = self.open_existential(b, body, None);
                self.coerce(&from, &inner, site)?;
                self.emit(ObKind::Guard, site, guard);
                Ok(())
            }
            (_, Ty::Pi(b, body)) => {
                let inner = self.open_universal(b, body, None);
                self.coerce(&from, &inner, site)
            }
            (Ty::Pi(b, body), _) => {
                let (guard, inner) = self.open_existential(b, body, None);
                self.coerce(&inner, &to, site)?;
                self.emit(ObKind::Guard, site, guard);
                Ok(())
            }
            (Ty::Rigid(a), Ty::Rigid(b2)) if a == b2 => Ok(()),
            (Ty::App(n1, ts1, ixs1), Ty::App(n2, ts2, ixs2)) if n1 == n2 => {
                for (a, b) in ts1.iter().zip(ts2) {
                    self.coerce(a, b, site)?;
                }
                self.coerce_indices(n1, ixs1, ixs2, site);
                Ok(())
            }
            (Ty::Tuple(xs), Ty::Tuple(ys)) if xs.len() == ys.len() => {
                for (a, b) in xs.iter().zip(ys) {
                    self.coerce(a, b, site)?;
                }
                Ok(())
            }
            (Ty::Arrow(a1, b1), Ty::Arrow(a2, b2)) => {
                self.coerce(a2, a1, site)?;
                self.coerce(b1, b2, site)
            }
            (f, t) => Err(ElabError::new(format!("cannot coerce `{f}` to `{t}`"), site)),
        }
    }

    /// Widens a type before it becomes a metavariable instantiation: a
    /// top-level `int(e)`/`bool(p)` singleton loses its specific index
    /// (becoming the existential `[a] int(a)`), because the instantiation
    /// must also cover *other* values flowing into the same type variable
    /// (the elements of a `::`-chain, say). Compound indexed types such as
    /// `int array(n)` stay exact — that is what propagates row lengths
    /// through `sub` in `matmult`.
    fn widen_for_meta(&mut self, t: &Ty) -> Ty {
        match t {
            Ty::App(name, tys, ixs) if name == "int" && !ixs.is_empty() => {
                let a = self.gen.fresh("a");
                let _ = tys;
                Ty::Sigma(
                    Binder::new(vec![(a.clone(), Sort::Int)]),
                    Box::new(Ty::int_singleton(IExp::var(a))),
                )
            }
            Ty::App(name, _, ixs) if name == "bool" && !ixs.is_empty() => {
                let b = self.gen.fresh("b");
                Ty::Sigma(
                    Binder::new(vec![(b.clone(), Sort::Bool)]),
                    Box::new(Ty::bool_singleton(Prop::BVar(b))),
                )
            }
            other => other.clone(),
        }
    }

    /// Emits the index equations of a family coercion. When one side is
    /// unindexed, the unknown side is represented by fresh universal
    /// variables (the existential interpretation of unindexed types).
    fn coerce_indices(&mut self, fam: &str, from: &[Ix], to: &[Ix], site: Span) {
        if to.is_empty() {
            return; // target forgets the index: always allowed
        }
        if from.is_empty() {
            // Source index unknown: introduce it universally.
            let sorts = self.env.families.get(fam).map(|f| f.ix_sorts.clone()).unwrap_or_default();
            let mut fresh_from = Vec::with_capacity(to.len());
            for (k, ix) in to.iter().enumerate() {
                match ix {
                    Ix::Int(_) => {
                        let v = self.gen.fresh("u");
                        self.push_uni(v.clone(), Sort::Int);
                        if matches!(sorts.get(k), Some(sast::Sort::Nat)) {
                            self.push_hyp(Prop::le(IExp::lit(0), IExp::var(v.clone())));
                        }
                        fresh_from.push(Ix::Int(IExp::var(v)));
                    }
                    Ix::Bool(_) => {
                        let v = self.gen.fresh("u");
                        self.push_uni(v.clone(), Sort::Bool);
                        fresh_from.push(Ix::Bool(Prop::BVar(v)));
                    }
                }
            }
            return self.emit_index_equations(&fresh_from, to, site);
        }
        self.emit_index_equations(from, to, site);
    }

    fn emit_index_equations(&mut self, from: &[Ix], to: &[Ix], site: Span) {
        for (a, b) in from.iter().zip(to) {
            match (a, b) {
                (Ix::Int(x), Ix::Int(y)) => {
                    self.emit_int_equation(site, x.clone(), y.clone());
                }
                (Ix::Bool(p), Ix::Bool(q)) => {
                    if p == q {
                        continue;
                    }
                    let fwd = p.clone().negate().or(q.clone());
                    let bwd = q.clone().negate().or(p.clone());
                    let iff = fwd.and(bwd);
                    // A bare undetermined boolean instantiation variable on
                    // either side makes the equation defining.
                    let defining = match (p, q) {
                        (Prop::BVar(v), other) | (other, Prop::BVar(v))
                            if self.exi_vars.contains(v)
                                && !self.determined.contains(v)
                                && !other.free_vars().contains(v) =>
                        {
                            Some(v.clone())
                        }
                        _ => None,
                    };
                    if let Some(v) = defining {
                        self.determined.insert(v);
                        self.push_hyp(iff);
                    } else {
                        self.ctx.push(Entry::Hyp(iff.clone()));
                        let idx = self.ctx.len() - 1;
                        self.pending.push((ObKind::TypeEq, site, iff, Some(idx)));
                    }
                }
                _ => {}
            }
        }
    }
}

/// A path to a pattern position: parameter index plus tuple-component
/// indices within that parameter.
type PatPath = (usize, Vec<usize>);

/// Finds the unique constructor-scrutinee path of a clause group, if any:
/// every clause must have a constructor pattern at that path and
/// irrefutable patterns everywhere else.
fn single_scrutinee_path(clauses: &[sast::Clause]) -> Option<PatPath> {
    let first = clauses.first()?;
    let mut candidates: Vec<PatPath> = Vec::new();
    for (k, p) in first.params.iter().enumerate() {
        collect_con_paths(p, (k, Vec::new()), &mut candidates);
    }
    // Every clause must scrutinise the same single path.
    candidates.retain(|path| {
        clauses.iter().all(|c| {
            c.params.iter().enumerate().all(|(k, p)| pattern_ok_for_path(p, k, path))
                && matches!(
                    pattern_at_path(&c.params, path),
                    Some(sast::Pat::Con(_, _, _) | sast::Pat::Var(_))
                )
        })
    });
    if candidates.len() == 1 {
        candidates.pop()
    } else {
        None
    }
}

/// Collects paths to constructor-headed subpatterns (through tuples only).
fn collect_con_paths(p: &sast::Pat, here: PatPath, out: &mut Vec<PatPath>) {
    match p {
        sast::Pat::Con(_, _, _) => out.push(here),
        sast::Pat::Tuple(ps, _) => {
            for (k, q) in ps.iter().enumerate() {
                let mut path = here.clone();
                path.1.push(k);
                collect_con_paths(q, path, out);
            }
        }
        _ => {}
    }
}

/// The subpattern at a path, if the structure matches.
fn pattern_at_path<'p>(params: &'p [sast::Pat], path: &PatPath) -> Option<&'p sast::Pat> {
    let mut p = params.get(path.0)?;
    for &k in &path.1 {
        match p {
            sast::Pat::Tuple(ps, _) => p = ps.get(k)?,
            _ => return None,
        }
    }
    Some(p)
}

/// `true` if pattern `p` (the whole parameter `param_idx`) is compatible
/// with `path` being the only scrutinee: everything off-path must be
/// irrefutable.
fn pattern_ok_for_path(p: &sast::Pat, param_idx: usize, path: &PatPath) -> bool {
    fn go(p: &sast::Pat, here: &mut Vec<usize>, param_idx: usize, path: &PatPath) -> bool {
        let on_path = param_idx == path.0 && *here == path.1;
        match p {
            sast::Pat::Wild(_) => true,
            sast::Pat::Var(_) => true,
            sast::Pat::Anno(inner, _, _) => go(inner, here, param_idx, path),
            sast::Pat::Con(_, _, _) => on_path,
            sast::Pat::Int(_, _) | sast::Pat::Bool(_, _) => false,
            sast::Pat::Tuple(ps, _) => ps.iter().enumerate().all(|(k, q)| {
                here.push(k);
                let ok = go(q, here, param_idx, path);
                here.pop();
                ok
            }),
        }
    }
    go(p, &mut Vec::new(), param_idx, path)
}

#[cfg(test)]
mod tests;
