//! Human-readable explanations of unproven obligations (§6: "we plan to
//! investigate how to generate more informative error messages should
//! dependent type-checking fail").
//!
//! An unproven obligation is rendered as a source-anchored diagnostic: the
//! offending expression, what had to be proven, the hypotheses that were
//! available, and why the solver gave up.

use crate::obligation::{ObKind, Obligation};
use dml_index::{Constraint, Prop};
use dml_syntax::{Diagnostic, Severity};

/// A sequent-like view of a constraint: the innermost conclusions with the
/// hypotheses in scope (quantifier structure flattened for display).
#[derive(Debug, Clone, Default)]
pub struct SequentView {
    /// Universally quantified variable names.
    pub universals: Vec<String>,
    /// Existentially quantified (instantiation) variable names.
    pub existentials: Vec<String>,
    /// Hypotheses, rendered.
    pub hypotheses: Vec<String>,
    /// Conclusions, rendered.
    pub conclusions: Vec<String>,
}

/// Flattens a constraint into a [`SequentView`].
pub fn sequent_view(c: &Constraint) -> SequentView {
    let mut view = SequentView::default();
    fn go(c: &Constraint, view: &mut SequentView) {
        match c {
            Constraint::Prop(p) => {
                if *p != Prop::True {
                    for q in p.conjuncts() {
                        view.conclusions.push(q.to_string());
                    }
                }
            }
            Constraint::And(cs) => {
                for c in cs {
                    go(c, view);
                }
            }
            Constraint::Implies(p, c) => {
                for q in p.conjuncts() {
                    view.hypotheses.push(q.to_string());
                }
                go(c, view);
            }
            Constraint::Forall(v, s, c) => {
                view.universals.push(format!("{v}:{s}"));
                go(c, view);
            }
            Constraint::Exists(v, s, c) => {
                view.existentials.push(format!("{v}:{s}"));
                go(c, view);
            }
        }
    }
    go(c, &mut view);
    view
}

/// Renders one unproven obligation against its source, with a caret
/// snippet, the proof goal, and the available hypotheses.
///
/// Severity tracks the consequence of the failure: an unproven `TypeEq` or
/// `DivGuard` is a genuine dependent type error (`error`); an unproven
/// bound check merely stays at run time, and an unproven exhaustiveness
/// obligation is a potential match failure — both `warning`s.
pub fn explain(ob: &Obligation, reason: &str, src: &str) -> String {
    let view = sequent_view(&ob.constraint);
    let (severity, headline) = match &ob.kind {
        ObKind::Bound { prim, .. } => (
            Severity::Warning,
            format!("cannot prove this `{prim}` in bounds — the check stays at run time"),
        ),
        ObKind::DivGuard => (Severity::Error, "cannot prove the divisor non-zero".to_string()),
        ObKind::Guard => (Severity::Warning, "cannot prove this guard".to_string()),
        ObKind::TypeEq => {
            (Severity::Error, "cannot prove this index equation (dependent type error)".to_string())
        }
        ObKind::Unreachable { con } => (
            Severity::Warning,
            format!(
                "match may not be exhaustive: cannot prove constructor `{con}` impossible here"
            ),
        ),
    };
    let diag = match severity {
        Severity::Error => Diagnostic::error(headline, ob.site),
        _ => Diagnostic::warning(headline, ob.site),
    };
    let mut out = diag
        .with_note(format!("in function `{}`", ob.in_fun))
        .with_note(format!("must prove: {}", view.conclusions.join("  and  ")))
        .render(src);
    if view.hypotheses.is_empty() {
        out.push_str("  = no hypotheses were available\n");
    } else {
        out.push_str("  = from hypotheses:\n");
        for h in view.hypotheses.iter().take(12) {
            out.push_str(&format!("      {h}\n"));
        }
        if view.hypotheses.len() > 12 {
            out.push_str(&format!("      ... and {} more\n", view.hypotheses.len() - 12));
        }
    }
    out.push_str(&format!("  = solver verdict: {reason}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::{IExp, Sort, Var, VarGen};
    use dml_syntax::Span;
    use dml_types::env::CheckKind;

    fn sample_constraint(gen: &mut VarGen) -> (Constraint, Var) {
        let n = gen.fresh("n");
        let i = gen.fresh("i");
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Exists(
                i.clone(),
                Sort::Int,
                Box::new(Constraint::Implies(
                    Prop::le(IExp::lit(0), IExp::var(n.clone())),
                    Box::new(Constraint::Prop(Prop::lt(IExp::var(i), IExp::var(n.clone())))),
                )),
            )),
        );
        (c, n)
    }

    #[test]
    fn sequent_view_flattens() {
        let mut gen = VarGen::new();
        let (c, _) = sample_constraint(&mut gen);
        let v = sequent_view(&c);
        assert_eq!(v.universals, vec!["n:int"]);
        assert_eq!(v.existentials, vec!["i:int"]);
        assert_eq!(v.hypotheses, vec!["0 <= n"]);
        assert_eq!(v.conclusions, vec!["i < n"]);
    }

    #[test]
    fn explain_renders_source_snippet() {
        let src = "fun f(v) = sub(v, 9)";
        let mut gen = VarGen::new();
        let (c, _) = sample_constraint(&mut gen);
        let ob = Obligation {
            kind: ObKind::Bound { prim: "sub".into(), check: CheckKind::ArrayBound },
            site: Span::new(11, 20),
            constraint: c,
            in_fun: "f".into(),
        };
        let text = explain(&ob, "possibly falsifiable", src);
        assert!(text.contains("sub(v, 9)"), "{text}");
        assert!(text.contains("must prove: i < n"), "{text}");
        assert!(text.contains("0 <= n"), "{text}");
        assert!(text.contains("possibly falsifiable"), "{text}");
        assert!(text.contains("in function `f`"), "{text}");
    }

    #[test]
    fn explain_severity_tracks_kind() {
        let src = "fun f(v) = sub(v, 9)";
        let mut gen = VarGen::new();
        let (c, _) = sample_constraint(&mut gen);
        let ob = |kind: ObKind| Obligation {
            kind,
            site: Span::new(11, 20),
            constraint: c.clone(),
            in_fun: "f".into(),
        };
        // Type errors are errors...
        assert!(explain(&ob(ObKind::TypeEq), "r", src).starts_with("error:"));
        assert!(explain(&ob(ObKind::DivGuard), "r", src).starts_with("error:"));
        // ...but an unproven check or exhaustiveness obligation only keeps
        // its run-time behaviour.
        let bound = ObKind::Bound { prim: "sub".into(), check: CheckKind::ArrayBound };
        assert!(explain(&ob(bound), "r", src).starts_with("warning:"));
        let unre = ObKind::Unreachable { con: "nil".into() };
        assert!(explain(&ob(unre), "r", src).starts_with("warning:"));
    }

    #[test]
    fn explain_truncates_long_hypothesis_lists() {
        let src = "x";
        let _gen = VarGen::new();
        let hyps =
            (0..20).fold(Prop::True, |acc, k| acc.and(Prop::le(IExp::lit(k), IExp::lit(k + 1))));
        let c = Constraint::Implies(hyps, Box::new(Constraint::Prop(Prop::False)));
        let ob = Obligation {
            kind: ObKind::Guard,
            site: Span::new(0, 1),
            constraint: c,
            in_fun: "g".into(),
        };
        let text = explain(&ob, "blowup", src);
        assert!(text.contains("and 8 more"), "{text}");
    }
}
