//! Exercises the persistent worker pool's *helper threads* — the code
//! path a single-core machine never takes by default (its pool has
//! `available_parallelism - 1 = 0` helpers and the submitting thread works
//! every batch alone). `DML_SOLVER_HELPERS` forces helpers into existence
//! so the condvar handoff, chunk stealing, batch retirement, and
//! work-stealing id leases run under real thread interleavings even here.
//!
//! This is an integration test binary so it owns its process: the env var
//! is set before anything touches the pool's one-time initializer.

use dml_index::{Constraint, IExp, Prop, Sort, VarGen};
use dml_solver::{pool, prove_all, Solver, SolverOptions};
use std::sync::Once;

static FORCE_HELPERS: Once = Once::new();

fn force_helpers() {
    FORCE_HELPERS.call_once(|| {
        // Safe in edition 2021; this binary is single-purpose and sets the
        // variable before the pool can be initialized.
        std::env::set_var("DML_SOLVER_HELPERS", "3");
    });
}

/// `∀n. 0 ≤ n ⊃ 0 ≤ n + k` — valid for k ≥ 0, falsifiable for k < 0.
fn shifted(gen: &mut VarGen, k: i64) -> Constraint {
    let n = gen.fresh("n");
    Constraint::Forall(
        n.clone(),
        Sort::Int,
        Box::new(Constraint::Implies(
            Prop::le(IExp::lit(0), IExp::var(n.clone())),
            Box::new(Constraint::Prop(Prop::le(IExp::lit(0), IExp::var(n) + IExp::lit(k)))),
        )),
    )
}

fn verdicts(solver: &Solver, cs: &[Constraint], gen: &VarGen) -> Vec<Vec<bool>> {
    let refs: Vec<&Constraint> = cs.iter().collect();
    let mut gen = gen.clone();
    prove_all(solver, &refs, &mut gen)
        .iter()
        .map(|o| o.results.iter().map(|(_, r)| r.is_proven()).collect())
        .collect()
}

#[test]
fn helper_threads_solve_batches_cold_and_warm() {
    force_helpers();
    let mut gen = VarGen::new();
    let cs: Vec<Constraint> = (-8..56).map(|k| shifted(&mut gen, k)).collect();

    let sequential =
        verdicts(&Solver::new(SolverOptions::default().with_workers(Some(1))), &cs, &gen);
    // Cold pool: the first parallel batch pays the helper spawn.
    let parallel = Solver::new(SolverOptions::default().with_workers(Some(4)));
    let cold = verdicts(&parallel, &cs, &gen);
    assert!(pool::is_warm(), "first parallel batch initializes the pool");
    assert_eq!(pool::prewarm(), 3, "DML_SOLVER_HELPERS pins the helper count");
    // Warm pool: helpers already parked on the condvar.
    let warm = verdicts(&parallel, &cs, &gen);

    assert_eq!(sequential, cold, "cold-pool verdicts match sequential, in order");
    assert_eq!(sequential, warm, "warm-pool verdicts match sequential, in order");
    for (i, row) in cold.iter().enumerate() {
        assert_eq!(row, &vec![i >= 8], "obligation {i}");
    }
}

#[test]
fn many_small_batches_reuse_the_pool() {
    force_helpers();
    // Batches much smaller than the chunk fan-out, repeatedly: exercises
    // batch retirement and helpers racing the submitter to stale queues.
    for round in 0..50 {
        let mut gen = VarGen::new();
        let cs: Vec<Constraint> = (0..3).map(|k| shifted(&mut gen, k - 1)).collect();
        let solver = Solver::new(SolverOptions::default().with_workers(Some(4)));
        let got = verdicts(&solver, &cs, &gen);
        assert_eq!(got.len(), 3, "round {round}");
        for (i, row) in got.iter().enumerate() {
            assert_eq!(row, &vec![i >= 1], "round {round} obligation {i}");
        }
    }
}

#[test]
fn concurrent_submitters_share_the_pool() {
    force_helpers();
    // Several threads each submit batches at once: batches queue behind
    // one another and helpers pick whichever has work, like a compile
    // service would drive it.
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut gen = VarGen::new();
                let cs: Vec<Constraint> = (0..24).map(|k| shifted(&mut gen, k - 4)).collect();
                let solver = Solver::new(SolverOptions::default().with_workers(Some(4)));
                let got = verdicts(&solver, &cs, &gen);
                for (i, row) in got.iter().enumerate() {
                    assert_eq!(row, &vec![i >= 4], "submitter {t} obligation {i}");
                }
            });
        }
    });
}
