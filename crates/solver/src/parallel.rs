//! Multi-worker constraint solving over `std::thread::scope`.
//!
//! Obligations are independent verification conditions, so they can be
//! solved concurrently. The design keeps the solve phase *deterministic*:
//!
//! - results come back in obligation order regardless of worker count or
//!   scheduling (each worker tags results with the obligation index) —
//!   this includes per-goal [`dml_obs::GoalTrace`] buffers when tracing is
//!   on: each goal's events are buffered by whichever worker decided it
//!   and ride inside its [`Outcome`], so the merged trace stream is
//!   identical for every worker count;
//! - each worker gets a disjoint [`VarGen`] id range via [`VarGen::split`],
//!   so fresh-variable generation needs no lock and ids never collide —
//!   worker-fresh variables are internal to lowering/Omega and never escape
//!   into reported results;
//! - with `workers <= 1` the parent `gen` is threaded through directly,
//!   reproducing the sequential pipeline's variable consumption exactly.
//!
//! Work distribution is a shared atomic index (cheap work stealing): a
//! worker claims the next unsolved obligation until none remain, so one
//! slow goal cannot serialise the rest of the batch behind it.

use crate::goal::{Outcome, Solver};
use dml_index::{Constraint, VarGen};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves an optional worker-count request against the batch size.
///
/// `None` means "use available parallelism". The result is clamped to
/// `1..=n` (never more workers than obligations, never zero).
pub fn effective_workers(requested: Option<usize>, n: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    requested.unwrap_or(avail).clamp(1, n.max(1))
}

/// Proves every constraint, returning one [`Outcome`] per constraint in
/// input order.
///
/// The solver's verdict cache is shared across all workers (it is behind an
/// `Arc`), so a goal proven on one worker is a cache hit on every other.
pub fn prove_all(solver: &Solver, constraints: &[&Constraint], gen: &mut VarGen) -> Vec<Outcome> {
    let workers = effective_workers(solver.options().workers, constraints.len());
    if workers <= 1 {
        return constraints.iter().map(|c| solver.prove(c, gen)).collect();
    }
    let supplies = gen.split(workers);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Outcome>> = vec![None; constraints.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = supplies
            .into_iter()
            .map(|mut sub| {
                let next = &next;
                scope.spawn(move || {
                    let mut done: Vec<(usize, Outcome)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(c) = constraints.get(i) else { break };
                        done.push((i, solver.prove(c, &mut sub)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, outcome) in h.join().expect("solver worker panicked") {
                slots[i] = Some(outcome);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every obligation solved exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::SolverOptions;
    use dml_index::{IExp, Prop, Sort};

    /// `∀n. 0 ≤ n ⊃ 0 ≤ n + k` — valid for k ≥ 0, falsifiable for k < 0.
    fn shifted(gen: &mut VarGen, k: i64) -> Constraint {
        let n = gen.fresh("n");
        Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Prop(Prop::le(IExp::lit(0), IExp::var(n) + IExp::lit(k)))),
            )),
        )
    }

    fn verdicts(outcomes: &[Outcome]) -> Vec<Vec<bool>> {
        outcomes.iter().map(|o| o.results.iter().map(|(_, r)| r.is_proven()).collect()).collect()
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(Some(4), 100), 4);
        assert_eq!(effective_workers(Some(0), 100), 1);
        assert_eq!(effective_workers(Some(64), 3), 3, "never more workers than work");
        assert_eq!(effective_workers(Some(8), 0), 1, "empty batch still one worker");
        assert!(effective_workers(None, 100) >= 1);
    }

    #[test]
    fn parallel_matches_sequential_in_order_and_verdict() {
        let mut gen = VarGen::new();
        let cs: Vec<Constraint> = (-4..28).map(|k| shifted(&mut gen, k)).collect();
        let refs: Vec<&Constraint> = cs.iter().collect();

        let mut gen_seq = gen.clone();
        let seq = Solver::new(SolverOptions { workers: Some(1), ..SolverOptions::default() });
        let sequential = prove_all(&seq, &refs, &mut gen_seq);

        let mut gen_par = gen.clone();
        let par = Solver::new(SolverOptions { workers: Some(4), ..SolverOptions::default() });
        let parallel = prove_all(&par, &refs, &mut gen_par);

        assert_eq!(sequential.len(), refs.len());
        assert_eq!(verdicts(&sequential), verdicts(&parallel));
        // The first four (k = -4..0) are falsifiable, the rest valid —
        // confirming order is preserved, not just multiset equality.
        for (i, row) in verdicts(&parallel).iter().enumerate() {
            assert_eq!(row, &vec![i >= 4], "obligation {i}");
        }
    }

    #[test]
    fn workers_share_the_verdict_cache() {
        let mut gen = VarGen::new();
        // 32 alpha-variants of one goal: one miss, the rest hits.
        let cs: Vec<Constraint> = (0..32).map(|_| shifted(&mut gen, 1)).collect();
        let refs: Vec<&Constraint> = cs.iter().collect();
        let solver = Solver::new(SolverOptions { workers: Some(4), ..SolverOptions::default() });
        let outcomes = prove_all(&solver, &refs, &mut gen);
        assert!(outcomes.iter().all(|o| o.all_proven()));
        assert_eq!(solver.cache().len(), 1, "all variants share one canonical entry");
        assert!(solver.cache().hits() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut gen = VarGen::new();
        let solver = Solver::default();
        assert!(prove_all(&solver, &[], &mut gen).is_empty());
    }
}
