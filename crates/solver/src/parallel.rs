//! Multi-worker constraint solving over the persistent worker pool.
//!
//! Obligations are independent verification conditions, so they can be
//! solved concurrently. The design keeps the solve phase *deterministic*:
//!
//! - results come back in obligation order regardless of worker count or
//!   scheduling (every obligation owns a result slot) — this includes
//!   per-goal [`dml_obs::GoalTrace`] buffers when tracing is on: each
//!   goal's events are buffered by whichever worker decided it and ride
//!   inside its [`Outcome`], so the merged trace stream is identical for
//!   every worker count;
//! - fresh-variable generation is lock-free and collision-free under
//!   work-stealing: each claimed chunk leases a disjoint id range from a
//!   [`dml_index::VarLease`] at execution time — worker-fresh variables
//!   are internal to lowering/Omega and never escape into reported
//!   results;
//! - with `workers <= 1` the parent `gen` is threaded through directly,
//!   reproducing the sequential pipeline's variable consumption exactly.
//!
//! Work is distributed in *chunks* sized by estimated Fourier–Motzkin
//! cost, not one obligation per task: atoms per obligation approximate
//! the upper×lower pair combinations FM will perform, so chunk boundaries
//! land where the work is, a few chunks per worker leave room for
//! stealing, and the shared cursor is touched once per chunk instead of
//! once per goal. Threads come from the lazily-spawned persistent pool
//! ([`crate::pool`]) — a batch costs a condvar notify, not N
//! `thread::spawn`s.

use crate::goal::{Outcome, Solver};
use crate::pool;
use dml_index::{Constraint, VarGen, VarLease};

/// Chunks per worker the batch is split into. >1 so a worker that hits a
/// slow chunk can have the rest of its share stolen; small enough that
/// chunk claiming stays off the profile.
const CHUNKS_PER_WORKER: usize = 4;

/// Resolves an optional worker-count request against the batch size.
///
/// `None` means "use available parallelism". The result is clamped to
/// `1..=n` (never more workers than obligations, never zero).
pub fn effective_workers(requested: Option<usize>, n: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    requested.unwrap_or(avail).clamp(1, n.max(1))
}

/// Estimated Fourier–Motzkin cost of one obligation, in arbitrary units.
///
/// FM pair combination is quadratic in the inequalities in play, and each
/// atom of the constraint contributes a bounded number of inequalities,
/// so `atoms²` tracks the pair-combination counters the fuel meter
/// charges far better than a flat per-goal estimate. `+1` keeps
/// trivial obligations from costing zero (claiming them is not free).
fn estimated_cost(c: &Constraint) -> u64 {
    let atoms = c.atom_count() as u64;
    atoms * atoms + 1
}

/// Splits `constraints` into at most `workers × CHUNKS_PER_WORKER`
/// contiguous chunks of roughly equal estimated cost. Contiguity keeps the
/// result merge trivially in obligation order.
fn cost_chunks(constraints: &[&Constraint], workers: usize) -> Vec<(usize, usize)> {
    let total: u64 = constraints.iter().map(|c| estimated_cost(c)).sum();
    let target_chunks = (workers * CHUNKS_PER_WORKER).min(constraints.len()).max(1);
    let per_chunk = (total / target_chunks as u64).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, c) in constraints.iter().enumerate() {
        acc += estimated_cost(c);
        if acc >= per_chunk && i + 1 < constraints.len() {
            chunks.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < constraints.len() {
        chunks.push((start, constraints.len()));
    }
    chunks
}

/// Proves every constraint, returning one [`Outcome`] per constraint in
/// input order.
///
/// The solver's verdict cache is shared across all workers (it is behind an
/// `Arc`), so a goal proven on one worker is a cache hit on every other.
pub fn prove_all(solver: &Solver, constraints: &[&Constraint], gen: &mut VarGen) -> Vec<Outcome> {
    let workers = effective_workers(solver.options().workers, constraints.len());
    if workers <= 1 {
        return constraints.iter().map(|c| solver.prove(c, gen)).collect();
    }
    let chunks = cost_chunks(constraints, workers);
    let lease = VarLease::carve(gen, chunks.len() as u32 * pool::LEASE_STRIDE);
    let mut slots: Vec<Option<Outcome>> = vec![None; constraints.len()];
    pool::run_batch(solver, constraints, &mut slots, chunks, lease, workers);
    slots.into_iter().map(|s| s.expect("every obligation solved exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::SolverOptions;
    use dml_index::{IExp, Prop, Sort};

    /// `∀n. 0 ≤ n ⊃ 0 ≤ n + k` — valid for k ≥ 0, falsifiable for k < 0.
    fn shifted(gen: &mut VarGen, k: i64) -> Constraint {
        let n = gen.fresh("n");
        Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Prop(Prop::le(IExp::lit(0), IExp::var(n) + IExp::lit(k)))),
            )),
        )
    }

    fn verdicts(outcomes: &[Outcome]) -> Vec<Vec<bool>> {
        outcomes.iter().map(|o| o.results.iter().map(|(_, r)| r.is_proven()).collect()).collect()
    }

    #[test]
    fn effective_workers_clamps() {
        assert_eq!(effective_workers(Some(4), 100), 4);
        assert_eq!(effective_workers(Some(0), 100), 1);
        assert_eq!(effective_workers(Some(64), 3), 3, "never more workers than work");
        assert_eq!(effective_workers(Some(8), 0), 1, "empty batch still one worker");
        assert!(effective_workers(None, 100) >= 1);
    }

    #[test]
    fn parallel_matches_sequential_in_order_and_verdict() {
        let mut gen = VarGen::new();
        let cs: Vec<Constraint> = (-4..28).map(|k| shifted(&mut gen, k)).collect();
        let refs: Vec<&Constraint> = cs.iter().collect();

        let mut gen_seq = gen.clone();
        let seq = Solver::new(SolverOptions { workers: Some(1), ..SolverOptions::default() });
        let sequential = prove_all(&seq, &refs, &mut gen_seq);

        let mut gen_par = gen.clone();
        let par = Solver::new(SolverOptions { workers: Some(4), ..SolverOptions::default() });
        let parallel = prove_all(&par, &refs, &mut gen_par);

        assert_eq!(sequential.len(), refs.len());
        assert_eq!(verdicts(&sequential), verdicts(&parallel));
        // The first four (k = -4..0) are falsifiable, the rest valid —
        // confirming order is preserved, not just multiset equality.
        for (i, row) in verdicts(&parallel).iter().enumerate() {
            assert_eq!(row, &vec![i >= 4], "obligation {i}");
        }
    }

    #[test]
    fn workers_share_the_verdict_cache() {
        let mut gen = VarGen::new();
        // 32 alpha-variants of one goal: one miss, the rest hits.
        let cs: Vec<Constraint> = (0..32).map(|_| shifted(&mut gen, 1)).collect();
        let refs: Vec<&Constraint> = cs.iter().collect();
        let solver = Solver::new(SolverOptions { workers: Some(4), ..SolverOptions::default() });
        let outcomes = prove_all(&solver, &refs, &mut gen);
        assert!(outcomes.iter().all(|o| o.all_proven()));
        assert_eq!(solver.cache().len(), 1, "all variants share one canonical entry");
        assert!(solver.cache().hits() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut gen = VarGen::new();
        let solver = Solver::default();
        assert!(prove_all(&solver, &[], &mut gen).is_empty());
    }
}
