//! On-disk, content-addressed persistence for the verdict cache.
//!
//! The in-memory [`crate::GoalCache`] starts cold on every process start,
//! which throws away exactly the work a check service exists to reuse. This
//! module gives the cache a second tier: a flat file of
//! `canonical-goal-hash → verdict` entries that survives process restarts
//! and is shared between every compile that names the same path.
//!
//! **Key.** Entries are addressed by a [stable 64-bit FNV-1a
//! hash](stable_goal_hash) of the goal's canonical form
//! ([`crate::canon::CanonGoal`]), walked structurally — variable *ids*
//! (already densely alpha-renamed by canonicalization), sorts, operators,
//! literals, and the budget class all feed the hash, display names never
//! do. Two alpha-variant goals therefore share one entry across processes,
//! machines, and files, exactly as they share one in-memory cache slot
//! within a process. (`std`'s `DefaultHasher` is *not* used: its output is
//! explicitly not guaranteed stable across releases.)
//!
//! **Value.** The verdict plus the budget class it was computed under —
//! the same partitioning the in-memory cache uses, so a fuel-starved
//! `Unknown(FuelExhausted)` can never masquerade as the unlimited answer.
//! `Unknown(Deadline)` verdicts are never persisted (they are never even
//! inserted into the in-memory cache): wall-clock verdicts are
//! machine-dependent.
//!
//! **Versioning.** The file opens with a header naming the format version
//! and [`SOLVER_LOGIC_VERSION`]. A header mismatch — or any parse error at
//! all — makes the loader return an empty store instead of failing:
//! a stale or corrupted cache file costs re-solving, never a crash. Bump
//! `SOLVER_LOGIC_VERSION` whenever a change to the solver can alter any
//! verdict; every existing cache file is then ignored wholesale.
//!
//! Writes go through a temp file in the same directory followed by an
//! atomic rename, and the writer re-reads the file first and merges, so
//! concurrent one-shot processes sharing a path lose at most each other's
//! latest entries, never the file's integrity.

use crate::canon::{BudgetClass, CanonGoal};
use dml_index::{IExp, Prop, Sort, UnknownReason, Var, Verdict};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the solver's decision logic. Part of the on-disk cache
/// header: bumping it invalidates every previously persisted verdict.
///
/// Bump this whenever a solver change can alter any verdict — new
/// tightening rules, changed lowering, different fuel accounting.
pub const SOLVER_LOGIC_VERSION: u32 = 1;

/// On-disk format version (the line syntax itself).
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &str = "dml-verdict-cache";

/// Rendered-file size past which [`DiskStore::flush`] logs an advisory
/// warning (16 MiB). The flat-text format rewrites the whole file on
/// every flush and parses the whole file on every open, so beyond this
/// point each flush costs real wall time; the warning names the cure
/// (prune the file, or bump [`SOLVER_LOGIC_VERSION`] to retire stale
/// verdicts wholesale). The flush itself always proceeds — an oversized
/// cache degrades throughput, never correctness.
pub const SIZE_WARN_BYTES: usize = 16 << 20;

/// The advisory message [`DiskStore::flush`] emits when the rendered
/// store exceeds [`SIZE_WARN_BYTES`]; `None` at or below the threshold.
/// Split out from `flush` so the threshold logic is unit-testable
/// without a multi-megabyte fixture.
pub fn size_warning(bytes: usize) -> Option<String> {
    (bytes > SIZE_WARN_BYTES).then(|| {
        format!(
            "verdict store is {:.1} MiB (advisory threshold {} MiB); every flush rewrites \
             and every open re-parses the whole file — prune it, or bump \
             SOLVER_LOGIC_VERSION to retire stale verdicts",
            bytes as f64 / 1048576.0,
            SIZE_WARN_BYTES >> 20
        )
    })
}

/// A verdict as persisted: the answer plus the budget class it was
/// computed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskEntry {
    /// Budget class the verdict is valid for (also part of the key hash;
    /// duplicated in the value so the file is self-describing).
    pub budget: BudgetClass,
    /// The persisted verdict. Never `Unknown(Deadline)`.
    pub verdict: Verdict,
}

/// An on-disk verdict store: the loaded entries plus everything inserted
/// since, flushed back with [`DiskStore::flush`].
#[derive(Debug)]
pub struct DiskStore {
    path: PathBuf,
    /// Entries present when the file was loaded.
    loaded: BTreeMap<u64, DiskEntry>,
    /// Entries inserted this process and not yet flushed.
    fresh: BTreeMap<u64, DiskEntry>,
    /// Number of entries the loader found (0 when the file was absent,
    /// stale, or corrupt).
    loaded_count: usize,
}

impl DiskStore {
    /// Opens (or initializes) a store at `path`. A missing, stale
    /// (version-mismatched), or corrupted file yields an *empty* store —
    /// persistence failures degrade to a cold cache, never an error.
    pub fn open(path: impl Into<PathBuf>) -> DiskStore {
        let path = path.into();
        let loaded = match std::fs::read_to_string(&path) {
            Ok(text) => parse_file(&text).unwrap_or_default(),
            Err(_) => BTreeMap::new(),
        };
        let loaded_count = loaded.len();
        DiskStore { path, loaded, fresh: BTreeMap::new(), loaded_count }
    }

    /// The file path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries found on disk at open time.
    pub fn loaded_count(&self) -> usize {
        self.loaded_count
    }

    /// Number of entries inserted since open (or the last flush) and not
    /// yet written back.
    pub fn pending(&self) -> usize {
        self.fresh.len()
    }

    /// Looks up a verdict by stable goal hash.
    pub fn get(&self, hash: u64) -> Option<&DiskEntry> {
        self.fresh.get(&hash).or_else(|| self.loaded.get(&hash))
    }

    /// Records a verdict for later flushing. `Unknown(Deadline)` is
    /// silently dropped (wall-clock verdicts never persist).
    pub fn insert(&mut self, hash: u64, entry: DiskEntry) {
        if entry.verdict == Verdict::Unknown(UnknownReason::Deadline) {
            return;
        }
        self.fresh.insert(hash, entry);
    }

    /// Writes every entry back to the path: re-reads the current file,
    /// merges (fresh entries win), writes a temp file, renames it into
    /// place. Returns the total entry count written, or `None` when there
    /// was nothing new to write.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the temp-file write or the rename.
    pub fn flush(&mut self) -> std::io::Result<Option<usize>> {
        if self.fresh.is_empty() {
            return Ok(None);
        }
        // Merge with whatever is on disk *now* — another process may have
        // flushed since we loaded.
        let mut merged = match std::fs::read_to_string(&self.path) {
            Ok(text) => parse_file(&text).unwrap_or_default(),
            Err(_) => BTreeMap::new(),
        };
        for (k, v) in std::mem::take(&mut self.loaded) {
            merged.entry(k).or_insert(v);
        }
        merged.extend(std::mem::take(&mut self.fresh));

        let mut out = String::new();
        out.push_str(&format!("{MAGIC} {FORMAT_VERSION} logic {SOLVER_LOGIC_VERSION}\n"));
        for (hash, e) in &merged {
            // A verdict variant this version cannot render (future
            // additions behind `#[non_exhaustive]`) is simply skipped.
            if let Some(v) = render_verdict(&e.verdict) {
                out.push_str(&format!("{hash:016x} {} {v}\n", render_budget(e.budget)));
            }
        }
        if let Some(warning) = size_warning(out.len()) {
            eprintln!("warning: {}: {warning}", self.path.display());
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let written = merged.len();
        self.loaded = merged;
        self.loaded_count = written;
        Ok(Some(written))
    }
}

/// Parses a cache file. `None` on any header mismatch or malformed line —
/// the caller treats that as an empty (ignored) file.
fn parse_file(text: &str) -> Option<BTreeMap<u64, DiskEntry>> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut h = header.split(' ');
    if h.next()? != MAGIC {
        return None;
    }
    if h.next()?.parse::<u32>().ok()? != FORMAT_VERSION {
        return None;
    }
    if h.next()? != "logic" {
        return None;
    }
    if h.next()?.parse::<u32>().ok()? != SOLVER_LOGIC_VERSION {
        return None;
    }
    if h.next().is_some() {
        return None;
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
        let budget = parse_budget(parts.next()?)?;
        let verdict = parse_verdict(parts.next()?)?;
        entries.insert(hash, DiskEntry { budget, verdict });
    }
    Some(entries)
}

fn render_budget(b: BudgetClass) -> String {
    match b {
        BudgetClass::Unlimited => "u".to_string(),
        BudgetClass::Fuel(f) => format!("f:{f}"),
    }
}

fn parse_budget(s: &str) -> Option<BudgetClass> {
    if s == "u" {
        return Some(BudgetClass::Unlimited);
    }
    let f = s.strip_prefix("f:")?.parse().ok()?;
    Some(BudgetClass::Fuel(f))
}

fn render_verdict(v: &Verdict) -> Option<String> {
    match v {
        Verdict::Proven => Some("P".to_string()),
        Verdict::Refuted => Some("R".to_string()),
        Verdict::Unknown(UnknownReason::PossiblyFalsifiable) => Some("U:pf".to_string()),
        Verdict::Unknown(UnknownReason::Blowup) => Some("U:blowup".to_string()),
        Verdict::Unknown(UnknownReason::FuelExhausted) => Some("U:fuel".to_string()),
        Verdict::Unknown(UnknownReason::Deadline) => Some("U:deadline".to_string()),
        // The nonlinear expression text is preserved exactly (it surfaces
        // in `dmlc check` residual reasons, which must stay byte-identical
        // whether the verdict came from disk or a fresh solve).
        Verdict::Unknown(UnknownReason::Nonlinear(expr)) => Some(format!("U:nl:{}", escape(expr))),
        // Forward compatibility: a verdict variant this version cannot
        // name is not persisted.
        _ => None,
    }
}

fn parse_verdict(s: &str) -> Option<Verdict> {
    match s {
        "P" => Some(Verdict::Proven),
        "R" => Some(Verdict::Refuted),
        "U:pf" => Some(Verdict::Unknown(UnknownReason::PossiblyFalsifiable)),
        "U:blowup" => Some(Verdict::Unknown(UnknownReason::Blowup)),
        "U:fuel" => Some(Verdict::Unknown(UnknownReason::FuelExhausted)),
        "U:deadline" => Some(Verdict::Unknown(UnknownReason::Deadline)),
        _ => {
            let expr = s.strip_prefix("U:nl:")?;
            Some(Verdict::Unknown(UnknownReason::Nonlinear(unescape(expr)?)))
        }
    }
}

/// Percent-escapes the characters that would break the line format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

/// A process-independent 64-bit FNV-1a hash of a canonical goal.
///
/// Canonicalization already renamed every variable to a dense id and
/// normalized hypothesis order, so feeding ids, tags, and literals in
/// structural order yields the same hash for alpha-variant goals in any
/// process. Display names are excluded by construction ([`Var`] identity
/// is id-only and only ids are fed).
pub fn stable_goal_hash(key: &CanonGoal) -> u64 {
    let mut h = Fnv1a::new();
    h.u32(match key.budget {
        BudgetClass::Unlimited => 0,
        BudgetClass::Fuel(_) => 1,
    });
    if let BudgetClass::Fuel(f) = key.budget {
        h.u64(f);
    }
    h.usize(key.sorts.len());
    for s in &key.sorts {
        h.u32(sort_tag(*s));
    }
    h.usize(key.hyps.len());
    for p in &key.hyps {
        hash_prop(&mut h, p);
    }
    hash_prop(&mut h, &key.concl);
    h.finish()
}

fn sort_tag(s: Sort) -> u32 {
    match s {
        Sort::Int => 0,
        Sort::Bool => 1,
    }
}

fn hash_var(h: &mut Fnv1a, v: &Var) {
    h.u32(v.id());
}

fn hash_iexp(h: &mut Fnv1a, e: &IExp) {
    match e {
        IExp::Var(v) => {
            h.u32(0);
            hash_var(h, v);
        }
        IExp::Lit(n) => {
            h.u32(1);
            h.u64(*n as u64);
        }
        IExp::Add(a, b) => bin(h, 2, a, b),
        IExp::Sub(a, b) => bin(h, 3, a, b),
        IExp::Mul(a, b) => bin(h, 4, a, b),
        IExp::Div(a, b) => bin(h, 5, a, b),
        IExp::Mod(a, b) => bin(h, 6, a, b),
        IExp::Min(a, b) => bin(h, 7, a, b),
        IExp::Max(a, b) => bin(h, 8, a, b),
        IExp::Abs(a) => {
            h.u32(9);
            hash_iexp(h, a);
        }
        IExp::Sgn(a) => {
            h.u32(10);
            hash_iexp(h, a);
        }
    }
}

fn bin(h: &mut Fnv1a, tag: u32, a: &IExp, b: &IExp) {
    h.u32(tag);
    hash_iexp(h, a);
    hash_iexp(h, b);
}

fn hash_prop(h: &mut Fnv1a, p: &Prop) {
    match p {
        Prop::True => h.u32(0),
        Prop::False => h.u32(1),
        Prop::BVar(v) => {
            h.u32(2);
            hash_var(h, v);
        }
        Prop::Cmp(op, a, b) => {
            h.u32(3);
            h.u32(*op as u32);
            hash_iexp(h, a);
            hash_iexp(h, b);
        }
        Prop::Not(q) => {
            h.u32(4);
            hash_prop(h, q);
        }
        Prop::And(a, b) => {
            h.u32(5);
            hash_prop(h, a);
            hash_prop(h, b);
        }
        Prop::Or(a, b) => {
            h.u32(6);
            hash_prop(h, a);
            hash_prop(h, b);
        }
    }
}

/// FNV-1a, 64-bit. Same constants as the oracle's report digest; kept
/// private to each crate since the dependency direction forbids sharing.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::goal::Goal;
    use dml_index::VarGen;

    fn sample_goal(name_a: &str, name_b: &str) -> Goal {
        let mut g = VarGen::new();
        let a = g.fresh(name_a);
        let b = g.fresh(name_b);
        Goal {
            ctx: vec![(a.clone(), Sort::Int), (b.clone(), Sort::Int)],
            hyps: vec![
                Prop::le(IExp::lit(0), IExp::var(a.clone())),
                Prop::lt(IExp::var(a.clone()), IExp::var(b.clone())),
            ],
            concl: Prop::le(IExp::var(a), IExp::var(b)),
            residual_existential: false,
        }
    }

    #[test]
    fn stable_hash_is_alpha_invariant_and_discriminating() {
        let k1 = canonicalize(&sample_goal("i", "n"));
        let k2 = canonicalize(&sample_goal("j", "m"));
        assert_eq!(stable_goal_hash(&k1), stable_goal_hash(&k2));

        let mut other = sample_goal("i", "n");
        other.concl = Prop::lt(IExp::var(other.ctx[0].0.clone()), IExp::lit(10));
        assert_ne!(stable_goal_hash(&k1), stable_goal_hash(&canonicalize(&other)));

        // Budget class partitions the hash space.
        let low = crate::canon::canonicalize_budgeted(&sample_goal("i", "n"), BudgetClass::Fuel(8));
        assert_ne!(stable_goal_hash(&k1), stable_goal_hash(&low));
    }

    #[test]
    fn round_trips_entries_through_a_file() {
        let dir = std::env::temp_dir().join(format!("dml-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.vcache");
        let _ = std::fs::remove_file(&path);

        let mut store = DiskStore::open(&path);
        assert_eq!(store.loaded_count(), 0);
        store.insert(1, DiskEntry { budget: BudgetClass::Unlimited, verdict: Verdict::Proven });
        store.insert(2, DiskEntry { budget: BudgetClass::Fuel(64), verdict: Verdict::Refuted });
        store.insert(
            3,
            DiskEntry {
                budget: BudgetClass::Unlimited,
                verdict: Verdict::Unknown(UnknownReason::Nonlinear("i * j % 2".into())),
            },
        );
        // Deadline verdicts are dropped on insert.
        store.insert(
            4,
            DiskEntry {
                budget: BudgetClass::Unlimited,
                verdict: Verdict::Unknown(UnknownReason::Deadline),
            },
        );
        assert_eq!(store.flush().unwrap(), Some(3));
        assert_eq!(store.flush().unwrap(), None, "second flush has nothing new");

        let reopened = DiskStore::open(&path);
        assert_eq!(reopened.loaded_count(), 3);
        assert_eq!(reopened.get(1).unwrap().verdict, Verdict::Proven);
        assert_eq!(reopened.get(2).unwrap().budget, BudgetClass::Fuel(64));
        assert_eq!(
            reopened.get(3).unwrap().verdict,
            Verdict::Unknown(UnknownReason::Nonlinear("i * j % 2".into()))
        );
        assert!(reopened.get(4).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_or_corrupt_files_load_as_empty() {
        let dir = std::env::temp_dir().join(format!("dml-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        for (name, contents) in [
            ("old-version.vcache", format!("{MAGIC} 0 logic {SOLVER_LOGIC_VERSION}\n1 u P\n")),
            ("old-logic.vcache", format!("{MAGIC} {FORMAT_VERSION} logic 0\n1 u P\n")),
            ("wrong-magic.vcache", "not-a-cache 1 logic 1\n".to_string()),
            ("garbage.vcache", "\u{0}\u{1}binary junk".to_string()),
            (
                "bad-entry.vcache",
                format!("{MAGIC} {FORMAT_VERSION} logic {SOLVER_LOGIC_VERSION}\nzzzz u P\n"),
            ),
            ("empty.vcache", String::new()),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, contents).unwrap();
            let store = DiskStore::open(&path);
            assert_eq!(store.loaded_count(), 0, "{name} must be ignored, not fatal");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn ten_thousand_goals_round_trip() {
        // A scale-corpus-sized store: 10k entries cycling through every
        // persistable verdict shape, flushed once and reloaded intact.
        let dir = std::env::temp_dir().join(format!("dml-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ten-k.vcache");
        let _ = std::fs::remove_file(&path);

        let entry = |i: u64| {
            let budget = if i.is_multiple_of(3) {
                BudgetClass::Unlimited
            } else {
                BudgetClass::Fuel(i % 128)
            };
            let verdict = match i % 5 {
                0 => Verdict::Proven,
                1 => Verdict::Refuted,
                2 => Verdict::Unknown(UnknownReason::PossiblyFalsifiable),
                3 => Verdict::Unknown(UnknownReason::Nonlinear(format!("i * j + {i}"))),
                _ => Verdict::Unknown(UnknownReason::Blowup),
            };
            DiskEntry { budget, verdict }
        };
        let mut store = DiskStore::open(&path);
        for i in 0..10_000u64 {
            // Spread hashes over the full key space (dense small keys
            // would never catch an ordering or radix bug).
            store.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), entry(i));
        }
        assert_eq!(store.pending(), 10_000);
        assert_eq!(store.flush().unwrap(), Some(10_000));

        let reopened = DiskStore::open(&path);
        assert_eq!(reopened.loaded_count(), 10_000);
        for i in (0..10_000u64).step_by(997) {
            let got = reopened
                .get(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .unwrap_or_else(|| panic!("entry {i} lost in round trip"));
            assert_eq!(*got, entry(i), "entry {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn size_warning_fires_only_past_the_threshold() {
        assert_eq!(size_warning(0), None);
        assert_eq!(size_warning(SIZE_WARN_BYTES), None, "threshold itself is fine");
        let w = size_warning(SIZE_WARN_BYTES + 1).expect("one byte over warns");
        assert!(w.contains("MiB"), "{w}");
        assert!(w.contains("SOLVER_LOGIC_VERSION"), "names the cure: {w}");
        let w = size_warning(64 << 20).unwrap();
        assert!(w.starts_with("verdict store is 64.0 MiB"), "{w}");
    }

    #[test]
    fn oversized_flush_warns_but_still_succeeds() {
        // `flush` with a body past the threshold must write the file
        // anyway — the warning is advisory, never an error. Exercised
        // with the threshold math on a real (small) flush: rather than
        // materialize 16 MiB in a unit test, pin that a successful
        // flush's rendered size is what `size_warning` receives by
        // checking the written file's size agrees with the verdict.
        let dir = std::env::temp_dir().join(format!("dml-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warn.vcache");
        let _ = std::fs::remove_file(&path);
        let mut store = DiskStore::open(&path);
        store.insert(7, DiskEntry { budget: BudgetClass::Unlimited, verdict: Verdict::Proven });
        store.flush().unwrap();
        let written = std::fs::metadata(&path).unwrap().len() as usize;
        assert_eq!(size_warning(written), None, "a one-entry store is nowhere near the cap");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn nonlinear_expr_text_survives_escaping() {
        for expr in ["a * b", "100% weird\nexpr", "x %0a y"] {
            let rendered = render_verdict(&Verdict::Unknown(UnknownReason::Nonlinear(expr.into())))
                .expect("nonlinear verdicts render");
            assert!(!rendered.contains('\n'));
            assert_eq!(
                parse_verdict(&rendered),
                Some(Verdict::Unknown(UnknownReason::Nonlinear(expr.into())))
            );
        }
    }
}
