//! Solver statistics, feeding Table 1's "constraints generated / solved"
//! columns and the ablation benches.

use dml_obs::TimingHistogram;
use std::fmt;
use std::time::Duration;

/// Per-phase latency histograms for goal solving.
///
/// Recording is always on (two comparisons and an increment per phase), but
/// histograms are only *rendered* on request (`dmlc table 1 --timings`), so
/// default output stays byte-identical whether or not anyone looks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Whole-goal decide latency, fast paths and cache hits included.
    pub goal: TimingHistogram,
    /// Non-linear lowering (per goal reaching that phase).
    pub lowering: TimingHistogram,
    /// NNF + DNF expansion into disjunct systems.
    pub dnf: TimingHistogram,
    /// Fourier–Motzkin elimination across a goal's disjunct systems
    /// (includes any witness search, which is also recorded separately).
    pub elimination: TimingHistogram,
    /// Bounded exhaustive counterexample search on refutation candidates.
    pub witness_search: TimingHistogram,
}

impl PhaseTimes {
    /// Merges another record's histograms into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.goal.merge(&other.goal);
        self.lowering.merge(&other.lowering);
        self.dnf.merge(&other.dnf);
        self.elimination.merge(&other.elimination);
        self.witness_search.merge(&other.witness_search);
    }

    /// `true` if no phase recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.goal.is_empty()
            && self.lowering.is_empty()
            && self.dnf.is_empty()
            && self.elimination.is_empty()
            && self.witness_search.is_empty()
    }

    /// `(label, histogram)` pairs in rendering order.
    pub fn phases(&self) -> [(&'static str, &TimingHistogram); 5] {
        [
            ("goal decide", &self.goal),
            ("lowering", &self.lowering),
            ("dnf expansion", &self.dnf),
            ("fm elimination", &self.elimination),
            ("witness search", &self.witness_search),
        ]
    }
}

/// Counters accumulated across one [`crate::Solver::prove`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of proof goals (sequents) examined.
    pub goals: usize,
    /// Goals proven valid.
    pub proven: usize,
    /// Goals not proven (refuted, counterexample possible, non-linear, or
    /// out of budget). Always `refuted + unknown`, kept for reporting.
    pub not_proven: usize,
    /// Goals refuted by an explicit integer counterexample (a subset of
    /// `not_proven`).
    pub refuted: usize,
    /// Existential variables eliminated by equality substitution.
    pub existentials_eliminated: usize,
    /// Existential variables that could not be eliminated.
    pub existentials_residual: usize,
    /// DNF disjuncts refuted.
    pub disjuncts_refuted: usize,
    /// Fourier–Motzkin pair combinations performed.
    pub fm_combinations: usize,
    /// Fresh variables introduced by non-linear lowering.
    pub lowered_vars: usize,
    /// Goals answered from the verdict cache.
    ///
    /// Hit/miss counts depend on what earlier solves warmed the shared
    /// cache (and, under parallel solving, on scheduling), so they are
    /// reported alongside timing — never compared byte-for-byte.
    pub cache_hits: usize,
    /// Goals that missed the verdict cache and were decided from scratch.
    pub cache_misses: usize,
    /// Subset of `cache_hits` answered by the on-disk store (always 0
    /// unless a disk cache is attached via
    /// `GoalCache::attach_disk`).
    pub cache_disk_hits: usize,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
    /// Per-phase latency histograms (see [`PhaseTimes`]). Timing buckets
    /// vary run to run, so they are surfaced only by explicit request and
    /// never enter golden comparisons.
    pub phase_times: PhaseTimes,
}

impl SolverStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.goals += other.goals;
        self.proven += other.proven;
        self.not_proven += other.not_proven;
        self.refuted += other.refuted;
        self.existentials_eliminated += other.existentials_eliminated;
        self.existentials_residual += other.existentials_residual;
        self.disjuncts_refuted += other.disjuncts_refuted;
        self.fm_combinations += other.fm_combinations;
        self.lowered_vars += other.lowered_vars;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_disk_hits += other.cache_disk_hits;
        self.solve_time += other.solve_time;
        self.phase_times.merge(&other.phase_times);
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} goals ({} proven, {} not proven), {} FM combinations, {} cache hits / {} misses, {:?}",
            self.goals,
            self.proven,
            self.not_proven,
            self.fm_combinations,
            self.cache_hits,
            self.cache_misses,
            self.solve_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SolverStats { goals: 2, proven: 1, ..Default::default() };
        let b = SolverStats { goals: 3, proven: 3, fm_combinations: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.goals, 5);
        assert_eq!(a.proven, 4);
        assert_eq!(a.fm_combinations, 7);
    }

    #[test]
    fn display_is_informative() {
        let s = SolverStats { goals: 1, proven: 1, ..Default::default() };
        let text = s.to_string();
        assert!(text.contains("1 goals"), "{text}");
    }
}
