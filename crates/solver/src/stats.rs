//! Solver statistics, feeding Table 1's "constraints generated / solved"
//! columns and the ablation benches.

use std::fmt;
use std::time::Duration;

/// Counters accumulated across one [`crate::Solver::prove`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of proof goals (sequents) examined.
    pub goals: usize,
    /// Goals proven valid.
    pub proven: usize,
    /// Goals not proven (refuted, counterexample possible, non-linear, or
    /// out of budget). Always `refuted + unknown`, kept for reporting.
    pub not_proven: usize,
    /// Goals refuted by an explicit integer counterexample (a subset of
    /// `not_proven`).
    pub refuted: usize,
    /// Existential variables eliminated by equality substitution.
    pub existentials_eliminated: usize,
    /// Existential variables that could not be eliminated.
    pub existentials_residual: usize,
    /// DNF disjuncts refuted.
    pub disjuncts_refuted: usize,
    /// Fourier–Motzkin pair combinations performed.
    pub fm_combinations: usize,
    /// Fresh variables introduced by non-linear lowering.
    pub lowered_vars: usize,
    /// Goals answered from the verdict cache.
    ///
    /// Hit/miss counts depend on what earlier solves warmed the shared
    /// cache (and, under parallel solving, on scheduling), so they are
    /// reported alongside timing — never compared byte-for-byte.
    pub cache_hits: usize,
    /// Goals that missed the verdict cache and were decided from scratch.
    pub cache_misses: usize,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
}

impl SolverStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.goals += other.goals;
        self.proven += other.proven;
        self.not_proven += other.not_proven;
        self.refuted += other.refuted;
        self.existentials_eliminated += other.existentials_eliminated;
        self.existentials_residual += other.existentials_residual;
        self.disjuncts_refuted += other.disjuncts_refuted;
        self.fm_combinations += other.fm_combinations;
        self.lowered_vars += other.lowered_vars;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.solve_time += other.solve_time;
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} goals ({} proven, {} not proven), {} FM combinations, {} cache hits / {} misses, {:?}",
            self.goals,
            self.proven,
            self.not_proven,
            self.fm_combinations,
            self.cache_hits,
            self.cache_misses,
            self.solve_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SolverStats { goals: 2, proven: 1, ..Default::default() };
        let b = SolverStats { goals: 3, proven: 3, fm_combinations: 7, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.goals, 5);
        assert_eq!(a.proven, 4);
        assert_eq!(a.fm_combinations, 7);
    }

    #[test]
    fn display_is_informative() {
        let s = SolverStats { goals: 1, proven: 1, ..Default::default() };
        let text = s.to_string();
        assert!(text.contains("1 goals"), "{text}");
    }
}
