//! A persistent, lazily-initialized solver worker pool.
//!
//! [`crate::parallel::prove_all`] used to spawn fresh OS threads through
//! `std::thread::scope` on every compile. With the rest of the hot path
//! optimised, per-compile spawn/join cost dominated the parallel solve on
//! the seed suite, making `workers=auto` a net *loss* against `workers=1`.
//! This module keeps one process-wide set of helper threads that park on a
//! condvar between batches, so a compile pays a notify instead of N
//! spawns.
//!
//! ## Shape
//!
//! - Helper threads are spawned once, on the first parallel batch
//!   ([`prewarm`] forces this eagerly). There are
//!   `available_parallelism - 1` helpers; the submitting thread always
//!   works its own batch too, so up to the machine's full parallelism
//!   applies to a batch.
//! - A batch is a slice of obligations pre-chunked by estimated
//!   Fourier–Motzkin cost (see [`crate::parallel`]). Threads *steal whole
//!   chunks* through an atomic cursor — one slow chunk cannot serialise
//!   the rest, and the chunk granularity keeps the cursor cold.
//! - Fresh-variable soundness under stealing comes from
//!   [`dml_index::VarLease`]: each stolen chunk leases a disjoint id range
//!   at execution time, instead of partitioning ids per worker at spawn
//!   time ([`dml_index::VarGen::split`]'s model, which assumed a fixed
//!   worker set).
//! - Determinism: every result lands in its obligation's slot, so the
//!   merged output (verdicts, stats, per-goal trace buffers) is identical
//!   for every worker count and every steal schedule.
//!
//! ## Safety
//!
//! The pool's helpers are `'static` threads, but a batch borrows the
//! caller's solver, constraint slice, and result slots. The bridge is
//! `Batch`: it erases those borrows to raw pointers, and `run_batch` does
//! not return until every chunk has been claimed *and finished* (tracked
//! by a mutex-guarded counter). Helpers only dereference the pointers
//! between claiming a chunk and reporting it finished, so no helper can
//! observe the borrows after `run_batch` returns them to the caller.

use crate::goal::{Outcome, Solver};
use dml_index::{Constraint, VarLease};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Ids leased per chunk. A goal lowers at most a handful of fresh
/// variables (`div`/`mod`/`min`/`max` operands), so 2¹⁶ ids per chunk is
/// far beyond any realistic chunk while letting a single compile run tens
/// of thousands of chunks before exhausting the 32-bit id space.
pub(crate) const LEASE_STRIDE: u32 = 1 << 16;

/// One parallel solve: borrowed inputs erased to pointers plus the
/// atomic scheduling state shared by the submitter and the helpers.
struct Batch {
    solver: *const Solver,
    /// Data pointer of the caller's `&[&Constraint]` (`&T` and `*const T`
    /// share a layout, so each element reads back as a `*const Constraint`).
    constraints: *const *const Constraint,
    /// Result slot per obligation; each slot is written exactly once, by
    /// whichever thread claimed the chunk containing it.
    slots: *mut Option<Outcome>,
    /// Half-open obligation ranges; the unit of stealing.
    chunks: Vec<(usize, usize)>,
    /// Cursor over `chunks`.
    next_chunk: AtomicUsize,
    /// Helpers working this batch (the submitter is not counted).
    helpers: AtomicUsize,
    /// Maximum helpers allowed (requested workers minus the submitter).
    helper_cap: usize,
    /// Fresh-id region for this batch; every claimed chunk leases from it.
    lease: VarLease,
    /// Chunks not yet finished, guarded so the submitter can sleep on
    /// completion. The mutex also orders each chunk's slot writes before
    /// the submitter's final read of the slots.
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: the raw pointers target the submitting thread's borrows, which
// stay valid until `submit_and_work` returns — and it only returns after
// `pending` reaches zero, i.e. after every thread has stopped touching
// them. Slot writes are disjoint (one chunk owns each index) and are
// published to the submitter by the `pending` mutex.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and solves chunks until the cursor runs dry. Returns the
    /// number of chunks this thread completed.
    fn work(&self) -> usize {
        let mut completed = 0;
        loop {
            let ci = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            let Some(&(start, end)) = self.chunks.get(ci) else { break };
            // Lease fresh ids at claim time — this is what keeps id
            // generation sound under stealing (see `VarLease`).
            let mut gen = self.lease.lease(LEASE_STRIDE);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: see the `Send`/`Sync` impls — the borrows are
                // live until the batch completes, and this chunk's slot
                // indices are touched by this thread only.
                let solver = unsafe { &*self.solver };
                for i in start..end {
                    let c: &Constraint = unsafe { &*(*self.constraints.add(i)) };
                    let outcome = solver.prove(c, &mut gen);
                    unsafe { *self.slots.add(i) = Some(outcome) };
                }
            }));
            if result.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            completed += 1;
            let mut pending = self.pending.lock().expect("solver pool poisoned");
            *pending -= 1;
            if *pending == 0 {
                self.done.notify_all();
            }
        }
        completed
    }

    /// `true` while the batch has unclaimed chunks and spare helper slots.
    fn wants_helpers(&self) -> bool {
        self.next_chunk.load(Ordering::Relaxed) < self.chunks.len()
            && self.helpers.load(Ordering::Relaxed) < self.helper_cap
    }

    /// Atomically takes a helper slot; `false` if the cap is reached.
    fn try_join(&self) -> bool {
        self.helpers
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                (h < self.helper_cap).then_some(h + 1)
            })
            .is_ok()
    }
}

/// The process-wide pool: a queue of in-flight batches and the condvar
/// helpers park on between batches.
struct Pool {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
    helpers: usize,
}

impl Pool {
    fn helper_main(&'static self) {
        loop {
            let batch = {
                let mut queue = self.queue.lock().expect("solver pool poisoned");
                loop {
                    if let Some(batch) =
                        queue.iter().find(|b| b.wants_helpers() && b.try_join()).cloned()
                    {
                        break batch;
                    }
                    queue = self.available.wait(queue).expect("solver pool poisoned");
                }
            };
            batch.work();
        }
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The pool, spawning its helper threads on first use.
///
/// The helper count defaults to `available_parallelism - 1` (the
/// submitting thread is the remaining worker). `DML_SOLVER_HELPERS`
/// overrides it — used by tests to exercise the helper threads on
/// single-core machines, where the default is zero.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let helpers = std::env::var("DML_SOLVER_HELPERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).saturating_sub(1)
            });
        Pool { queue: Mutex::new(VecDeque::new()), available: Condvar::new(), helpers }
    });
    let pool = POOL.get().expect("just initialised");
    // Spawn exactly once, after the OnceLock is published, so
    // `helper_main` can take the `'static` reference.
    static SPAWNED: OnceLock<()> = OnceLock::new();
    SPAWNED.get_or_init(|| {
        for i in 0..pool.helpers {
            std::thread::Builder::new()
                .name(format!("dml-solver-{i}"))
                .spawn(move || pool.helper_main())
                .expect("failed to spawn solver pool helper");
        }
    });
    pool
}

/// Eagerly spawns the pool's helper threads (they are otherwise spawned on
/// the first parallel batch). Call this to take the one-time thread-spawn
/// cost off the first compile's clock; calling it again is free. Returns
/// the number of persistent helper threads (0 on a single-core machine —
/// the submitting thread still solves every batch).
pub fn prewarm() -> usize {
    pool().helpers
}

/// `true` once the pool's helper threads exist, i.e. a parallel batch (or
/// [`prewarm`]) already paid the spawn cost. Used by benches to separate
/// pool-cold from pool-warm measurements.
pub fn is_warm() -> bool {
    POOL.get().is_some()
}

/// Runs one batch on the pool: enqueues it for helpers, works it from the
/// submitting thread too, and blocks until every chunk is finished.
///
/// `chunks` are half-open `(start, end)` obligation ranges covering
/// `constraints` exactly; `lease` must be sized for one
/// [`LEASE_STRIDE`]-id lease per chunk; `workers` is the total thread
/// budget including the submitter.
pub(crate) fn run_batch(
    solver: &Solver,
    constraints: &[&Constraint],
    slots: &mut [Option<Outcome>],
    chunks: Vec<(usize, usize)>,
    lease: VarLease,
    workers: usize,
) {
    debug_assert_eq!(constraints.len(), slots.len());
    let n_chunks = chunks.len();
    let batch = Arc::new(Batch {
        solver,
        constraints: constraints.as_ptr().cast::<*const Constraint>(),
        slots: slots.as_mut_ptr(),
        chunks,
        next_chunk: AtomicUsize::new(0),
        helpers: AtomicUsize::new(0),
        helper_cap: workers.saturating_sub(1),
        lease,
        pending: Mutex::new(n_chunks),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let pool = pool();
    {
        let mut queue = pool.queue.lock().expect("solver pool poisoned");
        queue.push_back(Arc::clone(&batch));
    }
    pool.available.notify_all();

    // The submitter is worker #0: it works the batch rather than idling,
    // which also guarantees progress when the pool has no helpers (single
    // core) or all helpers are busy with other batches.
    batch.work();

    let mut pending = batch.pending.lock().expect("solver pool poisoned");
    while *pending > 0 {
        pending = batch.done.wait(pending).expect("solver pool poisoned");
    }
    drop(pending);

    // Retire the batch so parked helpers skip it. Helpers that already
    // hold a clone only touch scheduling state after this point (their
    // cursor reads fail), never the borrowed pointers.
    {
        let mut queue = pool.queue.lock().expect("solver pool poisoned");
        queue.retain(|b| !Arc::ptr_eq(b, &batch));
    }

    if batch.panicked.load(Ordering::Relaxed) {
        panic!("solver worker panicked");
    }
}
