//! Goal canonicalization for the verdict cache.
//!
//! Two goals that differ only in variable identities, hypothesis order, or
//! duplicated hypotheses are logically equivalent, and [`crate::Solver`]
//! decides them to the same *proven status* — though not always to the
//! same verdict: the refuted/unknown split can follow hypothesis order,
//! because the witness search only certifies the first satisfiable DNF
//! disjunct and disjunct order tracks hypothesis order (the `dml-oracle`
//! differential fuzzer exhibits such pairs). Serving a cached verdict for
//! a canonically-equal goal is therefore sound — it never moves a goal
//! into or out of `Proven` — but may exchange refuted for unknown. The
//! cache keys on a *canonical form*:
//!
//! 1. every variable occurring in the conclusion or a hypothesis is
//!    alpha-renamed to a dense de Bruijn-style id (`0, 1, 2, …`) in order
//!    of first occurrence (conclusion first, then hypotheses in given
//!    order) — context variables that occur nowhere are dropped, since
//!    they cannot affect validity;
//! 2. the renamed hypotheses are sorted structurally and deduplicated.
//!
//! The renaming is assigned before sorting, so goals whose hypothesis
//! *sets* are equal but were first seen in permuted order can still key
//! differently — the cache is an optimization, never an oracle, and the
//! dominant reuse patterns (the lint walker re-asking an identical
//! entailment, monomorphic call sites producing textually identical
//! obligations, alpha-variants of one annotation) all normalise to the
//! same key.

use crate::goal::Goal;
use dml_index::{IExp, Prop, Sort, Var};
use std::collections::HashMap;

/// The resource-budget class a verdict was computed under.
///
/// Fuel changes what the solver can conclude (`Unknown(FuelExhausted)`
/// under a small budget, `Proven`/`Refuted` under a large one), so cached
/// verdicts are keyed by budget class: solvers with different fuel limits
/// sharing one cache never observe each other's budget-truncated answers.
/// Deadlines do *not* enter the key — deadline verdicts are wall-clock
/// dependent and are never cached at all, and any verdict that completed
/// under a deadline is identical to the verdict without one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetClass {
    /// No fuel limit (the default pipeline).
    Unlimited,
    /// A per-goal fuel budget of this many FM pair combinations.
    Fuel(u64),
}

/// The canonical form of a goal — the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonGoal {
    /// Sort of each canonical variable, indexed by its dense id.
    pub sorts: Vec<Sort>,
    /// Hypotheses, renamed, sorted, deduplicated.
    pub hyps: Vec<Prop>,
    /// The conclusion, renamed.
    pub concl: Prop,
    /// Budget class the verdict is valid for.
    pub budget: BudgetClass,
}

/// Canonicalizes a goal under the unlimited budget class. See the module
/// docs for the normal form.
pub fn canonicalize(goal: &Goal) -> CanonGoal {
    canonicalize_budgeted(goal, BudgetClass::Unlimited)
}

/// Canonicalizes a goal, keying the result on `budget`.
pub fn canonicalize_budgeted(goal: &Goal, budget: BudgetClass) -> CanonGoal {
    let mut ren = Renamer::new(&goal.ctx);
    let concl = ren.prop(&goal.concl);
    let mut hyps: Vec<Prop> = goal.hyps.iter().map(|h| ren.prop(h)).collect();
    hyps.sort_unstable();
    hyps.dedup();
    CanonGoal { sorts: ren.sorts, hyps, concl, budget }
}

/// Alpha-renamer assigning dense ids in order of first occurrence.
struct Renamer<'a> {
    ctx: &'a [(Var, Sort)],
    map: HashMap<Var, Var>,
    sorts: Vec<Sort>,
}

impl<'a> Renamer<'a> {
    fn new(ctx: &'a [(Var, Sort)]) -> Self {
        Renamer { ctx, map: HashMap::new(), sorts: Vec::new() }
    }

    fn var(&mut self, v: &Var) -> Var {
        if let Some(c) = self.map.get(v) {
            return c.clone();
        }
        let id = self.sorts.len() as u32;
        // Display names never participate in equality or hashing; a fixed
        // name keeps canonical goals readable in debug output.
        let canon = Var::new(id, "c");
        let sort = self.ctx.iter().find(|(w, _)| w == v).map(|(_, s)| *s).unwrap_or(Sort::Int);
        self.sorts.push(sort);
        self.map.insert(v.clone(), canon.clone());
        canon
    }

    fn iexp(&mut self, e: &IExp) -> IExp {
        match e {
            IExp::Var(v) => IExp::Var(self.var(v)),
            IExp::Lit(n) => IExp::Lit(*n),
            IExp::Add(a, b) => IExp::Add(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Sub(a, b) => IExp::Sub(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Mul(a, b) => IExp::Mul(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Div(a, b) => IExp::Div(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Mod(a, b) => IExp::Mod(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Min(a, b) => IExp::Min(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Max(a, b) => IExp::Max(Box::new(self.iexp(a)), Box::new(self.iexp(b))),
            IExp::Abs(a) => IExp::Abs(Box::new(self.iexp(a))),
            IExp::Sgn(a) => IExp::Sgn(Box::new(self.iexp(a))),
        }
    }

    fn prop(&mut self, p: &Prop) -> Prop {
        match p {
            Prop::True => Prop::True,
            Prop::False => Prop::False,
            Prop::BVar(v) => Prop::BVar(self.var(v)),
            Prop::Cmp(op, a, b) => Prop::Cmp(*op, self.iexp(a), self.iexp(b)),
            Prop::Not(q) => Prop::Not(Box::new(self.prop(q))),
            Prop::And(a, b) => Prop::And(Box::new(self.prop(a)), Box::new(self.prop(b))),
            Prop::Or(a, b) => Prop::Or(Box::new(self.prop(a)), Box::new(self.prop(b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::VarGen;

    fn goal(ctx: Vec<(Var, Sort)>, hyps: Vec<Prop>, concl: Prop) -> Goal {
        Goal { ctx, hyps, concl, residual_existential: false }
    }

    /// Alpha-variants (fresh ids, different display names) share one key.
    #[test]
    fn alpha_variants_share_a_key() {
        let mut g = VarGen::new();
        let mk = |g: &mut VarGen, name_a: &str, name_b: &str| {
            let a = g.fresh(name_a);
            let b = g.fresh(name_b);
            goal(
                vec![(a.clone(), Sort::Int), (b.clone(), Sort::Int)],
                vec![
                    Prop::le(IExp::lit(0), IExp::var(a.clone())),
                    Prop::lt(IExp::var(a.clone()), IExp::var(b.clone())),
                ],
                Prop::le(IExp::var(a), IExp::var(b)),
            )
        };
        let g1 = mk(&mut g, "i", "n");
        let g2 = mk(&mut g, "j", "m");
        assert_ne!(g1.ctx[0].0, g2.ctx[0].0, "distinct source variables");
        assert_eq!(canonicalize(&g1), canonicalize(&g2));
    }

    /// Duplicated hypotheses collapse; unused context variables drop out.
    #[test]
    fn dedup_and_unused_ctx_drop() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let unused = g.fresh("zz");
        let h = Prop::le(IExp::lit(0), IExp::var(a.clone()));
        let lean = goal(
            vec![(a.clone(), Sort::Int)],
            vec![h.clone()],
            Prop::le(IExp::lit(0), IExp::var(a.clone()) + IExp::lit(1)),
        );
        let fat = goal(
            vec![(a.clone(), Sort::Int), (unused, Sort::Bool)],
            vec![h.clone(), h.clone()],
            Prop::le(IExp::lit(0), IExp::var(a) + IExp::lit(1)),
        );
        let (ck_lean, ck_fat) = (canonicalize(&lean), canonicalize(&fat));
        assert_eq!(ck_lean, ck_fat);
        assert_eq!(ck_lean.hyps.len(), 1);
        assert_eq!(ck_lean.sorts, vec![Sort::Int]);
    }

    /// Different conclusions (or hypothesis sets) never collide.
    #[test]
    fn semantic_differences_key_differently() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let base = goal(
            vec![(a.clone(), Sort::Int)],
            vec![Prop::le(IExp::lit(0), IExp::var(a.clone()))],
            Prop::le(IExp::lit(0), IExp::var(a.clone())),
        );
        let mut other = base.clone();
        other.concl = Prop::lt(IExp::lit(0), IExp::var(a.clone()));
        assert_ne!(canonicalize(&base), canonicalize(&other));
        let mut weaker = base.clone();
        weaker.hyps.clear();
        assert_ne!(canonicalize(&base), canonicalize(&weaker));
        // Sorts are part of the key too.
        let mut bool_ctx = base;
        bool_ctx.ctx[0].1 = Sort::Bool;
        assert_ne!(canonicalize(&bool_ctx).sorts, vec![Sort::Int]);
    }

    /// Hypothesis order is normalised away when renaming is unaffected.
    #[test]
    fn literal_hypothesis_order_is_canonical() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let h1 = Prop::le(IExp::lit(0), IExp::var(a.clone()));
        let h2 = Prop::le(IExp::var(a.clone()), IExp::lit(10));
        let concl = Prop::le(IExp::lit(-1), IExp::var(a.clone()));
        let fwd = goal(vec![(a.clone(), Sort::Int)], vec![h1.clone(), h2.clone()], concl.clone());
        let rev = goal(vec![(a, Sort::Int)], vec![h2, h1], concl);
        assert_eq!(canonicalize(&fwd), canonicalize(&rev));
    }

    /// Budget classes partition the cache: the same goal keys differently
    /// under different fuel limits, and `canonicalize` is the unlimited
    /// class.
    #[test]
    fn budget_class_is_part_of_the_key() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let base = goal(
            vec![(a.clone(), Sort::Int)],
            vec![Prop::le(IExp::lit(0), IExp::var(a.clone()))],
            Prop::le(IExp::lit(-1), IExp::var(a)),
        );
        let unlimited = canonicalize(&base);
        assert_eq!(unlimited, canonicalize_budgeted(&base, BudgetClass::Unlimited));
        let low = canonicalize_budgeted(&base, BudgetClass::Fuel(8));
        let high = canonicalize_budgeted(&base, BudgetClass::Fuel(1024));
        assert_ne!(unlimited, low);
        assert_ne!(low, high);
    }
}
