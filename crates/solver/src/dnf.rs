//! Disjunctive normal form expansion of (lowered, NNF) propositions into
//! inequality systems.
//!
//! Boolean index variables are modelled as 0/1 integer variables: the atom
//! `b` becomes `β = 1`, `¬b` becomes `β = 0`, and `0 ≤ β ≤ 1` is added for
//! every boolean variable mentioned.

use crate::system::{Ineq, System};
use dml_index::{Cmp, IExp, Linear, NonLinear, Prop, Var};
use std::collections::BTreeSet;

/// Error for propositions whose DNF is too large to expand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfOverflow {
    /// The limit that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for DnfOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DNF expansion exceeded {} disjuncts", self.limit)
    }
}

impl std::error::Error for DnfOverflow {}

/// A literal of the DNF: a linear atom or a boolean variable (possibly
/// negated).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Literal {
    Cmp(Cmp, IExp, IExp),
    BoolIs(Var, bool),
    False,
}

/// Expands a proposition (already in NNF with linear atoms) into DNF and
/// converts each disjunct into a [`System`] of integer inequalities.
///
/// # Errors
///
/// Returns [`DnfOverflow`] when more than `max_disjuncts` would be produced,
/// or [`NonLinear`] if an atom cannot be linearised (callers should have
/// lowered non-linear operators already).
pub fn to_systems(p: &Prop, max_disjuncts: usize) -> Result<Vec<System>, DnfError> {
    let clauses = dnf(p, max_disjuncts)?;
    let mut out = Vec::with_capacity(clauses.len());
    'clause: for clause in clauses {
        let mut sys = System::new();
        let mut bools: BTreeSet<Var> = BTreeSet::new();
        for lit in clause {
            match lit {
                Literal::False => continue 'clause, // disjunct trivially unsat; skip
                Literal::Cmp(op, a, b) => {
                    let la = Linear::from_iexp(&a).map_err(DnfError::NonLinear)?;
                    let lb = Linear::from_iexp(&b).map_err(DnfError::NonLinear)?;
                    push_cmp(&mut sys, op, la, lb);
                }
                Literal::BoolIs(v, val) => {
                    bools.insert(v.clone());
                    let lv = Linear::var(v);
                    sys.push_eq(lv, Linear::constant(if val { 1 } else { 0 }));
                }
            }
        }
        for b in bools {
            let lv = Linear::var(b);
            sys.push(Ineq::le(Linear::constant(0), lv.clone()));
            sys.push(Ineq::le(lv, Linear::constant(1)));
        }
        out.push(sys);
    }
    Ok(out)
}

/// Errors from DNF conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnfError {
    /// Too many disjuncts.
    Overflow(DnfOverflow),
    /// A non-linear atom survived lowering.
    NonLinear(NonLinear),
}

impl std::fmt::Display for DnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnfError::Overflow(o) => write!(f, "{o}"),
            DnfError::NonLinear(n) => write!(f, "{n}"),
        }
    }
}

impl std::error::Error for DnfError {}

fn push_cmp(sys: &mut System, op: Cmp, la: Linear, lb: Linear) {
    match op {
        Cmp::Le => sys.push(Ineq::le(la, lb)),
        Cmp::Lt => sys.push(Ineq::lt(la, lb)),
        Cmp::Ge => sys.push(Ineq::le(lb, la)),
        Cmp::Gt => sys.push(Ineq::lt(lb, la)),
        Cmp::Eq => sys.push_eq(la, lb),
        Cmp::Ne => unreachable!("Ne atoms are rewritten before DNF"),
    }
}

/// Rewrites `<>` atoms as disjunctions (`a <> b` → `a < b ∨ a > b`). Input
/// must be in NNF; output is NNF without `Ne` atoms.
pub fn expand_ne(p: &Prop) -> Prop {
    match p {
        Prop::Cmp(Cmp::Ne, a, b) => {
            Prop::lt(a.clone(), b.clone()).or(Prop::cmp(Cmp::Gt, a.clone(), b.clone()))
        }
        Prop::True | Prop::False | Prop::BVar(_) | Prop::Cmp(_, _, _) => p.clone(),
        Prop::Not(q) => match q.as_ref() {
            // NNF guarantees negation only wraps boolean variables.
            Prop::BVar(_) => p.clone(),
            other => Prop::Not(Box::new(expand_ne(other))),
        },
        Prop::And(a, b) => Prop::And(Box::new(expand_ne(a)), Box::new(expand_ne(b))),
        Prop::Or(a, b) => Prop::Or(Box::new(expand_ne(a)), Box::new(expand_ne(b))),
    }
}

fn dnf(p: &Prop, max: usize) -> Result<Vec<Vec<Literal>>, DnfError> {
    let clauses = go(p, max)?;
    Ok(clauses)
}

fn go(p: &Prop, max: usize) -> Result<Vec<Vec<Literal>>, DnfError> {
    match p {
        Prop::True => Ok(vec![Vec::new()]),
        Prop::False => Ok(vec![vec![Literal::False]]),
        Prop::BVar(v) => Ok(vec![vec![Literal::BoolIs(v.clone(), true)]]),
        Prop::Not(q) => match q.as_ref() {
            Prop::BVar(v) => Ok(vec![vec![Literal::BoolIs(v.clone(), false)]]),
            other => {
                // Push the negation and retry (defensive; NNF input should
                // not reach here).
                go(&other.clone().negate(), max)
            }
        },
        Prop::Cmp(op, a, b) => Ok(vec![vec![Literal::Cmp(*op, a.clone(), b.clone())]]),
        Prop::Or(a, b) => {
            let mut l = go(a, max)?;
            let r = go(b, max)?;
            l.extend(r);
            if l.len() > max {
                return Err(DnfError::Overflow(DnfOverflow { limit: max }));
            }
            Ok(l)
        }
        Prop::And(a, b) => {
            let l = go(a, max)?;
            let r = go(b, max)?;
            if l.len().saturating_mul(r.len()) > max {
                return Err(DnfError::Overflow(DnfOverflow { limit: max }));
            }
            let mut out = Vec::with_capacity(l.len() * r.len());
            for x in &l {
                for y in &r {
                    let mut clause = x.clone();
                    clause.extend(y.iter().cloned());
                    out.push(clause);
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FourierOptions;
    use crate::system::RefuteResult;
    use dml_index::VarGen;

    #[test]
    fn single_atom_single_system() {
        let p = Prop::le(IExp::lit(0), IExp::lit(1));
        let systems = to_systems(&p, 16).unwrap();
        assert_eq!(systems.len(), 1);
        assert_eq!(systems[0].len(), 1);
    }

    #[test]
    fn disjunction_splits() {
        let p = Prop::le(IExp::lit(0), IExp::lit(1)).or(Prop::le(IExp::lit(1), IExp::lit(2)));
        let systems = to_systems(&p, 16).unwrap();
        assert_eq!(systems.len(), 2);
    }

    #[test]
    fn conjunction_distributes_over_disjunction() {
        let a = Prop::le(IExp::lit(0), IExp::lit(1)).or(Prop::le(IExp::lit(1), IExp::lit(2)));
        let b = Prop::le(IExp::lit(2), IExp::lit(3)).or(Prop::le(IExp::lit(3), IExp::lit(4)));
        let systems = to_systems(&a.and(b), 16).unwrap();
        assert_eq!(systems.len(), 4);
    }

    #[test]
    fn overflow_reported() {
        let atom = || Prop::le(IExp::lit(0), IExp::lit(1));
        let mut p = atom().or(atom());
        for _ in 0..6 {
            p = p.clone().and(atom().or(atom()));
        }
        assert!(matches!(to_systems(&p, 16), Err(DnfError::Overflow(_))));
    }

    #[test]
    fn ne_expansion() {
        let mut g = VarGen::new();
        let a = IExp::var(g.fresh("a"));
        let p = Prop::cmp(Cmp::Ne, a.clone(), IExp::lit(0));
        let q = expand_ne(&p);
        assert!(matches!(q, Prop::Or(_, _)));
        let systems = to_systems(&q, 16).unwrap();
        assert_eq!(systems.len(), 2);
    }

    #[test]
    fn bool_vars_become_01_ints() {
        let mut g = VarGen::new();
        let b = g.fresh("b");
        // b ∧ ¬b is unsatisfiable.
        let p = Prop::BVar(b.clone()).and(Prop::Not(Box::new(Prop::BVar(b))));
        let systems = to_systems(&p, 16).unwrap();
        assert_eq!(systems.len(), 1);
        let (r, _) = systems[0].refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
    }

    #[test]
    fn false_literal_drops_disjunct() {
        let p = Prop::False.or(Prop::le(IExp::lit(0), IExp::lit(1)));
        let systems = to_systems(&p, 16).unwrap();
        // The `false` disjunct is dropped entirely.
        assert_eq!(systems.len(), 1);
    }

    #[test]
    fn equality_becomes_two_ineqs() {
        let mut g = VarGen::new();
        let x = IExp::var(g.fresh("x"));
        let p = Prop::eq(x, IExp::lit(3));
        let systems = to_systems(&p, 16).unwrap();
        assert_eq!(systems[0].len(), 2);
    }
}
