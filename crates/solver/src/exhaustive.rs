//! Brute-force integer satisfiability over bounded boxes.
//!
//! Used as ground truth in property tests (Fourier–Motzkin refutation must
//! never disagree with exhaustive search) and as the slow "exact" reference
//! in the ablation bench. This is *not* part of the type-checking pipeline.

use crate::system::System;
use dml_index::Var;
use std::collections::HashMap;

/// Searches for an integer solution of `sys` with every variable in
/// `[-bound, bound]`. Returns a witness assignment if found.
///
/// The search is exponential in the number of variables; keep `bound` and
/// the variable count small (property tests use ≤ 4 variables, bound ≤ 6).
pub fn find_solution(sys: &System, bound: i64) -> Option<HashMap<Var, i64>> {
    let vars: Vec<Var> = sys.vars().into_iter().collect();
    let mut assignment: HashMap<Var, i64> = HashMap::new();
    if search(sys, &vars, 0, bound, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

fn search(
    sys: &System,
    vars: &[Var],
    idx: usize,
    bound: i64,
    assignment: &mut HashMap<Var, i64>,
) -> bool {
    if idx == vars.len() {
        let env = |v: &Var| assignment.get(v).copied();
        return sys.satisfied_by(&env) == Some(true);
    }
    for val in -bound..=bound {
        assignment.insert(vars[idx].clone(), val);
        if search(sys, vars, idx + 1, bound, assignment) {
            return true;
        }
    }
    assignment.remove(&vars[idx]);
    false
}

/// `true` if the system has **no** integer solution inside the box
/// `[-bound, bound]^n`. Note this does not certify global unsatisfiability.
pub fn unsat_in_box(sys: &System, bound: i64) -> bool {
    find_solution(sys, bound).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Ineq;
    use dml_index::{Linear, VarGen};

    #[test]
    fn finds_witness() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        // 3 ≤ x ≤ 4
        s.push(Ineq::le(Linear::constant(3), Linear::var(x.clone())));
        s.push(Ineq::le(Linear::var(x.clone()), Linear::constant(4)));
        let w = find_solution(&s, 6).expect("solution exists");
        let v = w[&x];
        assert!((3..=4).contains(&v));
    }

    #[test]
    fn reports_unsat_in_box() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(Linear::constant(1), Linear::var(x.clone())));
        s.push(Ineq::le(Linear::var(x), Linear::constant(0)));
        assert!(unsat_in_box(&s, 6));
    }

    #[test]
    fn empty_system_has_trivial_solution() {
        let s = System::new();
        assert!(find_solution(&s, 2).is_some());
    }
}
