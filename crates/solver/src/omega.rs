//! An implementation of the **Omega test** (Pugh, 1991; Pugh & Wonnacott,
//! 1992/1994) — the exact integer satisfiability procedure the paper cites
//! as future work for its constraint solver (§3.2, §6: "We would also like
//! to incorporate the ideas and observations from (Pugh and Wonnacott
//! 1994) into our constraint solver").
//!
//! Unlike Fourier–Motzkin with tightening (sound for refutation but
//! incomplete), the Omega test *decides* integer satisfiability:
//!
//! 1. **Equality elimination**: unit-coefficient equalities substitute
//!    directly; others are reduced by the `mod̂` transformation, which
//!    introduces an auxiliary variable and strictly shrinks coefficients.
//! 2. **Real shadow**: ordinary FM elimination — unsatisfiable real shadow
//!    means unsatisfiable system.
//! 3. **Dark shadow**: FM combination with the extra slack
//!    `(a−1)(b−1)`; a satisfiable dark shadow guarantees an integer point.
//! 4. **Splinters**: in the gray region, case-split on
//!    `b·x = l + i` for `0 ≤ i ≤ (a·b − a − b)/a` per lower bound, where
//!    `a` is the largest upper-bound coefficient of `x`.
//!
//! The implementation is fuel-bounded and returns [`Tri::Unknown`] when the
//! budget is exhausted — callers treat that as "not proven" (fail-safe).

use crate::system::System;

use dml_index::{Linear, Var, VarGen};
use std::collections::BTreeSet;

/// Three-valued satisfiability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// The system has an integer solution.
    Sat,
    /// The system has no integer solution.
    Unsat,
    /// The fuel budget was exhausted before a decision.
    Unknown,
}

/// Resource limits for the Omega test.
#[derive(Debug, Clone, Copy)]
pub struct OmegaOptions {
    /// Recursion budget (each dark-shadow/splinter branch consumes one).
    pub max_depth: u32,
    /// Maximum number of inequalities in any intermediate system.
    pub max_ineqs: usize,
}

impl Default for OmegaOptions {
    fn default() -> Self {
        OmegaOptions { max_depth: 24, max_ineqs: 4096 }
    }
}

/// Decides integer satisfiability of a [`System`] (conjunction of
/// `lin ≤ 0`).
pub fn omega_sat(sys: &System, gen: &mut VarGen, opts: &OmegaOptions) -> Tri {
    // Defend against a supply that did not create the system's variables:
    // the auxiliary σ variables must not collide with existing ids.
    for v in sys.vars() {
        gen.advance_past(v.id());
    }
    let ineqs: Vec<Linear> = sys.ineqs().iter().map(|i| i.linear().clone()).collect();
    solve(Vec::new(), ineqs, gen, opts, opts.max_depth)
}

/// `true` if the Omega test *refutes* the system (exact UNSAT).
pub fn omega_refutes(sys: &System, gen: &mut VarGen, opts: &OmegaOptions) -> bool {
    omega_sat(sys, gen, opts) == Tri::Unsat
}

/// Core solver over equalities (`= 0`) and inequalities (`≤ 0`).
fn solve(
    mut eqs: Vec<Linear>,
    mut ineqs: Vec<Linear>,
    gen: &mut VarGen,
    opts: &OmegaOptions,
    fuel: u32,
) -> Tri {
    if fuel == 0 || ineqs.len() > opts.max_ineqs {
        return Tri::Unknown;
    }

    // ----- 1. Equality elimination. ---------------------------------
    let mut eq_rounds = 0u32;
    while let Some(eq) = eqs.pop() {
        eq_rounds += 1;
        if eq_rounds > 256 {
            return Tri::Unknown;
        }
        let g = eq.coeff_gcd();
        if g == 0 {
            if eq.constant_term() != 0 {
                return Tri::Unsat;
            }
            continue;
        }
        if eq.constant_term() % g != 0 {
            return Tri::Unsat; // no integer solution to g | c
        }
        let eq = eq.div_exact(g).expect("gcd divides");
        // Unit coefficient: substitute directly (exact).
        if let Some((v, c)) = eq.terms().find(|(_, c)| c.abs() == 1) {
            let v = v.clone();
            // c·v + rest = 0  →  v = −rest/c = rest·(−c) for c = ±1.
            let mut rest = eq.clone();
            rest.add_term(v.clone(), -c);
            let replacement = rest.scale(-c);
            for e in eqs.iter_mut() {
                *e = e.subst(&v, &replacement);
            }
            for i in ineqs.iter_mut() {
                *i = i.subst(&v, &replacement);
            }
            continue;
        }
        // mod̂ reduction: pick the variable with the smallest |coefficient|.
        let (vk, ak) = eq
            .terms()
            .min_by_key(|(_, c)| c.abs())
            .map(|(v, c)| (v.clone(), c))
            .expect("equality with no unit coefficient has variables");
        let m = ak.abs() + 1;
        let sigma = gen.fresh_tagged("s");
        // New equation: Σ hat(aᵢ)·xᵢ + hat(c) = m·σ, where
        // hat(a) = a − m·⌊a/m + 1/2⌋ ∈ (−m/2, m/2].
        let mut hat_eq = Linear::zero();
        for (v, c) in eq.terms() {
            hat_eq.add_term(v.clone(), hat(c, m));
        }
        hat_eq.add_constant(hat(eq.constant_term(), m));
        hat_eq.add_term(sigma.clone(), -m);
        // hat(ak) = −sign(ak): the new equation is unit in vk; solve it.
        let ck = hat_eq.coeff(&vk);
        debug_assert_eq!(
            ck.abs(),
            1,
            "mod-hat must produce a unit coefficient: eq={eq} vk={vk} ak={ak} m={m}"
        );
        let mut rest = hat_eq.clone();
        rest.add_term(vk.clone(), -ck);
        let replacement = rest.scale(-ck);
        for e in eqs.iter_mut() {
            *e = e.subst(&vk, &replacement);
        }
        for i in ineqs.iter_mut() {
            *i = i.subst(&vk, &replacement);
        }
        // The original equality (with vk substituted) returns to the
        // worklist with strictly smaller coefficients.
        eqs.push(eq.subst(&vk, &replacement));
    }

    // ----- 2. Normalise inequalities (gcd tightening). --------------
    let mut work: Vec<Linear> = Vec::with_capacity(ineqs.len());
    for lin in ineqs {
        let g = lin.coeff_gcd();
        if g == 0 {
            if lin.constant_term() > 0 {
                return Tri::Unsat;
            }
            continue;
        }
        // Σ aᵢxᵢ ≤ −c  →  Σ (aᵢ/g)xᵢ ≤ ⌊−c/g⌋ : constant becomes ⌈c/g⌉.
        let mut out = Linear::zero();
        for (v, c) in lin.terms() {
            out.add_term(v.clone(), c / g);
        }
        let c = lin.constant_term();
        let ceil = if c >= 0 { (c + g - 1) / g } else { -((-c) / g) };
        out.add_constant(ceil);
        if out.is_constant() {
            if out.constant_term() > 0 {
                return Tri::Unsat;
            }
            continue;
        }
        work.push(out);
    }
    work.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    work.dedup();

    // ----- 3. Variable elimination. ----------------------------------
    loop {
        if work.is_empty() {
            return Tri::Sat;
        }
        let mut vars: BTreeSet<Var> = BTreeSet::new();
        for lin in &work {
            vars.extend(lin.vars().cloned());
        }
        // Unbounded variables (only uppers or only lowers) are free to
        // absorb their constraints: drop those inequalities (exact).
        let mut dropped_unbounded = false;
        for v in &vars {
            let ups = work.iter().filter(|l| l.coeff(v) > 0).count();
            let los = work.iter().filter(|l| l.coeff(v) < 0).count();
            if ups == 0 || los == 0 {
                work.retain(|l| l.coeff(v) == 0);
                dropped_unbounded = true;
            }
        }
        if dropped_unbounded {
            continue;
        }
        if vars.is_empty() {
            return Tri::Sat;
        }

        // Pick the cheapest variable.
        let target = vars
            .iter()
            .min_by_key(|v| {
                let ups = work.iter().filter(|l| l.coeff(v) > 0).count();
                let los = work.iter().filter(|l| l.coeff(v) < 0).count();
                ups * los
            })
            .cloned()
            .expect("non-empty");

        let uppers: Vec<Linear> = work.iter().filter(|l| l.coeff(&target) > 0).cloned().collect();
        let lowers: Vec<Linear> = work.iter().filter(|l| l.coeff(&target) < 0).cloned().collect();
        let rest: Vec<Linear> = work.iter().filter(|l| l.coeff(&target) == 0).cloned().collect();

        // Exact elimination when every pairing has a unit coefficient.
        let all_unit = uppers.iter().all(|u| u.coeff(&target) == 1)
            || lowers.iter().all(|l| l.coeff(&target) == -1);
        if all_unit {
            let mut next = rest;
            for u in &uppers {
                for l in &lowers {
                    let a = u.coeff(&target);
                    let b = -l.coeff(&target);
                    let combined = u.scale(b).add(&l.scale(a));
                    debug_assert_eq!(combined.coeff(&target), 0);
                    if combined.is_constant() {
                        if combined.constant_term() > 0 {
                            return Tri::Unsat;
                        }
                    } else {
                        next.push(combined);
                    }
                }
            }
            if next.len() > opts.max_ineqs {
                return Tri::Unknown;
            }
            next.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
            next.dedup();
            work = next;
            continue;
        }

        // Inexact: real shadow, dark shadow, splinters.
        let mut real = rest.clone();
        let mut dark = rest.clone();
        for u in &uppers {
            for l in &lowers {
                let a = u.coeff(&target);
                let b = -l.coeff(&target);
                let combined = u.scale(b).add(&l.scale(a));
                real.push(combined.clone());
                dark.push(combined.add(&Linear::constant((a - 1) * (b - 1))));
            }
        }
        if real.len() > opts.max_ineqs {
            return Tri::Unknown;
        }
        match solve(Vec::new(), real, gen, opts, fuel - 1) {
            Tri::Unsat => return Tri::Unsat,
            Tri::Unknown => return Tri::Unknown,
            Tri::Sat => {}
        }
        match solve(Vec::new(), dark, gen, opts, fuel - 1) {
            Tri::Sat => return Tri::Sat,
            Tri::Unknown => return Tri::Unknown,
            Tri::Unsat => {}
        }
        // Gray region: splinter on each lower bound.
        let a_max = uppers.iter().map(|u| u.coeff(&target)).max().expect("has uppers");
        let mut any_unknown = false;
        for l in &lowers {
            let b = -l.coeff(&target);
            // l ≤ b·x (as a linear form: l_rest ≤ b·x where l = l_rest − b·x).
            let mut l_rest = l.clone();
            l_rest.add_term(target.clone(), b); // now l_rest ≤ 0 means l_rest ≤ b·x... keep exact form below.
            let bound = (a_max * b - a_max - b) / a_max;
            for i in 0..=bound {
                // Splinter: b·x = l_rest + i  ⇔  l + b·x ... construct
                // equality: (l with the −b·x term removed) + i − b·x = 0.
                let mut eq = l_rest.clone();
                eq.add_constant(i);
                eq.add_term(target.clone(), -b);
                let mut sub_eqs = vec![eq];
                let sub_ineqs = work.clone();
                match solve(std::mem::take(&mut sub_eqs), sub_ineqs, gen, opts, fuel - 1) {
                    Tri::Sat => return Tri::Sat,
                    Tri::Unknown => any_unknown = true,
                    Tri::Unsat => {}
                }
            }
        }
        return if any_unknown { Tri::Unknown } else { Tri::Unsat };
    }
}

/// `hat(a) = a mod̂ m`, the representative of `a (mod m)` in
/// `(−m/2, m/2]`.
fn hat(a: i64, m: i64) -> i64 {
    debug_assert!(m > 1);
    let r = a.rem_euclid(m); // in [0, m)
    if 2 * r > m {
        r - m
    } else {
        r
    }
}

/// Cheap divisibility helper re-exported for tests.
pub fn divides(d: i64, n: i64) -> bool {
    d != 0 && n % d == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use crate::system::Ineq;

    fn lv(v: &Var) -> Linear {
        Linear::var(v.clone())
    }

    fn k(c: i64) -> Linear {
        Linear::constant(c)
    }

    fn sat(sys: &System) -> Tri {
        let mut gen = VarGen::new();
        omega_sat(sys, &mut gen, &OmegaOptions::default())
    }

    #[test]
    fn hat_is_centered_residue() {
        for m in 2..8i64 {
            for a in -30..30i64 {
                let h = hat(a, m);
                assert!((a - h) % m == 0, "hat({a}, {m}) = {h} not congruent");
                assert!(h > -(m + 1) / 2 - 1 && 2 * h <= m, "hat({a}, {m}) = {h} out of range");
            }
        }
        assert_eq!(hat(5, 2), 1);
        assert_eq!(hat(4, 3), 1);
        assert_eq!(hat(-4, 3), -1);
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(k(0), lv(&x)));
        s.push(Ineq::le(lv(&x), k(5)));
        assert_eq!(sat(&s), Tri::Sat);

        let mut s = System::new();
        s.push(Ineq::le(k(1), lv(&x)));
        s.push(Ineq::le(lv(&x), k(0)));
        assert_eq!(sat(&s), Tri::Unsat);
    }

    #[test]
    fn parity_gap_detected() {
        // 1 ≤ 2x ≤ 1: rational solution x = 1/2 only.
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(k(1), lv(&x).scale(2)));
        s.push(Ineq::le(lv(&x).scale(2), k(1)));
        assert_eq!(sat(&s), Tri::Unsat);
    }

    /// Pugh's classic example: 27 ≤ 11x + 13y ≤ 45 ∧ −10 ≤ 7x − 9y ≤ 4 is
    /// rationally satisfiable but has no integer solution.
    #[test]
    fn pugh_classic_gray_region() {
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let e1 = lv(&x).scale(11).add(&lv(&y).scale(13));
        let e2 = lv(&x).scale(7).sub(&lv(&y).scale(9));
        let mut s = System::new();
        s.push(Ineq::le(k(27), e1.clone()));
        s.push(Ineq::le(e1, k(45)));
        s.push(Ineq::le(k(-10), e2.clone()));
        s.push(Ineq::le(e2, k(4)));
        // Plain FM + tightening does NOT refute this one...
        let (fm, _) = s.refute(&crate::system::FourierOptions::default());
        assert_eq!(fm, crate::system::RefuteResult::PossiblySat);
        // ...the Omega test decides it exactly.
        assert_eq!(sat(&s), Tri::Unsat);
        // Sanity: brute force agrees within a box comfortably containing
        // the rational polytope.
        assert!(exhaustive::find_solution(&s, 10).is_none());
    }

    #[test]
    fn pugh_classic_relaxed_is_sat() {
        // Widen one band so an integer point exists: x=2, y=2 satisfies
        // 27 ≤ 11x+13y = 48 ≤ 52 and 7x−9y = −4 ∈ [−10, 4].
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let e1 = lv(&x).scale(11).add(&lv(&y).scale(13));
        let e2 = lv(&x).scale(7).sub(&lv(&y).scale(9));
        let mut s = System::new();
        s.push(Ineq::le(k(27), e1.clone()));
        s.push(Ineq::le(e1, k(52)));
        s.push(Ineq::le(k(-10), e2.clone()));
        s.push(Ineq::le(e2, k(4)));
        assert!(exhaustive::find_solution(&s, 6).is_some(), "witness exists");
        assert_eq!(sat(&s), Tri::Sat);
    }

    #[test]
    fn equality_with_gcd_gap() {
        // 3x + 6y = 4 has no integer solution (gcd 3 does not divide 4).
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let mut s = System::new();
        let e = lv(&x).scale(3).add(&lv(&y).scale(6));
        s.push_eq(e, k(4));
        assert_eq!(sat(&s), Tri::Unsat);
    }

    #[test]
    fn equality_mod_reduction() {
        // 7x + 12y = 17 has integer solutions (x=-1, y=2).
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let mut s = System::new();
        let e = lv(&x).scale(7).add(&lv(&y).scale(12));
        s.push_eq(e, k(17));
        assert_eq!(sat(&s), Tri::Sat);
    }

    #[test]
    fn bounded_equality_unsat() {
        // 7x + 12y = 17, 0 ≤ x ≤ 1, 0 ≤ y ≤ 1: only candidate points fail.
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let mut s = System::new();
        let e = lv(&x).scale(7).add(&lv(&y).scale(12));
        s.push_eq(e, k(17));
        s.push(Ineq::le(k(0), lv(&x)));
        s.push(Ineq::le(lv(&x), k(1)));
        s.push(Ineq::le(k(0), lv(&y)));
        s.push(Ineq::le(lv(&y), k(1)));
        assert_eq!(sat(&s), Tri::Unsat);
    }

    #[test]
    fn unbounded_variables_absorbed() {
        // x ≤ y with both unbounded: trivially satisfiable.
        let mut gen = VarGen::new();
        let x = gen.fresh("x");
        let y = gen.fresh("y");
        let mut s = System::new();
        s.push(Ineq::le(lv(&x), lv(&y)));
        assert_eq!(sat(&s), Tri::Sat);
    }

    #[test]
    fn agrees_with_exhaustive_on_a_grid_of_cases() {
        // A deterministic sweep over small two-variable band systems.
        let mut checked = 0;
        for lo1 in -3..=3i64 {
            for w1 in 0..=2i64 {
                for lo2 in -3..=0i64 {
                    let mut gen = VarGen::new();
                    let x = gen.fresh("x");
                    let y = gen.fresh("y");
                    let e1 = lv(&x).scale(2).add(&lv(&y).scale(3));
                    let e2 = lv(&x).scale(5).sub(&lv(&y).scale(2));
                    let mut s = System::new();
                    s.push(Ineq::le(k(lo1), e1.clone()));
                    s.push(Ineq::le(e1, k(lo1 + w1)));
                    s.push(Ineq::le(k(lo2), e2.clone()));
                    s.push(Ineq::le(e2, k(lo2 + 1)));
                    let brute = exhaustive::find_solution(&s, 12).is_some();
                    match sat(&s) {
                        Tri::Sat => assert!(brute, "omega Sat but brute none: {s}"),
                        Tri::Unsat => assert!(!brute, "omega Unsat but brute found: {s}"),
                        Tri::Unknown => {}
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 50);
    }
}
