//! Goal extraction and the top-level decision procedure.
//!
//! A [`Constraint`] is first stripped of existential variables by equality
//! substitution (§3.1: "In practice, it is crucial that we eliminate all
//! existential variables in constraints before passing them to a constraint
//! solver"), then split into sequent-like [`Goal`]s
//! `∀ctx. hyps ⊃ concl`, each decided by refuting `hyps ∧ ¬concl` over the
//! integers.

use crate::cache::GoalCache;
use crate::canon::{canonicalize_budgeted, BudgetClass};
use crate::dnf::{expand_ne, to_systems, DnfError};
use crate::lower::Lowering;
use crate::stats::SolverStats;
use crate::system::{FourierOptions, FuelMeter, RefuteResult, RefuteTrace, System};
use dml_index::{Constraint, IExp, Linear, Prop, Sort, UnknownReason, Var, VarGen, Verdict};
use dml_obs::{GoalTrace, TraceEvent};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A proof goal `∀ctx. hyps ⊃ concl`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    /// Universally quantified variables with their sorts.
    pub ctx: Vec<(Var, Sort)>,
    /// Hypotheses (conjunctively).
    pub hyps: Vec<Prop>,
    /// The conclusion to establish.
    pub concl: Prop,
    /// `true` if an existential variable survived elimination and was
    /// strengthened to a universal for this goal (sound; recorded for
    /// diagnostics).
    pub residual_existential: bool,
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (v, s) in &self.ctx {
            write!(f, "forall {v}:{s}. ")?;
        }
        if self.hyps.is_empty() {
            write!(f, "{}", self.concl)
        } else {
            let hyps: Vec<String> = self.hyps.iter().map(|h| h.to_string()).collect();
            write!(f, "({}) ==> {}", hyps.join(" /\\ "), self.concl)
        }
    }
}

/// Options for the full solver.
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`SolverOptions::default`] and the `with_*` setters so new knobs are
/// not breaking changes.
///
/// # Examples
///
/// ```
/// use dml_solver::SolverOptions;
/// use std::time::Duration;
///
/// let opts = SolverOptions::default()
///     .with_fuel(Some(10_000))                     // FM pair-combination budget
///     .with_deadline(Some(Duration::from_secs(1))) // wall-clock budget
///     .with_workers(Some(1))                       // sequential solving
///     .with_trace(true);                           // record per-goal event traces
/// assert_eq!(opts.fuel, Some(10_000));
/// assert!(opts.trace);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Fourier–Motzkin options (tightening on/off, limits).
    pub fourier: FourierOptions,
    /// Maximum DNF disjuncts per goal.
    pub max_disjuncts: usize,
    /// When Fourier–Motzkin with tightening fails to refute a disjunct,
    /// retry with the exact Omega test (§6 future work; see
    /// [`crate::omega`]). Off by default — none of the paper's programs
    /// need it — but the ablation bench exercises it.
    pub omega_fallback: bool,
    /// Number of solve workers for [`crate::parallel::prove_all`]. `None`
    /// uses the machine's available parallelism; `Some(1)` reproduces the
    /// sequential pipeline exactly (same `VarGen` consumption, same order).
    pub workers: Option<usize>,
    /// Memoize goal verdicts keyed on canonical form (see [`crate::canon`]).
    /// On by default; the ablation bench turns it off.
    pub cache: bool,
    /// Per-goal fuel budget in Fourier–Motzkin pair combinations; `None`
    /// is unlimited. Running out yields `Unknown(FuelExhausted)` — the
    /// goal's check stays in the program as a residual runtime check.
    pub fuel: Option<u64>,
    /// Per-goal wall-clock deadline; `None` is unlimited. Passing it
    /// yields `Unknown(Deadline)` (never cached — wall-clock verdicts are
    /// machine-dependent).
    pub deadline: Option<Duration>,
    /// Record a per-goal [`GoalTrace`] (obligation → canonicalization →
    /// elimination rounds → verdict) in [`Outcome::traces`]. Off by
    /// default; tracing re-decides cache hits so every trace carries the
    /// full elimination story, which makes it strictly a diagnostic mode.
    pub trace: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            fourier: FourierOptions::default(),
            max_disjuncts: 256,
            omega_fallback: false,
            workers: None,
            cache: true,
            fuel: None,
            deadline: None,
            trace: false,
        }
    }
}

impl SolverOptions {
    /// Replaces the Fourier–Motzkin options.
    pub fn with_fourier(mut self, fourier: FourierOptions) -> Self {
        self.fourier = fourier;
        self
    }

    /// Sets the maximum DNF disjuncts per goal.
    pub fn with_max_disjuncts(mut self, max_disjuncts: usize) -> Self {
        self.max_disjuncts = max_disjuncts;
        self
    }

    /// Enables or disables the Omega-test fallback.
    pub fn with_omega_fallback(mut self, on: bool) -> Self {
        self.omega_fallback = on;
        self
    }

    /// Requests an explicit worker count (`None` = available parallelism).
    pub fn with_workers(mut self, workers: Option<usize>) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables the verdict cache.
    pub fn with_cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Sets the per-goal fuel budget (`None` = unlimited).
    pub fn with_fuel(mut self, fuel: Option<u64>) -> Self {
        self.fuel = fuel;
        self
    }

    /// Sets the per-goal wall-clock deadline (`None` = unlimited).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enables or disables per-goal trace recording.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// The budget class verdicts computed under these options belong to.
    pub fn budget_class(&self) -> BudgetClass {
        match self.fuel {
            None => BudgetClass::Unlimited,
            Some(f) => BudgetClass::Fuel(f),
        }
    }
}

/// The outcome of proving a constraint: per-goal verdicts plus statistics.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Each goal with its verdict, in generation order.
    pub results: Vec<(Goal, Verdict)>,
    /// Per-goal traces, index-aligned with `results` when
    /// [`SolverOptions::trace`] is on; empty otherwise. Each goal's buffer
    /// is filled by whichever worker decided it and merged back in goal
    /// order, so traces are deterministic under parallel solving.
    pub traces: Vec<GoalTrace>,
    /// Accumulated statistics.
    pub stats: SolverStats,
}

impl Outcome {
    /// `true` if every goal was proven valid.
    pub fn all_proven(&self) -> bool {
        self.results.iter().all(|(_, r)| r.is_proven())
    }

    /// The goals that were not proven (refuted or unknown).
    pub fn failures(&self) -> impl Iterator<Item = &(Goal, Verdict)> {
        self.results.iter().filter(|(_, r)| !r.is_proven())
    }
}

/// The constraint solver: existential elimination → goal splitting →
/// Fourier–Motzkin refutation.
///
/// Cloning a solver *shares* its verdict cache (the cache sits behind an
/// [`Arc`]), so the compile pipeline, parallel workers, and the lint walker
/// all reuse each other's memoized verdicts.
#[derive(Debug, Clone, Default)]
pub struct Solver {
    opts: SolverOptions,
    cache: Arc<GoalCache>,
}

impl Solver {
    /// Creates a solver with the given options and a fresh cache.
    pub fn new(opts: SolverOptions) -> Self {
        Solver { opts, cache: Arc::new(GoalCache::new()) }
    }

    /// The solver options.
    pub fn options(&self) -> &SolverOptions {
        &self.opts
    }

    /// A solver with different options but the *same* shared verdict
    /// cache. Budget classes keep entries computed under different fuel
    /// limits apart (see [`crate::canon::BudgetClass`]).
    pub fn with_options(&self, opts: SolverOptions) -> Solver {
        Solver { opts, cache: Arc::clone(&self.cache) }
    }

    /// The shared verdict cache.
    pub fn cache(&self) -> &GoalCache {
        &self.cache
    }

    /// Proves a constraint, returning per-goal results and statistics.
    pub fn prove(&self, c: &Constraint, gen: &mut VarGen) -> Outcome {
        let start = Instant::now();
        let mut stats = SolverStats::default();
        let reduced = eliminate_existentials(c, &mut stats);
        let goals = split_goals(&reduced);
        let mut results = Vec::with_capacity(goals.len());
        let mut traces = Vec::new();
        for goal in goals {
            let (r, tr) = self.decide_traced(&goal, gen, &mut stats);
            stats.goals += 1;
            match &r {
                Verdict::Proven => stats.proven += 1,
                Verdict::Refuted => {
                    stats.refuted += 1;
                    stats.not_proven += 1;
                }
                // `Unknown` and any future verdict count as not proven —
                // the conservative direction.
                _ => stats.not_proven += 1,
            }
            if let Some(tr) = tr {
                traces.push(tr);
            }
            results.push((goal, r));
        }
        stats.solve_time = start.elapsed();
        Outcome { results, traces, stats }
    }

    /// Decides an entailment `ctx; hyps ⊢ concl` directly, without going
    /// through constraint extraction.
    ///
    /// This is the entry point used by the semantic lints (`dml-analysis`):
    /// they re-play the hypotheses the elaborator had in scope at a program
    /// point and ask whether a candidate proposition is forced by them. Any
    /// sort guards (e.g. `0 ≤ n` for `n:nat`) must already be present in
    /// `hyps` — the context only names the universally quantified
    /// variables.
    ///
    /// ```
    /// use dml_index::{IExp, Prop, Sort, VarGen};
    /// use dml_solver::{Solver, SolverOptions};
    ///
    /// let mut gen = VarGen::new();
    /// let n = gen.fresh("n");
    /// let solver = Solver::new(SolverOptions::default());
    /// // n:int; 0 <= n, n < 5 ⊢ n <= 10
    /// let r = solver.entails(
    ///     &[(n.clone(), Sort::Int)],
    ///     &[Prop::le(IExp::lit(0), IExp::var(n.clone())),
    ///       Prop::lt(IExp::var(n.clone()), IExp::lit(5))],
    ///     &Prop::le(IExp::var(n), IExp::lit(10)),
    ///     &mut gen,
    /// );
    /// assert!(r.is_proven());
    /// ```
    pub fn entails(
        &self,
        ctx: &[(Var, Sort)],
        hyps: &[Prop],
        concl: &Prop,
        gen: &mut VarGen,
    ) -> Verdict {
        let goal = Goal {
            ctx: ctx.to_vec(),
            hyps: hyps.to_vec(),
            concl: concl.clone(),
            residual_existential: false,
        };
        let mut stats = SolverStats::default();
        self.decide(&goal, gen, &mut stats)
    }

    /// Decides a single goal, consulting the shared verdict cache after the
    /// cheap syntactic fast paths (fast-path goals never enter the cache —
    /// deciding them again is cheaper than hashing them).
    pub fn decide(&self, goal: &Goal, gen: &mut VarGen, stats: &mut SolverStats) -> Verdict {
        self.decide_traced(goal, gen, stats).0
    }

    /// [`Solver::decide`] returning the goal's [`GoalTrace`] as well.
    ///
    /// The trace is `Some` exactly when [`SolverOptions::trace`] is on. In
    /// trace mode the cache is still probed (so the trace records the
    /// hit/miss) but the goal is always re-decided, so every trace carries
    /// the full elimination story regardless of what earlier solves warmed
    /// the cache — this is what makes `dmlc explain` output independent of
    /// the cache configuration.
    pub fn decide_traced(
        &self,
        goal: &Goal,
        gen: &mut VarGen,
        stats: &mut SolverStats,
    ) -> (Verdict, Option<GoalTrace>) {
        let start = Instant::now();
        if !self.opts.trace {
            let v = self.decide_plain(goal, gen, stats);
            stats.phase_times.goal.record(start.elapsed());
            return (v, None);
        }
        let mut tr = GoalTrace::default();
        let combos_before = stats.fm_combinations;
        let v = self.decide_recording(goal, gen, stats, &mut tr);
        tr.fuel_spent = (stats.fm_combinations - combos_before) as u64;
        tr.push(TraceEvent::Verdict { verdict: v.to_string() });
        let elapsed = start.elapsed();
        tr.wall_ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        stats.phase_times.goal.record(elapsed);
        (v, Some(tr))
    }

    /// The cheap syntactic fast paths shared by both decide modes. Returns
    /// the verdict and the rule name (for [`TraceEvent::FastPath`]).
    fn fast_path(&self, goal: &Goal) -> Option<(Verdict, &'static str)> {
        if goal.concl == Prop::True {
            return Some((Verdict::Proven, "trivial-conclusion"));
        }
        if goal.hyps.contains(&Prop::False) {
            return Some((Verdict::Proven, "false-hypothesis"));
        }
        // Reflexive conclusions hold regardless of hypotheses (and may be
        // non-linear, e.g. `a*b = a*b` after witness substitution).
        if let Prop::Cmp(op, a, b) = &goal.concl {
            if a == b && matches!(op, dml_index::Cmp::Eq | dml_index::Cmp::Le | dml_index::Cmp::Ge)
            {
                return Some((Verdict::Proven, "reflexive"));
            }
        }
        // A hypothesis syntactically identical to the conclusion suffices.
        if goal.hyps.contains(&goal.concl) {
            return Some((Verdict::Proven, "assumption"));
        }
        None
    }

    /// The default (untraced) decide path: fast paths, then the cache, then
    /// the full decision procedure.
    fn decide_plain(&self, goal: &Goal, gen: &mut VarGen, stats: &mut SolverStats) -> Verdict {
        if let Some((v, _rule)) = self.fast_path(goal) {
            return v;
        }
        if !self.opts.cache {
            return self.decide_uncached(goal, gen, stats, None);
        }
        // Verdicts are keyed by budget class: a fuel-truncated Unknown must
        // never masquerade as the unlimited answer (or vice versa).
        let key = canonicalize_budgeted(goal, self.opts.budget_class());
        if let Some(r) = self.cache.get(&key) {
            stats.cache_hits += 1;
            return r;
        }
        stats.cache_misses += 1;
        let r = self.decide_uncached(goal, gen, stats, None);
        // Deadline verdicts depend on wall-clock scheduling, so they are
        // recomputed every time rather than poisoning the shared cache.
        if r != Verdict::Unknown(UnknownReason::Deadline) {
            self.cache.insert(key, r.clone());
        }
        r
    }

    /// The trace-mode decide path: identical decisions to
    /// [`Solver::decide_plain`], but every step is recorded and cache hits
    /// are re-decided (see [`Solver::decide_traced`]).
    fn decide_recording(
        &self,
        goal: &Goal,
        gen: &mut VarGen,
        stats: &mut SolverStats,
        tr: &mut GoalTrace,
    ) -> Verdict {
        if let Some((v, rule)) = self.fast_path(goal) {
            tr.push(TraceEvent::FastPath { rule });
            return v;
        }
        let key = canonicalize_budgeted(goal, self.opts.budget_class());
        tr.push(TraceEvent::Canonicalized { vars: key.sorts.len(), hyps: key.hyps.len() });
        if self.opts.cache {
            let hit = self.cache.get(&key).is_some();
            tr.push(TraceEvent::Cache { hit });
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
        }
        let r = self.decide_uncached(goal, gen, stats, Some(tr));
        if self.opts.cache && r != Verdict::Unknown(UnknownReason::Deadline) {
            self.cache.insert(key, r.clone());
        }
        r
    }

    /// The expensive part of [`Solver::decide`]: lowering, DNF expansion,
    /// and Fourier–Motzkin refutation, with no cache consultation. `tr`
    /// receives the per-step events in trace mode; the decision itself is
    /// identical either way.
    fn decide_uncached(
        &self,
        goal: &Goal,
        gen: &mut VarGen,
        stats: &mut SolverStats,
        mut tr: Option<&mut GoalTrace>,
    ) -> Verdict {
        // Negate: hyps ∧ ¬concl must be integer-unsatisfiable. Non-linear
        // *hypotheses* are dropped (weakening — sound for proving, but it
        // forfeits refutation: a countermodel of the weakened system need
        // not satisfy the dropped hypothesis); a non-linear conclusion is
        // rejected per §3.2.
        let t_lower = Instant::now();
        let mut lowering = Lowering::new(gen);
        let mut lowered = Prop::True;
        let mut weakened = false;
        for h in &goal.hyps {
            let hx = expand_ne(&h.clone().nnf());
            match lowering.lower_prop(&hx) {
                Ok(p) => lowered = lowered.and(p),
                Err(_) => {
                    weakened = true;
                    if let Some(t) = tr.as_deref_mut() {
                        t.push(TraceEvent::HypothesisDropped { expr: h.to_string() });
                    }
                }
            }
        }
        let neg_concl = expand_ne(&goal.concl.clone().negate().nnf());
        match lowering.lower_prop(&neg_concl) {
            Ok(p) => lowered = lowered.and(p),
            Err(nl) => {
                stats.phase_times.lowering.record(t_lower.elapsed());
                // No elimination happened; still snapshot the (zero) fuel
                // charge so every trace carries a fuel line.
                if let Some(t) = tr.as_deref_mut() {
                    t.push(TraceEvent::Fuel { spent: 0, remaining: self.opts.fuel });
                }
                return Verdict::Unknown(UnknownReason::Nonlinear(nl.expr));
            }
        }
        let mut sides = Prop::True;
        for s in lowering.side_constraints() {
            sides = sides.and(s.clone());
        }
        let lowered_vars = lowering.fresh_count();
        stats.lowered_vars += lowered_vars;
        if lowered_vars > 0 {
            if let Some(t) = tr.as_deref_mut() {
                t.push(TraceEvent::Lowered { fresh_vars: lowered_vars });
            }
        }
        stats.phase_times.lowering.record(t_lower.elapsed());
        let t_dnf = Instant::now();
        let formula = expand_ne(&lowered.and(sides).nnf());
        let systems = match to_systems(&formula, self.opts.max_disjuncts) {
            Ok(s) => {
                stats.phase_times.dnf.record(t_dnf.elapsed());
                s
            }
            Err(e) => {
                stats.phase_times.dnf.record(t_dnf.elapsed());
                if let Some(t) = tr.as_deref_mut() {
                    t.push(TraceEvent::Fuel { spent: 0, remaining: self.opts.fuel });
                }
                match e {
                    DnfError::Overflow(_) => return Verdict::Unknown(UnknownReason::Blowup),
                    DnfError::NonLinear(nl) => {
                        return Verdict::Unknown(UnknownReason::Nonlinear(nl.expr))
                    }
                }
            }
        };
        if let Some(t) = tr.as_deref_mut() {
            t.push(TraceEvent::Dnf { disjuncts: systems.len() });
        }
        // Stable per-goal variable names for trace events: context
        // variables keep their display names, lowering-introduced ones get
        // positional names independent of worker id ranges.
        let names = tr.as_ref().map(|_| stable_names(goal, &systems));
        // One meter per goal, shared across its disjunct systems: the fuel
        // budget bounds the goal's total elimination work.
        let mut meter = FuelMeter::new(self.opts.fuel, self.opts.deadline);
        let t_elim = Instant::now();
        let verdict = 'solve: {
            for (index, sys) in systems.iter().enumerate() {
                if let Some(t) = tr.as_deref_mut() {
                    t.push(TraceEvent::SystemStart { index, ineqs: sys.len() });
                }
                let (r, combos) = match (tr.as_deref_mut(), names.as_ref()) {
                    (Some(t), Some(names)) => {
                        let mut sink = RefuteTrace { events: &mut t.events, names };
                        sys.refute_traced(&self.opts.fourier, &mut meter, Some(&mut sink))
                    }
                    _ => sys.refute_budgeted(&self.opts.fourier, &mut meter),
                };
                stats.fm_combinations += combos;
                if let Some(t) = tr.as_deref_mut() {
                    t.push(TraceEvent::Fuel { spent: meter.spent(), remaining: meter.remaining() });
                }
                match r {
                    RefuteResult::Refuted => stats.disjuncts_refuted += 1,
                    RefuteResult::PossiblySat => {
                        if self.opts.omega_fallback
                            && crate::omega::omega_refutes(
                                sys,
                                gen,
                                &crate::omega::OmegaOptions::default(),
                            )
                        {
                            stats.disjuncts_refuted += 1;
                            continue;
                        }
                        // A satisfiable disjunct of `hyps ∧ ¬concl` is a
                        // counterexample to the goal — but only when the
                        // system is *exactly* the goal's negation: no
                        // hypothesis was weakened away, no existential was
                        // strengthened to a universal, and no lowering
                        // variable relaxed the semantics. Within those guards
                        // a bounded exhaustive search is a sound (and
                        // deterministic) refutation certificate.
                        let exact = !weakened && !goal.residual_existential && lowered_vars == 0;
                        if exact && sys.vars().len() <= REFUTE_SEARCH_MAX_VARS {
                            let t_wit = Instant::now();
                            let sol = crate::exhaustive::find_solution(sys, REFUTE_SEARCH_BOUND);
                            stats.phase_times.witness_search.record(t_wit.elapsed());
                            if let Some(sol) = sol {
                                if let Some(t) = tr.as_deref_mut() {
                                    let empty = HashMap::new();
                                    let names = names.as_ref().unwrap_or(&empty);
                                    let mut assignment: Vec<(String, i64)> = sol
                                        .iter()
                                        .map(|(v, n)| {
                                            let name = names
                                                .get(v)
                                                .cloned()
                                                .unwrap_or_else(|| v.to_string());
                                            (name, *n)
                                        })
                                        .collect();
                                    assignment.sort();
                                    t.push(TraceEvent::Witness { assignment });
                                }
                                break 'solve Verdict::Refuted;
                            }
                        }
                        break 'solve Verdict::Unknown(UnknownReason::PossiblyFalsifiable);
                    }
                    RefuteResult::Overflow => break 'solve Verdict::Unknown(UnknownReason::Blowup),
                    RefuteResult::FuelExhausted => {
                        break 'solve Verdict::Unknown(UnknownReason::FuelExhausted)
                    }
                    RefuteResult::DeadlineExceeded => {
                        break 'solve Verdict::Unknown(UnknownReason::Deadline)
                    }
                }
            }
            Verdict::Proven
        };
        stats.phase_times.elimination.record(t_elim.elapsed());
        verdict
    }
}

/// Builds the stable per-goal variable-name map used in trace events.
///
/// Context variables keep their display names (elaboration assigns those
/// deterministically before any parallel solving starts); duplicate display
/// names are disambiguated by an `@k` suffix in id order. Variables the
/// systems mention beyond the context are lowering-introduced: their raw
/// names embed worker-dependent ids, so they are renamed positionally
/// (`$1`, `$2`, …) in id order, which within one goal is creation order on
/// every worker.
fn stable_names(goal: &Goal, systems: &[System]) -> HashMap<Var, String> {
    let mut names: HashMap<Var, String> = HashMap::new();
    let mut used: HashSet<String> = HashSet::new();
    for (v, _) in &goal.ctx {
        let mut name = v.to_string();
        if !used.insert(name.clone()) {
            let mut k = 2;
            loop {
                let candidate = format!("{name}@{k}");
                if used.insert(candidate.clone()) {
                    name = candidate;
                    break;
                }
                k += 1;
            }
        }
        names.insert(v.clone(), name);
    }
    let mut all: BTreeSet<Var> = BTreeSet::new();
    for sys in systems {
        all.extend(sys.vars());
    }
    let mut fresh = 0usize;
    for v in all {
        if let std::collections::hash_map::Entry::Vacant(e) = names.entry(v) {
            fresh += 1;
            e.insert(format!("${fresh}"));
        }
    }
    names
}

/// Counterexample search is capped at this many variables (the box search
/// is exponential) …
const REFUTE_SEARCH_MAX_VARS: usize = 4;
/// … and scans the box `[-8, 8]^n` (array-bound counterexamples are
/// overwhelmingly small).
const REFUTE_SEARCH_BOUND: i64 = 8;

/// Eliminates existential variables by equality substitution.
///
/// For each `∃v. φ`, searches `φ` for an equation that determines `v`
/// (either `v = e` syntactically with `v ∉ FV(e)`, or a linear equation in
/// which `v` has coefficient ±1) and substitutes the solution. Choosing any
/// witness is sound for a positively-occurring existential: proving `φ[e/v]`
/// proves `∃v. φ`.
pub fn eliminate_existentials(c: &Constraint, stats: &mut SolverStats) -> Constraint {
    let residual_base = stats.existentials_residual;
    let mut cur = eliminate_pass(c, stats);
    // A substitution in one ∃-chain can unlock a residual in a *separated*
    // chain elsewhere in the tree (the old recursive re-scan handled this
    // implicitly); iterate whole passes to that fixpoint. Constraints from
    // the elaborator are a single chain, so this loop exits immediately.
    loop {
        if !contains_exists(&cur) {
            return cur;
        }
        let before = stats.existentials_eliminated;
        // Every pass counts all residuals it sees, so a re-scan would
        // double-count the ones that stay residual; recount from the base
        // so the final tally is the residuals left in the *output*.
        stats.existentials_residual = residual_base;
        let next = eliminate_pass(&cur, stats);
        if stats.existentials_eliminated == before {
            return next;
        }
        cur = next;
    }
}

/// One structural elimination pass: every maximal run of consecutive
/// existentials is solved as a batch by [`eliminate_chain_once`].
fn eliminate_pass(c: &Constraint, stats: &mut SolverStats) -> Constraint {
    match c {
        Constraint::Prop(_) => c.clone(),
        Constraint::And(cs) => {
            Constraint::And(cs.iter().map(|c| eliminate_pass(c, stats)).collect())
        }
        Constraint::Implies(p, c) => {
            Constraint::Implies(p.clone(), Box::new(eliminate_pass(c, stats)))
        }
        Constraint::Forall(v, s, c) => {
            Constraint::Forall(v.clone(), *s, Box::new(eliminate_pass(c, stats)))
        }
        Constraint::Exists(_, _, _) => eliminate_chain_once(c, stats),
    }
}

/// An equation `a = b` from the constraint, with its linear normal form
/// `a - b` precomputed (when both sides are linear) so repeated witness
/// probes don't re-run [`Linear::from_iexp`] per variable.
struct EqEntry {
    a: IExp,
    b: IExp,
    diff: Option<Linear>,
}

impl EqEntry {
    fn new((a, b): (IExp, IExp)) -> EqEntry {
        let diff = Linear::from_iexp(&a)
            .ok()
            .and_then(|la| Linear::from_iexp(&b).ok().map(|lb| la.sub(&lb)));
        EqEntry { a, b, diff }
    }

    fn subst(&mut self, v: &Var, e: &IExp) {
        if !self.a.contains_var(v) && !self.b.contains_var(v) {
            return;
        }
        self.a = self.a.subst(v, e);
        self.b = self.b.subst(v, e);
        self.diff = Linear::from_iexp(&self.a)
            .ok()
            .and_then(|la| Linear::from_iexp(&self.b).ok().map(|lb| la.sub(&lb)));
    }
}

/// Eliminates a maximal run of nested existentials (`∃v₁…∃vₖ. body`) as a
/// batch. Equations are collected from the body **once** and kept
/// up-to-date under witness substitution, instead of re-collecting (and
/// re-linearizing) the whole body per variable; the accumulated witnesses
/// are applied to the body in a single [`Constraint::subst_many`] pass at
/// the end. Witness *choice* is unchanged: variables are attempted
/// innermost-first, the search restarts from the innermost residual after
/// every success (an enclosing substitution may pin a residual down), and
/// per-variable preference order is the one documented on
/// [`witness_from_eqs`].
fn eliminate_chain_once(c: &Constraint, stats: &mut SolverStats) -> Constraint {
    let mut chain: Vec<(Var, Sort)> = Vec::new();
    let mut cur = c;
    while let Constraint::Exists(v, s, b) = cur {
        chain.push((v.clone(), *s));
        cur = b.as_ref();
    }
    // Separated chains deeper in the body are eliminated first, exactly as
    // the innermost-first recursion used to.
    let body = eliminate_pass(cur, stats);
    let mut raw_hyp = Vec::new();
    let mut raw_concl = Vec::new();
    collect_equations(&body, false, &mut raw_hyp, &mut raw_concl);
    let mut hyp_eqs: Vec<EqEntry> = raw_hyp.into_iter().map(EqEntry::new).collect();
    let mut concl_eqs: Vec<EqEntry> = raw_concl.into_iter().map(EqEntry::new).collect();
    let mut solved: Vec<(Var, IExp)> = Vec::new();
    let mut done = vec![false; chain.len()];
    'search: loop {
        for idx in (0..chain.len()).rev() {
            if done[idx] {
                continue;
            }
            let v = &chain[idx].0;
            let Some(e) = witness_from_eqs(v, &hyp_eqs, &concl_eqs) else {
                continue;
            };
            stats.existentials_eliminated += 1;
            // Keep earlier witnesses fully resolved so the final
            // simultaneous substitution equals the old sequential one.
            for (_, w) in solved.iter_mut() {
                if w.contains_var(v) {
                    *w = w.subst(v, &e);
                }
            }
            for eq in hyp_eqs.iter_mut().chain(concl_eqs.iter_mut()) {
                eq.subst(v, &e);
            }
            solved.push((v.clone(), e));
            done[idx] = true;
            continue 'search;
        }
        break;
    }
    let mut out = if solved.is_empty() { body } else { body.subst_many(&solved) };
    for idx in (0..chain.len()).rev() {
        if !done[idx] {
            stats.existentials_residual += 1;
            let (v, s) = &chain[idx];
            out = Constraint::Exists(v.clone(), *s, Box::new(out));
        }
    }
    out
}

/// Witness search over the pre-collected equation lists, in
/// preference order: (1) hypothesis equations where `v` appears *alone* on
/// one side (argument/pattern defining equations — facts about actual
/// run-time values); (2) conclusion equations with `v` alone; (3) general
/// linear solves from hypotheses; (4) from conclusions. Taking a
/// hypothesis-alone equation first ensures a second, conflicting equation
/// is checked against the defining value rather than vacuously discharged.
fn witness_from_eqs(v: &Var, hyp_eqs: &[EqEntry], concl_eqs: &[EqEntry]) -> Option<IExp> {
    for eq in hyp_eqs.iter().chain(concl_eqs) {
        if let Some(e) = solve_alone(v, &eq.a, &eq.b) {
            return Some(e);
        }
    }
    for eq in hyp_eqs.iter().chain(concl_eqs) {
        if let Some(e) = solve_linear_entry(v, eq) {
            return Some(e);
        }
    }
    None
}

/// Solves a linear equation `a = b` for `v` against the precomputed linear
/// difference: coefficient ±1, or a larger coefficient when the remainder
/// divides exactly (`4q' = 4q + 4` gives `q' = q + 1`).
fn solve_linear_entry(v: &Var, eq: &EqEntry) -> Option<IExp> {
    let lin = eq.diff.as_ref()?;
    let coeff = lin.coeff(v);
    if coeff == 0 {
        return None;
    }
    let mut rest = lin.clone();
    rest.add_term(v.clone(), -coeff);
    // coeff·v + rest = 0  →  v = -rest/coeff.
    let negated = rest.scale(-1);
    let solution = negated.div_exact(coeff)?;
    Some(solution.to_iexp())
}

/// `true` if any existential quantifier occurs in the constraint.
fn contains_exists(c: &Constraint) -> bool {
    match c {
        Constraint::Prop(_) => false,
        Constraint::And(cs) => cs.iter().any(contains_exists),
        Constraint::Implies(_, c) | Constraint::Forall(_, _, c) => contains_exists(c),
        Constraint::Exists(_, _, _) => true,
    }
}

fn collect_equations(
    c: &Constraint,
    _under_hyp: bool,
    hyp_eqs: &mut Vec<(IExp, IExp)>,
    concl_eqs: &mut Vec<(IExp, IExp)>,
) {
    match c {
        Constraint::Prop(p) => collect_prop_equations(p, concl_eqs),
        Constraint::And(cs) => {
            for c in cs {
                collect_equations(c, _under_hyp, hyp_eqs, concl_eqs);
            }
        }
        Constraint::Implies(p, c) => {
            collect_prop_equations(p, hyp_eqs);
            collect_equations(c, _under_hyp, hyp_eqs, concl_eqs);
        }
        Constraint::Forall(_, _, c) | Constraint::Exists(_, _, c) => {
            collect_equations(c, _under_hyp, hyp_eqs, concl_eqs);
        }
    }
}

fn collect_prop_equations(p: &Prop, out: &mut Vec<(IExp, IExp)>) {
    for q in p.conjuncts() {
        if let Prop::Cmp(dml_index::Cmp::Eq, a, b) = q {
            out.push((a.clone(), b.clone()));
        }
    }
}

/// Solves `a = b` for `v` when `v` is exactly one side and absent from the
/// other. This also covers non-linear right-hand sides like
/// `(h - l) div 2`.
fn solve_alone(v: &Var, a: &IExp, b: &IExp) -> Option<IExp> {
    if let IExp::Var(w) = a {
        if w == v && !b.free_vars().contains(v) {
            return Some(b.clone());
        }
    }
    if let IExp::Var(w) = b {
        if w == v && !a.free_vars().contains(v) {
            return Some(a.clone());
        }
    }
    None
}

/// Splits a (post-elimination) constraint into goals.
pub fn split_goals(c: &Constraint) -> Vec<Goal> {
    let mut goals = Vec::new();
    let mut ctx = Vec::new();
    let mut hyps = Vec::new();
    go(c, &mut ctx, &mut hyps, false, &mut goals);
    goals
}

fn go(
    c: &Constraint,
    ctx: &mut Vec<(Var, Sort)>,
    hyps: &mut Vec<Prop>,
    residual: bool,
    goals: &mut Vec<Goal>,
) {
    match c {
        Constraint::Prop(p) => {
            for concl in p.conjuncts() {
                goals.push(Goal {
                    ctx: ctx.clone(),
                    hyps: hyps.clone(),
                    concl: concl.clone(),
                    residual_existential: residual,
                });
            }
        }
        Constraint::And(cs) => {
            for c in cs {
                go(c, ctx, hyps, residual, goals);
            }
        }
        Constraint::Implies(p, c) => {
            let before = hyps.len();
            for h in p.conjuncts() {
                // Reflexive equalities left over from witness substitution
                // carry no information; dropping them keeps goals tidy.
                if let Prop::Cmp(dml_index::Cmp::Eq, a, b) = h {
                    if a == b {
                        continue;
                    }
                }
                hyps.push(h.clone());
            }
            go(c, ctx, hyps, residual, goals);
            hyps.truncate(before);
        }
        Constraint::Forall(v, s, c) => {
            ctx.push((v.clone(), *s));
            go(c, ctx, hyps, residual, goals);
            ctx.pop();
        }
        Constraint::Exists(v, s, c) => {
            // A surviving existential is *strengthened* to a universal:
            // proving ∀v.φ proves ∃v.φ, so this is sound and lets goals
            // like ∃M. M = M (left over when a witness substitution is
            // purely self-referential) still go through. The flag records
            // the strengthening for diagnostics.
            ctx.push((v.clone(), *s));
            go(c, ctx, hyps, true, goals);
            ctx.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::Cmp;

    fn solver() -> Solver {
        Solver::new(SolverOptions::default())
    }

    /// Figure 2's first clause: ∀n:nat. ∃M.∃N. (M = 0 ∧ N = n) ⊃ M + N = n.
    #[test]
    fn reverse_first_clause_constraint() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m_ = g.fresh_tagged("M");
        let n_ = g.fresh_tagged("N");
        let inner = Constraint::Implies(
            Prop::eq(IExp::var(m_.clone()), IExp::lit(0))
                .and(Prop::eq(IExp::var(n_.clone()), IExp::var(n.clone()))),
            Box::new(Constraint::Prop(Prop::eq(
                IExp::var(m_.clone()) + IExp::var(n_.clone()),
                IExp::var(n.clone()),
            ))),
        );
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Exists(
                    m_,
                    Sort::Int,
                    Box::new(Constraint::Exists(n_, Sort::Int, Box::new(inner))),
                )),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(outcome.all_proven(), "{:?}", outcome.results);
        assert_eq!(outcome.stats.existentials_eliminated, 2);
    }

    /// Figure 2's second clause: ∀m,n:nat. (m+1) + n = m + (n+1).
    #[test]
    fn reverse_second_clause_constraint() {
        let mut g = VarGen::new();
        let m = g.fresh("m");
        let n = g.fresh("n");
        let c = Constraint::Forall(
            m.clone(),
            Sort::Int,
            Box::new(Constraint::Forall(
                n.clone(),
                Sort::Int,
                Box::new(Constraint::Prop(Prop::eq(
                    (IExp::var(m.clone()) + IExp::lit(1)) + IExp::var(n.clone()),
                    IExp::var(m) + (IExp::var(n) + IExp::lit(1)),
                ))),
            )),
        );
        assert!(solver().prove(&c, &mut g).all_proven());
    }

    /// A Figure-4-style constraint: the binary-search midpoint stays in
    /// bounds: ∀h,l,size. (0 ≤ h+1 ≤ size ∧ 0 ≤ l ≤ size ∧ h ≥ l)
    /// ⊃ l + (h−l) div 2 + 1 ≤ size.
    #[test]
    fn bsearch_midpoint_in_bounds() {
        let mut g = VarGen::new();
        let h = g.fresh("h");
        let l = g.fresh("l");
        let size = g.fresh("size");
        let hyp = Prop::le(IExp::lit(0), IExp::var(h.clone()) + IExp::lit(1))
            .and(Prop::le(IExp::var(h.clone()) + IExp::lit(1), IExp::var(size.clone())))
            .and(Prop::le(IExp::lit(0), IExp::var(l.clone())))
            .and(Prop::le(IExp::var(l.clone()), IExp::var(size.clone())))
            .and(Prop::cmp(Cmp::Ge, IExp::var(h.clone()), IExp::var(l.clone())));
        let mid =
            IExp::var(l.clone()) + (IExp::var(h.clone()) - IExp::var(l.clone())).div(IExp::lit(2));
        let concl = Prop::le(mid.clone() + IExp::lit(1), IExp::var(size.clone()));
        let c = Constraint::Forall(
            h,
            Sort::Int,
            Box::new(Constraint::Forall(
                l,
                Sort::Int,
                Box::new(Constraint::Forall(
                    size,
                    Sort::Int,
                    Box::new(Constraint::Implies(hyp, Box::new(Constraint::Prop(concl)))),
                )),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(outcome.all_proven(), "{:?}", outcome.results);
    }

    /// Midpoint non-negativity: same hypotheses ⊃ 0 ≤ l + (h−l) div 2.
    #[test]
    fn bsearch_midpoint_nonnegative() {
        let mut g = VarGen::new();
        let h = g.fresh("h");
        let l = g.fresh("l");
        let size = g.fresh("size");
        let hyp = Prop::le(IExp::lit(0), IExp::var(h.clone()) + IExp::lit(1))
            .and(Prop::le(IExp::var(h.clone()) + IExp::lit(1), IExp::var(size.clone())))
            .and(Prop::le(IExp::lit(0), IExp::var(l.clone())))
            .and(Prop::cmp(Cmp::Ge, IExp::var(h.clone()), IExp::var(l.clone())));
        let mid =
            IExp::var(l.clone()) + (IExp::var(h.clone()) - IExp::var(l.clone())).div(IExp::lit(2));
        let c = Constraint::Forall(
            h,
            Sort::Int,
            Box::new(Constraint::Forall(
                l,
                Sort::Int,
                Box::new(Constraint::Forall(
                    size,
                    Sort::Int,
                    Box::new(Constraint::Implies(
                        hyp,
                        Box::new(Constraint::Prop(Prop::le(IExp::lit(0), mid))),
                    )),
                )),
            )),
        );
        assert!(solver().prove(&c, &mut g).all_proven());
    }

    /// An invalid goal is not proven.
    #[test]
    fn invalid_goal_not_proven() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        // ∀n. 0 ≤ n ⊃ n ≤ 5 — false.
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Prop(Prop::le(IExp::var(n), IExp::lit(5)))),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(!outcome.all_proven());
        assert_eq!(outcome.stats.not_proven, 1);
        // The counterexample (e.g. n = 6) is inside the search box, the
        // goal needed no weakening or lowering, so it is outright refuted.
        assert_eq!(outcome.results[0].1, Verdict::Refuted);
        assert_eq!(outcome.stats.refuted, 1);
    }

    #[test]
    fn nonlinear_goal_rejected() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        // ∀a,b. a·b = b·a — true but non-linear, rejected per §3.2.
        let c = Constraint::Forall(
            a.clone(),
            Sort::Int,
            Box::new(Constraint::Forall(
                b.clone(),
                Sort::Int,
                Box::new(Constraint::Prop(Prop::eq(
                    IExp::var(a.clone()) * IExp::var(b.clone()),
                    IExp::var(b) * IExp::var(a),
                ))),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        let (_, r) = &outcome.results[0];
        assert!(matches!(r, Verdict::Unknown(UnknownReason::Nonlinear(_))));
    }

    #[test]
    fn residual_existential_not_proven() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        // ∃n. n ≤ 3 — no defining equation, so elimination fails (even
        // though the formula is true; the paper's method has the same
        // limitation, by design).
        let c = Constraint::Exists(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Prop(Prop::le(IExp::var(n), IExp::lit(3)))),
        );
        let outcome = solver().prove(&c, &mut g);
        // The residual existential is strengthened to a universal, under
        // which `n <= 3` is falsifiable.
        assert!(matches!(
            outcome.results[0].1,
            Verdict::Unknown(UnknownReason::PossiblyFalsifiable)
        ));
        assert_eq!(outcome.stats.existentials_residual, 1);
    }

    #[test]
    fn existential_solved_from_conclusion_equation() {
        let mut g = VarGen::new();
        let m = g.fresh("m");
        let e = g.fresh_tagged("E");
        // ∀m. ∃E. (E = m + 1 ∧ E ≤ m + 2)
        let c = Constraint::Forall(
            m.clone(),
            Sort::Int,
            Box::new(Constraint::Exists(
                e.clone(),
                Sort::Int,
                Box::new(Constraint::Prop(
                    Prop::eq(IExp::var(e.clone()), IExp::var(m.clone()) + IExp::lit(1))
                        .and(Prop::le(IExp::var(e), IExp::var(m) + IExp::lit(2))),
                )),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(outcome.all_proven(), "{:?}", outcome.results);
    }

    #[test]
    fn existential_witness_through_nonlinear_rhs() {
        let mut g = VarGen::new();
        let h = g.fresh("h");
        let e = g.fresh_tagged("E");
        // ∀h. 0 ≤ h ⊃ ∃E. (E = h div 2 ⊃ E ≤ h)
        let c = Constraint::Forall(
            h.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(h.clone())),
                Box::new(Constraint::Exists(
                    e.clone(),
                    Sort::Int,
                    Box::new(Constraint::Implies(
                        Prop::eq(IExp::var(e.clone()), IExp::var(h.clone()).div(IExp::lit(2))),
                        Box::new(Constraint::Prop(Prop::le(IExp::var(e), IExp::var(h)))),
                    )),
                )),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(outcome.all_proven(), "{:?}", outcome.results);
    }

    #[test]
    fn goal_display_readable() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let goal = Goal {
            ctx: vec![(n.clone(), Sort::Int)],
            hyps: vec![Prop::le(IExp::lit(0), IExp::var(n.clone()))],
            concl: Prop::eq(IExp::lit(0) + IExp::var(n.clone()), IExp::var(n)),
            residual_existential: false,
        };
        assert_eq!(goal.to_string(), "forall n:int. (0 <= n) ==> 0 + n = n");
    }

    #[test]
    fn split_goals_counts() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let p = Prop::le(IExp::lit(0), IExp::var(n.clone()));
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::And(vec![
                Constraint::Prop(p.clone().and(p.clone())),
                Constraint::Prop(p),
            ])),
        );
        assert_eq!(split_goals(&c).len(), 3, "conjunctions split into goals");
    }

    #[test]
    fn boolean_hypotheses_work() {
        let mut g = VarGen::new();
        let b = g.fresh("b");
        // ∀b:bool. (b ∧ ¬b) ⊃ false.
        let c = Constraint::Forall(
            b.clone(),
            Sort::Bool,
            Box::new(Constraint::Implies(
                Prop::BVar(b.clone()).and(Prop::Not(Box::new(Prop::BVar(b)))),
                Box::new(Constraint::Prop(Prop::False)),
            )),
        );
        let outcome = solver().prove(&c, &mut g);
        assert!(outcome.all_proven(), "{:?}", outcome.results);
    }

    #[test]
    fn min_max_reasoning() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        // ∀a,b. min(a,b) ≤ max(a,b).
        let c = Constraint::Forall(
            a.clone(),
            Sort::Int,
            Box::new(Constraint::Forall(
                b.clone(),
                Sort::Int,
                Box::new(Constraint::Prop(Prop::le(
                    IExp::var(a.clone()).min(IExp::var(b.clone())),
                    IExp::var(a).max(IExp::var(b)),
                ))),
            )),
        );
        assert!(solver().prove(&c, &mut g).all_proven());
    }

    #[test]
    fn abs_nonnegative() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let c = Constraint::Forall(
            a.clone(),
            Sort::Int,
            Box::new(Constraint::Prop(Prop::le(IExp::lit(0), IExp::var(a).abs()))),
        );
        assert!(solver().prove(&c, &mut g).all_proven());
    }

    #[test]
    fn mod_bounds() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        // ∀a. 0 ≤ a mod 8 < 8.
        let m = IExp::var(a.clone()).modulo(IExp::lit(8));
        let c = Constraint::Forall(
            a,
            Sort::Int,
            Box::new(Constraint::Prop(
                Prop::le(IExp::lit(0), m.clone()).and(Prop::lt(m, IExp::lit(8))),
            )),
        );
        assert!(solver().prove(&c, &mut g).all_proven());
    }

    /// The gray-region goal from Pugh's paper is only provable with the
    /// Omega fallback: ∀x,y. ¬(27 ≤ 11x+13y ≤ 45 ∧ −10 ≤ 7x−9y ≤ 4).
    #[test]
    fn omega_fallback_proves_gray_region_goals() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let e1 = IExp::lit(11) * IExp::var(x.clone()) + IExp::lit(13) * IExp::var(y.clone());
        let e2 = IExp::lit(7) * IExp::var(x.clone()) - IExp::lit(9) * IExp::var(y.clone());
        let hyp = Prop::le(IExp::lit(27), e1.clone())
            .and(Prop::le(e1, IExp::lit(45)))
            .and(Prop::le(IExp::lit(-10), e2.clone()))
            .and(Prop::le(e2, IExp::lit(4)));
        let c = Constraint::Forall(
            x,
            Sort::Int,
            Box::new(Constraint::Forall(
                y,
                Sort::Int,
                Box::new(Constraint::Implies(hyp, Box::new(Constraint::Prop(Prop::False)))),
            )),
        );
        let plain = Solver::new(SolverOptions::default());
        assert!(!plain.prove(&c, &mut g).all_proven(), "FM+tightening alone cannot prove this");
        let with_omega =
            Solver::new(SolverOptions { omega_fallback: true, ..SolverOptions::default() });
        assert!(with_omega.prove(&c, &mut g).all_proven(), "the Omega fallback decides it");
    }

    /// Re-proving a constraint (or an alpha-variant of it) hits the verdict
    /// cache and returns identical results.
    #[test]
    fn verdict_cache_hits_on_repeat_and_alpha_variants() {
        let mut g = VarGen::new();
        let mk = |g: &mut VarGen| {
            let n = g.fresh("n");
            Constraint::Forall(
                n.clone(),
                Sort::Int,
                Box::new(Constraint::Implies(
                    Prop::le(IExp::lit(0), IExp::var(n.clone())),
                    Box::new(Constraint::Prop(Prop::le(IExp::var(n), IExp::lit(5)))),
                )),
            )
        };
        let s = solver();
        let c1 = mk(&mut g);
        let first = s.prove(&c1, &mut g);
        assert_eq!(first.stats.cache_misses, 1);
        assert_eq!(first.stats.cache_hits, 0);
        // Same constraint again: pure hit.
        let second = s.prove(&c1, &mut g);
        assert_eq!(second.stats.cache_hits, 1);
        assert_eq!(second.stats.cache_misses, 0);
        // Alpha-variant (fresh variable ids): still a hit.
        let c2 = mk(&mut g);
        let third = s.prove(&c2, &mut g);
        assert_eq!(third.stats.cache_hits, 1);
        for outcome in [&second, &third] {
            assert_eq!(
                outcome.results.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
                first.results.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            );
        }
        // A clone shares the cache; a fresh solver does not.
        let cloned = s.clone();
        assert_eq!(cloned.prove(&c1, &mut g).stats.cache_hits, 1);
        assert_eq!(solver().prove(&c1, &mut g).stats.cache_misses, 1);
        // Cache off: the same solve records neither hits nor misses.
        let uncached = Solver::new(SolverOptions { cache: false, ..SolverOptions::default() });
        let cold = uncached.prove(&c1, &mut g);
        assert_eq!((cold.stats.cache_hits, cold.stats.cache_misses), (0, 0));
        assert!(uncached.cache().is_empty());
    }

    /// `entails` is hypothesis-sensitive: dropping the guard that makes the
    /// conclusion valid flips the verdict. (This is the contract the
    /// dead-branch lint relies on.)
    #[test]
    fn entailment_depends_on_hypotheses() {
        let mut g = VarGen::new();
        let i = g.fresh("i");
        let n = g.fresh("n");
        let ctx = [(i.clone(), Sort::Int), (n.clone(), Sort::Int)];
        let hyps = [
            Prop::le(IExp::lit(0), IExp::var(i.clone())),
            Prop::lt(IExp::var(i.clone()), IExp::var(n.clone())),
        ];
        let concl = Prop::lt(IExp::var(i.clone()), IExp::var(n.clone()) + IExp::lit(1));
        let s = solver();
        assert!(s.entails(&ctx, &hyps, &concl, &mut g).is_proven());
        // Without `i < n` the conclusion is falsifiable.
        assert!(!s.entails(&ctx, &hyps[..1], &concl, &mut g).is_proven());
    }

    /// `entails` can prove `⊢ false` from contradictory hypotheses — the
    /// unprovable-annotation lint's query.
    #[test]
    fn entailment_refutes_contradictory_hypotheses() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let ctx = [(n.clone(), Sort::Int)];
        let hyps = [
            Prop::lt(IExp::var(n.clone()), IExp::lit(0)),
            Prop::le(IExp::lit(0), IExp::var(n.clone())),
        ];
        let s = solver();
        assert!(s.entails(&ctx, &hyps, &Prop::False, &mut g).is_proven());
        assert!(!s.entails(&ctx, &hyps[..1], &Prop::False, &mut g).is_proven());
    }

    /// A valid chain goal that needs real elimination work:
    /// ∀v0..v5. (v0 ≤ v1 ∧ … ∧ v4 ≤ v5) ⊃ v0 ≤ v5.
    fn chain_goal(g: &mut VarGen) -> Constraint {
        let vars: Vec<Var> = (0..6).map(|i| g.fresh(&format!("v{i}"))).collect();
        let mut hyp = Prop::True;
        for w in vars.windows(2) {
            hyp = hyp.and(Prop::le(IExp::var(w[0].clone()), IExp::var(w[1].clone())));
        }
        let mut c = Constraint::Implies(
            hyp,
            Box::new(Constraint::Prop(Prop::le(
                IExp::var(vars[0].clone()),
                IExp::var(vars[5].clone()),
            ))),
        );
        for v in vars.into_iter().rev() {
            c = Constraint::Forall(v, Sort::Int, Box::new(c));
        }
        c
    }

    /// Verdicts move monotonically along `Unknown(FuelExhausted) → Proven`
    /// as fuel grows, and the unlimited budget reproduces today's verdict.
    #[test]
    fn fuel_ladder_is_monotone_to_proven() {
        let mut g = VarGen::new();
        let c = chain_goal(&mut g);
        let full = solver().prove(&c, &mut g);
        assert!(full.all_proven());
        let needed = full.stats.fm_combinations as u64;
        assert!(needed > 0, "the chain goal must need elimination work");
        let mut seen_exhausted = false;
        let mut seen_proven = false;
        for fuel in 0..=needed + 2 {
            let s = Solver::new(SolverOptions::default().with_fuel(Some(fuel)));
            let outcome = s.prove(&c, &mut g);
            match &outcome.results[0].1 {
                Verdict::Unknown(UnknownReason::FuelExhausted) => {
                    assert!(!seen_proven, "verdicts never regress as fuel grows");
                    seen_exhausted = true;
                }
                Verdict::Proven => seen_proven = true,
                other => panic!("unexpected verdict at fuel {fuel}: {other:?}"),
            }
        }
        assert!(seen_exhausted && seen_proven);
    }

    /// A falsifiable goal that needs combinations first becomes
    /// `Unknown(FuelExhausted)`, then `Refuted`, never `Proven`.
    #[test]
    fn fuel_ladder_is_monotone_to_refuted() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        // ∀a,b. (0 ≤ a ∧ a ≤ b ∧ b ≤ a+1) ⊃ b ≤ 3 — falsifiable
        // (a = b = 4), and every variable of the negation has both upper
        // and lower bounds, so refutation must pay for combinations.
        let hyp = Prop::le(IExp::lit(0), IExp::var(a.clone()))
            .and(Prop::le(IExp::var(a.clone()), IExp::var(b.clone())))
            .and(Prop::le(IExp::var(b.clone()), IExp::var(a.clone()) + IExp::lit(1)));
        let c = Constraint::Forall(
            a,
            Sort::Int,
            Box::new(Constraint::Forall(
                b.clone(),
                Sort::Int,
                Box::new(Constraint::Implies(
                    hyp,
                    Box::new(Constraint::Prop(Prop::le(IExp::var(b), IExp::lit(3)))),
                )),
            )),
        );
        let dry = Solver::new(SolverOptions::default().with_fuel(Some(0)));
        assert_eq!(
            dry.prove(&c, &mut g).results[0].1,
            Verdict::Unknown(UnknownReason::FuelExhausted)
        );
        let full = solver().prove(&c, &mut g);
        assert_eq!(full.results[0].1, Verdict::Refuted);
        assert_eq!(full.stats.refuted, 1);
    }

    /// Solvers with different fuel budgets can share one cache without
    /// observing each other's truncated verdicts.
    #[test]
    fn budget_classes_partition_a_shared_cache() {
        let mut g = VarGen::new();
        let c = chain_goal(&mut g);
        let dry = Solver::new(SolverOptions::default().with_fuel(Some(0)));
        let full = dry.with_options(SolverOptions::default());
        assert_eq!(
            dry.prove(&c, &mut g).results[0].1,
            Verdict::Unknown(UnknownReason::FuelExhausted)
        );
        assert!(full.prove(&c, &mut g).all_proven(), "no stale truncated verdict");
        assert_eq!(dry.cache().len(), 2, "one entry per budget class");
        // Both classes hit on re-query.
        assert_eq!(
            dry.prove(&c, &mut g).results[0].1,
            Verdict::Unknown(UnknownReason::FuelExhausted)
        );
        assert!(full.prove(&c, &mut g).all_proven());
    }

    /// An already-passed deadline turns work-requiring goals Unknown, and
    /// deadline verdicts never enter the cache.
    #[test]
    fn expired_deadline_is_unknown_and_uncached() {
        let mut g = VarGen::new();
        let c = chain_goal(&mut g);
        let s = Solver::new(SolverOptions::default().with_deadline(Some(Duration::ZERO)));
        let outcome = s.prove(&c, &mut g);
        assert_eq!(outcome.results[0].1, Verdict::Unknown(UnknownReason::Deadline));
        assert!(s.cache().is_empty(), "deadline verdicts are not cached");
        // A generous deadline changes nothing relative to no deadline.
        let lax =
            Solver::new(SolverOptions::default().with_deadline(Some(Duration::from_secs(3600))));
        assert!(lax.prove(&c, &mut g).all_proven());
    }

    /// Trace mode returns one trace per goal, ending in a verdict event
    /// that matches the returned verdict, and never changes verdicts.
    #[test]
    fn trace_mode_aligns_with_results_and_verdicts() {
        let mut g = VarGen::new();
        let c = chain_goal(&mut g);
        let plain = solver().prove(&c, &mut g);
        assert!(plain.traces.is_empty(), "tracing is off by default");
        let traced = Solver::new(SolverOptions::default().with_trace(true));
        let outcome = traced.prove(&c, &mut g);
        assert_eq!(outcome.traces.len(), outcome.results.len());
        for ((_, verdict), tr) in outcome.results.iter().zip(&outcome.traces) {
            assert_eq!(tr.verdict(), Some(verdict.to_string().as_str()));
        }
        assert_eq!(
            plain.results.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            outcome.results.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
        );
        // The chain goal needs real elimination: its trace must show it.
        let tr = &outcome.traces[0];
        assert!(tr.events.iter().any(|e| matches!(e, TraceEvent::Eliminate { .. })));
        assert!(tr.events.iter().any(|e| matches!(e, TraceEvent::Contradiction { .. })));
        assert_eq!(tr.fuel_spent, plain.stats.fm_combinations as u64);
    }

    /// The deterministic (non-config-dependent) trace events are
    /// byte-identical across cache on/off — cache hits are re-decided in
    /// trace mode, so every configuration sees the full elimination story.
    #[test]
    fn trace_events_deterministic_across_cache_configs() {
        let mut g = VarGen::new();
        let c = chain_goal(&mut g);
        let stable = |opts: SolverOptions| {
            let s = Solver::new(opts.with_trace(true));
            // Prove twice: the second run hits the warm cache.
            s.prove(&c, &mut g.clone());
            let outcome = s.prove(&c, &mut g.clone());
            outcome
                .traces
                .iter()
                .flat_map(|t| t.events.clone())
                .filter(|e| !e.is_config_dependent())
                .collect::<Vec<_>>()
        };
        let cached = stable(SolverOptions::default());
        let uncached = stable(SolverOptions::default().with_cache(false));
        assert_eq!(cached, uncached);
        assert!(!cached.is_empty());
    }

    /// A Refuted goal's extracted witness really falsifies the original
    /// constraint: every hypothesis evaluates true and the conclusion
    /// false under the recorded assignment.
    #[test]
    fn refuted_witness_falsifies_the_goal() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        // ∀n. 0 ≤ n ⊃ n ≤ 5 — false, e.g. at n = 6.
        let c = Constraint::Forall(
            n.clone(),
            Sort::Int,
            Box::new(Constraint::Implies(
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
                Box::new(Constraint::Prop(Prop::le(IExp::var(n), IExp::lit(5)))),
            )),
        );
        let s = Solver::new(SolverOptions::default().with_trace(true));
        let outcome = s.prove(&c, &mut g);
        assert_eq!(outcome.results[0].1, Verdict::Refuted);
        let witness = outcome.traces[0].witness().expect("refuted goal records a witness");
        let goal = &outcome.results[0].0;
        let env: std::collections::HashMap<Var, i64> = goal
            .ctx
            .iter()
            .filter_map(|(v, _)| {
                witness
                    .iter()
                    .find(|(name, _)| *name == v.to_string())
                    .map(|(_, value)| (v.clone(), *value))
            })
            .collect();
        assert_eq!(env.len(), witness.len(), "every witness variable maps to a context var");
        let ienv = |v: &Var| env.get(v).copied();
        let benv = |_: &Var| None;
        for h in &goal.hyps {
            assert_eq!(h.eval(&ienv, &benv), Some(true), "hypothesis {h} holds at the witness");
        }
        assert_eq!(
            goal.concl.eval(&ienv, &benv),
            Some(false),
            "conclusion {} is violated at the witness",
            goal.concl
        );
    }

    /// The paper's modular-arithmetic example: tightening is required to
    /// verify the optimised byte-copy function. Representative instance:
    /// ∀n. (4 | n is expressed as n = 4k) … here we check that
    /// `2x = 1` is refuted only with tightening.
    #[test]
    fn tightening_ablation_visible() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let concl = Prop::cmp(Cmp::Ne, IExp::lit(2) * IExp::var(x.clone()), IExp::lit(1));
        let c = Constraint::Forall(x, Sort::Int, Box::new(Constraint::Prop(concl)));
        let with = Solver::new(SolverOptions::default());
        assert!(with.prove(&c, &mut g).all_proven());
        let without = Solver::new(SolverOptions {
            fourier: FourierOptions { tighten: false, ..FourierOptions::default() },
            ..SolverOptions::default()
        });
        assert!(!without.prove(&c, &mut g).all_proven());
    }
}
