//! Lowering of non-linear index operators (`div`, `mod`, `min`, `max`,
//! `abs`, `sgn`) into linear atoms over fresh variables.
//!
//! Each occurrence is replaced by a fresh variable constrained by its
//! defining axioms, e.g. for `q = a div k` with a *positive constant*
//! divisor `k` (SML flooring division):
//!
//! ```text
//! a = k·q + r    0 ≤ r ≤ k−1
//! ```
//!
//! Because the defining constraints determine the fresh variables as total
//! functions of their arguments, conjoining them existentially preserves
//! satisfiability of the formula being refuted, so refutation remains sound.
//!
//! `div`/`mod` by a non-constant or non-positive divisor is reported as
//! [`NonLinear`]; the paper likewise restricts constraints to the linear
//! fragment (§3.2). This is enough for the paper's programs, whose divisors
//! are literals (the `div 2` of binary search, the word size of `bcopy`).

use dml_index::{IExp, Linear, NonLinear, Prop, Var, VarGen};
use std::collections::HashMap;

/// Lowering context: a fresh-variable supply plus accumulated side
/// constraints and a memo table so repeated subterms share variables.
#[derive(Debug)]
pub struct Lowering<'g> {
    gen: &'g mut VarGen,
    /// Defining side constraints for the fresh variables (pure props; may
    /// contain disjunctions for `min`/`max`/`abs`/`sgn`).
    sides: Vec<Prop>,
    memo: HashMap<IExp, Linear>,
    /// Fresh variables introduced (for diagnostics/statistics).
    introduced: Vec<Var>,
}

impl<'g> Lowering<'g> {
    /// Creates a lowering context over a variable supply.
    pub fn new(gen: &'g mut VarGen) -> Self {
        Lowering { gen, sides: Vec::new(), memo: HashMap::new(), introduced: Vec::new() }
    }

    /// The accumulated side constraints.
    pub fn side_constraints(&self) -> &[Prop] {
        &self.sides
    }

    /// Consumes the context, returning the side constraints.
    pub fn into_sides(self) -> Vec<Prop> {
        self.sides
    }

    /// Number of fresh variables introduced.
    pub fn fresh_count(&self) -> usize {
        self.introduced.len()
    }

    /// Number of memoized composite subterms (leaves are never memoized).
    pub fn memo_count(&self) -> usize {
        self.memo.len()
    }

    fn fresh(&mut self, tag: &str) -> Var {
        let v = self.gen.fresh_tagged(tag);
        self.introduced.push(v.clone());
        v
    }

    /// Lowers an index expression to a linear form, introducing fresh
    /// variables and side constraints for non-linear operators.
    ///
    /// # Errors
    ///
    /// Returns [`NonLinear`] for products of non-constants and for
    /// `div`/`mod` with a divisor that is not a positive constant.
    pub fn lower(&mut self, e: &IExp) -> Result<Linear, NonLinear> {
        // Leaves are cheaper to rebuild than to hash: memoizing them would
        // clone every `Var`/`Lit` key into the table on the hot path for no
        // sharing benefit (they introduce no fresh variables).
        match e {
            IExp::Var(v) => return Ok(Linear::var(v.clone())),
            IExp::Lit(n) => return Ok(Linear::constant(*n)),
            _ => {}
        }
        if let Some(l) = self.memo.get(e) {
            return Ok(l.clone());
        }
        let result = match e {
            IExp::Var(_) | IExp::Lit(_) => unreachable!("leaves handled above"),
            IExp::Add(a, b) => self.lower(a)?.add(&self.lower(b)?),
            IExp::Sub(a, b) => self.lower(a)?.sub(&self.lower(b)?),
            IExp::Mul(a, b) => {
                let la = self.lower(a)?;
                let lb = self.lower(b)?;
                if la.is_constant() {
                    lb.scale(la.constant_term())
                } else if lb.is_constant() {
                    la.scale(lb.constant_term())
                } else {
                    return Err(NonLinear { expr: e.to_string() });
                }
            }
            IExp::Div(a, b) => self.lower_divmod(e, a, b, true)?,
            IExp::Mod(a, b) => self.lower_divmod(e, a, b, false)?,
            IExp::Min(a, b) => {
                let la = self.lower(a)?;
                let lb = self.lower(b)?;
                let m = Linear::var(self.fresh("min"));
                // m ≤ a ∧ m ≤ b ∧ (m = a ∨ m = b)
                self.sides.push(Prop::le(m.to_iexp(), la.to_iexp()));
                self.sides.push(Prop::le(m.to_iexp(), lb.to_iexp()));
                self.sides.push(
                    Prop::eq(m.to_iexp(), la.to_iexp()).or(Prop::eq(m.to_iexp(), lb.to_iexp())),
                );
                m
            }
            IExp::Max(a, b) => {
                let la = self.lower(a)?;
                let lb = self.lower(b)?;
                let m = Linear::var(self.fresh("max"));
                self.sides.push(Prop::le(la.to_iexp(), m.to_iexp()));
                self.sides.push(Prop::le(lb.to_iexp(), m.to_iexp()));
                self.sides.push(
                    Prop::eq(m.to_iexp(), la.to_iexp()).or(Prop::eq(m.to_iexp(), lb.to_iexp())),
                );
                m
            }
            IExp::Abs(a) => {
                let la = self.lower(a)?;
                let v = Linear::var(self.fresh("abs"));
                // v ≥ a ∧ v ≥ −a ∧ (v = a ∨ v = −a)
                self.sides.push(Prop::le(la.to_iexp(), v.to_iexp()));
                self.sides.push(Prop::le(la.scale(-1).to_iexp(), v.to_iexp()));
                self.sides.push(
                    Prop::eq(v.to_iexp(), la.to_iexp())
                        .or(Prop::eq(v.to_iexp(), la.scale(-1).to_iexp())),
                );
                v
            }
            IExp::Sgn(a) => {
                let la = self.lower(a)?;
                let s = Linear::var(self.fresh("sgn"));
                // (a ≥ 1 ∧ s = 1) ∨ (a = 0 ∧ s = 0) ∨ (a ≤ −1 ∧ s = −1)
                let pos =
                    Prop::le(IExp::lit(1), la.to_iexp()).and(Prop::eq(s.to_iexp(), IExp::lit(1)));
                let zero =
                    Prop::eq(la.to_iexp(), IExp::lit(0)).and(Prop::eq(s.to_iexp(), IExp::lit(0)));
                let neg =
                    Prop::le(la.to_iexp(), IExp::lit(-1)).and(Prop::eq(s.to_iexp(), IExp::lit(-1)));
                self.sides.push(pos.or(zero).or(neg));
                s
            }
        };
        self.memo.insert(e.clone(), result.clone());
        Ok(result)
    }

    /// Lowers `a div k` / `a mod k` for a positive constant `k`, returning
    /// the quotient or remainder form.
    fn lower_divmod(
        &mut self,
        whole: &IExp,
        a: &IExp,
        b: &IExp,
        want_quotient: bool,
    ) -> Result<Linear, NonLinear> {
        let la = self.lower(a)?;
        let lb = self.lower(b)?;
        if !lb.is_constant() || lb.constant_term() <= 0 {
            return Err(NonLinear { expr: whole.to_string() });
        }
        let k = lb.constant_term();
        let q = Linear::var(self.fresh("q"));
        let r = Linear::var(self.fresh("r"));
        // a = k·q + r, 0 ≤ r ≤ k−1 (flooring division, positive divisor).
        self.sides.push(Prop::eq(la.to_iexp(), q.scale(k).add(&r).to_iexp()));
        self.sides.push(Prop::le(IExp::lit(0), r.to_iexp()));
        self.sides.push(Prop::le(r.to_iexp(), IExp::lit(k - 1)));
        Ok(if want_quotient { q } else { r })
    }

    /// Lowers every atom of a proposition, returning the rewritten
    /// proposition (same shape, linear atoms). Side constraints accumulate
    /// in the context.
    ///
    /// # Errors
    ///
    /// Returns [`NonLinear`] if any atom is outside the linear fragment.
    pub fn lower_prop(&mut self, p: &Prop) -> Result<Prop, NonLinear> {
        Ok(match p {
            Prop::True | Prop::False | Prop::BVar(_) => p.clone(),
            Prop::Cmp(op, a, b) => {
                let la = self.lower(a)?;
                let lb = self.lower(b)?;
                Prop::Cmp(*op, la.to_iexp(), lb.to_iexp())
            }
            Prop::Not(q) => Prop::Not(Box::new(self.lower_prop(q)?)),
            Prop::And(a, b) => {
                Prop::And(Box::new(self.lower_prop(a)?), Box::new(self.lower_prop(b)?))
            }
            Prop::Or(a, b) => {
                Prop::Or(Box::new(self.lower_prop(a)?), Box::new(self.lower_prop(b)?))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::VarGen;

    #[test]
    fn lower_linear_is_identity() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        let e = IExp::var(a.clone()) * IExp::lit(3) + IExp::lit(1);
        let l = lo.lower(&e).unwrap();
        assert_eq!(l.coeff(&a), 3);
        assert_eq!(l.constant_term(), 1);
        assert!(lo.side_constraints().is_empty());
    }

    #[test]
    fn lower_div_introduces_quotient() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        let e = IExp::var(a).div(IExp::lit(2));
        let l = lo.lower(&e).unwrap();
        assert_eq!(l.num_vars(), 1, "quotient variable");
        assert_eq!(lo.side_constraints().len(), 3, "a = 2q + r, 0 <= r, r <= 1");
        assert_eq!(lo.fresh_count(), 2);
    }

    #[test]
    fn lower_div_rejects_nonconstant_divisor() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let mut lo = Lowering::new(&mut g);
        assert!(lo.lower(&IExp::var(a).div(IExp::var(b))).is_err());
    }

    #[test]
    fn lower_div_rejects_nonpositive_divisor() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        assert!(lo.lower(&IExp::var(a.clone()).div(IExp::lit(0))).is_err());
        assert!(lo.lower(&IExp::var(a).div(IExp::lit(-2))).is_err());
    }

    #[test]
    fn lower_memoizes_repeated_subterms() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        let d = IExp::var(a).div(IExp::lit(2));
        let e = d.clone() + d.clone();
        let l = lo.lower(&e).unwrap();
        assert_eq!(lo.fresh_count(), 2, "q and r shared between occurrences");
        assert_eq!(l.terms().map(|(_, c)| c).collect::<Vec<_>>(), vec![2]);
        // Exactly the composite subterms are memoized — the shared `div`
        // and the enclosing `+`; the `a`/`2` leaves stay out of the table.
        assert_eq!(lo.memo_count(), 2);
    }

    #[test]
    fn lower_min_has_disjunctive_side() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let mut lo = Lowering::new(&mut g);
        lo.lower(&IExp::var(a).min(IExp::var(b))).unwrap();
        assert!(lo.side_constraints().iter().any(|p| matches!(p, Prop::Or(_, _))));
    }

    #[test]
    fn lower_prop_rewrites_atoms() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        let p = Prop::lt(IExp::var(a).div(IExp::lit(2)), IExp::lit(5));
        let q = lo.lower_prop(&p).unwrap();
        match q {
            Prop::Cmp(_, lhs, _) => assert!(matches!(lhs, IExp::Var(_))),
            other => panic!("expected Cmp, got {other:?}"),
        }
        assert_eq!(lo.side_constraints().len(), 3);
    }

    #[test]
    fn lower_mul_nonconstant_rejected() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let b = g.fresh("b");
        let mut lo = Lowering::new(&mut g);
        assert!(lo.lower(&(IExp::var(a) * IExp::var(b))).is_err());
    }

    #[test]
    fn lower_abs_and_sgn() {
        let mut g = VarGen::new();
        let a = g.fresh("a");
        let mut lo = Lowering::new(&mut g);
        lo.lower(&IExp::var(a.clone()).abs()).unwrap();
        lo.lower(&IExp::var(a).sgn()).unwrap();
        assert_eq!(lo.fresh_count(), 2);
        assert!(!lo.side_constraints().is_empty());
    }
}
