//! Shared verdict cache keyed on canonical goals.
//!
//! A [`GoalCache`] memoizes [`Verdict`]s across every obligation of a
//! compile and every `entails` query the lint walker issues. It is sharded
//! (16 mutex-guarded maps, shard picked by key hash) so parallel solve
//! workers rarely contend, and hit/miss counters are plain atomics so
//! reading statistics never takes a lock.
//!
//! Hit/miss counts are best-effort under concurrency: two workers can race
//! on the same cold key and both record a miss. Verdicts themselves are
//! deterministic per canonical goal, so double-computation is only wasted
//! work, never an inconsistency.

use crate::canon::CanonGoal;
use dml_index::Verdict;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A sharded, thread-safe memo table from canonical goal to verdict.
#[derive(Debug)]
pub struct GoalCache {
    shards: [Mutex<HashMap<CanonGoal, Verdict>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for GoalCache {
    fn default() -> Self {
        GoalCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl GoalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        GoalCache::default()
    }

    fn shard(&self, key: &CanonGoal) -> &Mutex<HashMap<CanonGoal, Verdict>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a verdict, recording a hit or miss.
    pub fn get(&self, key: &CanonGoal) -> Option<Verdict> {
        let found = self.shard(key).lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a verdict. Last writer wins on a racy double-compute; both
    /// writers derived the verdict from the same canonical goal.
    pub fn insert(&self, key: CanonGoal, result: Verdict) {
        self.shard(&key).lock().unwrap().insert(key, result);
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached goals.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Entry count per shard, in shard order — shows how evenly the key
    /// hash spreads goals (surfaced in `dmlc check --trace-out` metadata).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().unwrap().len()).collect()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::goal::Goal;
    use dml_index::{IExp, Prop, Sort, VarGen};

    fn key(seed_name: &str) -> CanonGoal {
        let mut g = VarGen::new();
        let a = g.fresh(seed_name);
        canonicalize(&Goal {
            ctx: vec![(a.clone(), Sort::Int)],
            hyps: vec![Prop::le(IExp::lit(0), IExp::var(a.clone()))],
            concl: Prop::le(IExp::lit(-1), IExp::var(a)),
            residual_existential: false,
        })
    }

    #[test]
    fn miss_then_hit_with_counters() {
        let cache = GoalCache::new();
        let k = key("a");
        assert!(cache.get(&k).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(k.clone(), Verdict::Proven);
        assert_eq!(cache.get(&k), Some(Verdict::Proven));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = GoalCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let k = key("x");
                        if cache.get(&k).is_none() {
                            cache.insert(k, Verdict::Proven);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1, "alpha-equal keys collapse to one entry");
        assert_eq!(cache.hits() + cache.misses(), 200);
        assert!(cache.hits() > 0);
    }
}
