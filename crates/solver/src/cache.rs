//! Shared verdict cache keyed on canonical goals.
//!
//! A [`GoalCache`] memoizes [`Verdict`]s across every obligation of a
//! compile and every `entails` query the lint walker issues. It is sharded
//! (16 mutex-guarded maps, shard picked by key hash) so parallel solve
//! workers rarely contend, and hit/miss counters are plain atomics so
//! reading statistics never takes a lock.
//!
//! Hit/miss counts are best-effort under concurrency: two workers can race
//! on the same cold key and both record a miss. Verdicts themselves are
//! deterministic per canonical goal, so double-computation is only wasted
//! work, never an inconsistency.
//!
//! An optional **disk tier** ([`GoalCache::attach_disk`]) backs the memory
//! shards with a content-addressed store (see [`crate::disk`]): a memory
//! miss probes the loaded file by stable goal hash, promotes any hit into
//! the shard, and every insert is also queued for the next
//! [`GoalCache::flush_disk`]. This is what lets verdicts survive process
//! restarts and be shared across files and machines.

use crate::canon::CanonGoal;
use crate::disk::{stable_goal_hash, DiskEntry, DiskStore};
use dml_index::Verdict;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// A sharded, thread-safe memo table from canonical goal to verdict, with
/// an optional persistent disk tier.
#[derive(Debug)]
pub struct GoalCache {
    shards: [Mutex<HashMap<CanonGoal, Verdict>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk: Mutex<Option<DiskStore>>,
}

impl Default for GoalCache {
    fn default() -> Self {
        GoalCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk: Mutex::new(None),
        }
    }
}

impl GoalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        GoalCache::default()
    }

    fn shard(&self, key: &CanonGoal) -> &Mutex<HashMap<CanonGoal, Verdict>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up a verdict, recording a hit or miss. On a memory miss the
    /// disk tier (when attached) is probed by stable goal hash; a disk hit
    /// is promoted into the memory shard and counted as a hit (and
    /// separately in [`GoalCache::disk_hits`]).
    pub fn get(&self, key: &CanonGoal) -> Option<Verdict> {
        if let Some(found) = self.shard(key).lock().unwrap().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(found);
        }
        if let Some(store) = self.disk.lock().unwrap().as_ref() {
            if let Some(entry) = store.get(stable_goal_hash(key)) {
                let verdict = entry.verdict.clone();
                self.shard(key).lock().unwrap().insert(key.clone(), verdict.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Some(verdict);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores a verdict. Last writer wins on a racy double-compute; both
    /// writers derived the verdict from the same canonical goal. With a
    /// disk tier attached the entry is also queued for the next
    /// [`GoalCache::flush_disk`].
    pub fn insert(&self, key: CanonGoal, result: Verdict) {
        if let Some(store) = self.disk.lock().unwrap().as_mut() {
            store.insert(
                stable_goal_hash(&key),
                DiskEntry { budget: key.budget, verdict: result.clone() },
            );
        }
        self.shard(&key).lock().unwrap().insert(key, result);
    }

    /// Attaches an on-disk store at `path` as the cache's second tier,
    /// returning how many entries the file contributed. A missing, stale,
    /// or corrupted file attaches an empty store (persistence never
    /// fails a compile). Replaces any previously attached store without
    /// flushing it.
    pub fn attach_disk(&self, path: impl Into<PathBuf>) -> usize {
        let store = DiskStore::open(path);
        let loaded = store.loaded_count();
        *self.disk.lock().unwrap() = Some(store);
        loaded
    }

    /// Writes queued verdicts back to the attached store (no-op without
    /// one, or when nothing new was inserted). Returns the total entries
    /// now on disk when a write happened.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying [`DiskStore::flush`].
    pub fn flush_disk(&self) -> std::io::Result<Option<usize>> {
        match self.disk.lock().unwrap().as_mut() {
            Some(store) => store.flush(),
            None => Ok(None),
        }
    }

    /// The attached disk store's path, if any.
    pub fn disk_path(&self) -> Option<PathBuf> {
        self.disk.lock().unwrap().as_ref().map(|s| s.path().to_path_buf())
    }

    /// Entries the attached disk store held when it was opened (0 without
    /// a store).
    pub fn disk_loaded(&self) -> usize {
        self.disk.lock().unwrap().as_ref().map_or(0, |s| s.loaded_count())
    }

    /// Lookups answered from the disk tier so far.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// `true` when a disk store is attached (used by reporting to decide
    /// whether disk counters are meaningful).
    pub fn has_disk(&self) -> bool {
        self.disk.lock().unwrap().is_some()
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached goals.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Entry count per shard, in shard order — shows how evenly the key
    /// hash spreads goals (surfaced in `dmlc check --trace-out` metadata).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().unwrap().len()).collect()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonicalize;
    use crate::goal::Goal;
    use dml_index::{IExp, Prop, Sort, VarGen};

    fn key(seed_name: &str) -> CanonGoal {
        let mut g = VarGen::new();
        let a = g.fresh(seed_name);
        canonicalize(&Goal {
            ctx: vec![(a.clone(), Sort::Int)],
            hyps: vec![Prop::le(IExp::lit(0), IExp::var(a.clone()))],
            concl: Prop::le(IExp::lit(-1), IExp::var(a)),
            residual_existential: false,
        })
    }

    #[test]
    fn miss_then_hit_with_counters() {
        let cache = GoalCache::new();
        let k = key("a");
        assert!(cache.get(&k).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.insert(k.clone(), Verdict::Proven);
        assert_eq!(cache.get(&k), Some(Verdict::Proven));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn disk_tier_persists_and_promotes_across_cache_instances() {
        let dir = std::env::temp_dir().join(format!("dml-cache-tier-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verdicts.dmlcache");
        let _ = std::fs::remove_file(&path);

        let writer = GoalCache::new();
        assert_eq!(writer.attach_disk(&path), 0, "no file yet");
        writer.insert(key("a"), Verdict::Proven);
        assert!(writer.flush_disk().unwrap().is_some());

        // A fresh cache (cold memory shards) attached to the same file
        // answers an alpha-renamed variant from disk and promotes it.
        let reader = GoalCache::new();
        assert_eq!(reader.attach_disk(&path), 1);
        assert_eq!(reader.get(&key("renamed")), Some(Verdict::Proven));
        assert_eq!(reader.disk_hits(), 1);
        assert_eq!((reader.hits(), reader.misses()), (1, 0));
        // Promoted: the second lookup is a plain memory hit.
        assert_eq!(reader.get(&key("a")), Some(Verdict::Proven));
        assert_eq!(reader.disk_hits(), 1);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let cache = GoalCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let k = key("x");
                        if cache.get(&k).is_none() {
                            cache.insert(k, Verdict::Proven);
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1, "alpha-equal keys collapse to one entry");
        assert_eq!(cache.hits() + cache.misses(), 200);
        assert!(cache.hits() > 0);
    }
}
