//! Systems of linear integer inequalities and Fourier–Motzkin refutation
//! with the paper's integer tightening step.
//!
//! An [`Ineq`] represents `lin ≤ 0` where `lin` is a [`Linear`] form.
//! [`System::refute`] eliminates variables one at a time; if a contradictory
//! constant inequality (`c ≤ 0` with `c > 0`) appears, the system has **no
//! integer solution** and refutation succeeds.
//!
//! Tightening (§3.2): an inequality `Σ aᵢxᵢ ≤ a` is replaced by
//! `Σ (aᵢ/g)xᵢ ≤ ⌊a/g⌋` where `g = gcd(aᵢ)`. This preserves integer
//! solutions exactly while shrinking the rational relaxation, which is what
//! lets the solver discharge the `div`-heavy constraints of `bcopy` and
//! `bsearch`.

use dml_obs::TraceEvent;

use dml_index::{Linear, Var};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// A single inequality `lin ≤ 0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ineq {
    lin: Linear,
}

impl Ineq {
    /// Builds `lin ≤ 0`.
    pub fn le_zero(lin: Linear) -> Ineq {
        Ineq { lin }
    }

    /// Builds `a ≤ b` as `a − b ≤ 0`.
    pub fn le(a: Linear, b: Linear) -> Ineq {
        Ineq { lin: a.sub(&b) }
    }

    /// Builds `a < b` as `a − b + 1 ≤ 0` (exact over the integers).
    pub fn lt(a: Linear, b: Linear) -> Ineq {
        Ineq { lin: a.sub(&b).add(&Linear::constant(1)) }
    }

    /// The underlying linear form (`self` means `lin ≤ 0`).
    pub fn linear(&self) -> &Linear {
        &self.lin
    }

    /// `true` if the inequality is variable-free and violated (`c ≤ 0` with
    /// `c > 0`).
    pub fn is_contradiction(&self) -> bool {
        self.lin.is_constant() && self.lin.constant_term() > 0
    }

    /// `true` if the inequality is variable-free and trivially satisfied.
    pub fn is_trivial(&self) -> bool {
        self.lin.is_constant() && self.lin.constant_term() <= 0
    }

    /// Integer tightening: divide variable coefficients by their GCD `g` and
    /// replace the constant by `⌈c/g⌉` (for the `lin ≤ 0` orientation).
    ///
    /// Writing the inequality as `Σ aᵢxᵢ ≤ -c`, the tightened form is
    /// `Σ (aᵢ/g) xᵢ ≤ ⌊-c/g⌋`, which in `≤ 0` orientation has constant
    /// `-⌊-c/g⌋ = ⌈c/g⌉`.
    pub fn tighten(&self) -> Ineq {
        let g = self.lin.coeff_gcd();
        if g <= 1 {
            return self.clone();
        }
        let mut out = Linear::zero();
        for (v, c) in self.lin.terms() {
            out.add_term(v.clone(), c / g);
        }
        // ceil(c / g) for possibly negative c.
        let c = self.lin.constant_term();
        let ceil = if c >= 0 { (c + g - 1) / g } else { -((-c) / g) };
        out.add_constant(ceil);
        Ineq { lin: out }
    }

    /// Evaluates the inequality under an assignment.
    pub fn holds(&self, env: &dyn Fn(&Var) -> Option<i64>) -> Option<bool> {
        Some(self.lin.eval(env)? <= 0)
    }
}

impl fmt::Display for Ineq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= 0", self.lin)
    }
}

/// Result of a refutation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefuteResult {
    /// The system has no integer solution (a contradiction was derived).
    Refuted,
    /// Elimination completed without contradiction: the rational relaxation
    /// (after tightening) is satisfiable, so the system *may* have integer
    /// solutions. Fail-safe: the goal is not proven.
    PossiblySat,
    /// Structural resource limits (working-set size, `max_combinations`)
    /// hit; treated like [`RefuteResult::PossiblySat`].
    Overflow,
    /// The caller-supplied fuel budget ran out (see [`FuelMeter`]).
    FuelExhausted,
    /// The caller-supplied wall-clock deadline passed (see [`FuelMeter`]).
    DeadlineExceeded,
}

/// A per-goal resource budget threaded through refutation.
///
/// Fuel is counted in Fourier–Motzkin *pair combinations* — the unit of
/// work the elimination loop performs — so a fuel verdict is deterministic
/// across worker counts and cache configurations. The wall-clock deadline
/// is checked on the first combination and every 64 thereafter, keeping
/// `Instant::now` off the hot path; deadline verdicts are inherently
/// machine-dependent and are never cached.
#[derive(Debug)]
pub struct FuelMeter {
    fuel: Option<u64>,
    deadline: Option<Instant>,
    ticks: u32,
    spent: u64,
}

impl FuelMeter {
    /// A meter that never runs out.
    pub fn unlimited() -> FuelMeter {
        FuelMeter { fuel: None, deadline: None, ticks: 0, spent: 0 }
    }

    /// A meter with `fuel` combinations and a deadline `budget` from now.
    /// `None` leaves the corresponding dimension unbounded.
    pub fn new(fuel: Option<u64>, budget: Option<Duration>) -> FuelMeter {
        FuelMeter { fuel, deadline: budget.map(|d| Instant::now() + d), ticks: 0, spent: 0 }
    }

    /// Combinations charged so far (counted even on an unlimited meter).
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Fuel left, or `None` on an unlimited meter.
    pub fn remaining(&self) -> Option<u64> {
        self.fuel
    }

    /// Charges one combination. Returns the exhausted dimension, if any
    /// (fuel is checked first, so fuel verdicts stay deterministic even
    /// when a deadline is also set).
    fn charge(&mut self) -> Option<RefuteResult> {
        if let Some(fuel) = &mut self.fuel {
            if *fuel == 0 {
                return Some(RefuteResult::FuelExhausted);
            }
            *fuel -= 1;
        }
        if let Some(deadline) = self.deadline {
            // Checked on the first combination and every 64 thereafter,
            // keeping `Instant::now` off the hot path.
            self.ticks = self.ticks.wrapping_add(1);
            if self.ticks % 64 == 1 && Instant::now() >= deadline {
                return Some(RefuteResult::DeadlineExceeded);
            }
        }
        self.spent += 1;
        None
    }
}

/// Tuning knobs for Fourier–Motzkin elimination.
#[derive(Debug, Clone, Copy)]
pub struct FourierOptions {
    /// Apply integer tightening after every combination (the paper's
    /// extension of Fourier's method). Disable for the ablation bench.
    pub tighten: bool,
    /// Abort when the working set exceeds this many inequalities.
    pub max_ineqs: usize,
    /// Abort after this many pair combinations.
    pub max_combinations: usize,
}

impl Default for FourierOptions {
    fn default() -> Self {
        FourierOptions { tighten: true, max_ineqs: 50_000, max_combinations: 2_000_000 }
    }
}

/// Trace sink handed to [`System::refute_traced`]: a per-goal event buffer
/// plus the stable variable-name map used in emitted events.
///
/// The map translates worker-generated lowering variables (whose raw
/// display names embed worker-dependent ids) into positional names
/// (`$1`, `$2`, …) assigned in id order within the goal, so emitted events
/// are byte-identical across worker counts.
#[derive(Debug)]
pub struct RefuteTrace<'a> {
    /// Buffer receiving this system's events, in emission order.
    pub events: &'a mut Vec<TraceEvent>,
    /// Stable display name for every variable the system mentions.
    pub names: &'a HashMap<Var, String>,
}

impl RefuteTrace<'_> {
    fn name(&self, v: &Var) -> String {
        self.names.get(v).cloned().unwrap_or_else(|| v.to_string())
    }
}

/// A conjunction of inequalities `lin ≤ 0`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct System {
    ineqs: Vec<Ineq>,
}

impl System {
    /// The empty (trivially satisfiable) system.
    pub fn new() -> System {
        System::default()
    }

    /// Adds an inequality.
    pub fn push(&mut self, ineq: Ineq) {
        self.ineqs.push(ineq);
    }

    /// Adds the equation `a = b` as two inequalities.
    pub fn push_eq(&mut self, a: Linear, b: Linear) {
        self.ineqs.push(Ineq::le(a.clone(), b.clone()));
        self.ineqs.push(Ineq::le(b, a));
    }

    /// The inequalities of the system.
    pub fn ineqs(&self) -> &[Ineq] {
        &self.ineqs
    }

    /// Number of inequalities.
    pub fn len(&self) -> usize {
        self.ineqs.len()
    }

    /// `true` if the system has no inequalities.
    pub fn is_empty(&self) -> bool {
        self.ineqs.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for i in &self.ineqs {
            for v in i.linear().vars() {
                out.insert(v.clone());
            }
        }
        out
    }

    /// Checks whether an assignment satisfies every inequality.
    pub fn satisfied_by(&self, env: &dyn Fn(&Var) -> Option<i64>) -> Option<bool> {
        for i in &self.ineqs {
            if !i.holds(env)? {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Attempts to refute the system (prove it has no integer solution) by
    /// Fourier–Motzkin elimination with optional integer tightening.
    ///
    /// Returns the result together with the number of pair combinations
    /// performed (for solver statistics). Equivalent to
    /// [`System::refute_budgeted`] with an unlimited [`FuelMeter`].
    pub fn refute(&self, opts: &FourierOptions) -> (RefuteResult, usize) {
        self.refute_budgeted(opts, &mut FuelMeter::unlimited())
    }

    /// [`System::refute`] under a caller-supplied resource budget.
    ///
    /// The meter is charged once per pair combination *before* the
    /// combination is performed, so a meter with `fuel = 0` cannot do any
    /// elimination work (contradictions already present in the input are
    /// still detected — they cost nothing). The same meter can be shared
    /// across the disjunct systems of one goal to give the goal a single
    /// overall budget.
    pub fn refute_budgeted(
        &self,
        opts: &FourierOptions,
        meter: &mut FuelMeter,
    ) -> (RefuteResult, usize) {
        self.refute_traced(opts, meter, None)
    }

    /// [`System::refute_budgeted`] with an optional trace sink.
    ///
    /// When `trace` is supplied, every tightening pass, elimination round
    /// (with its combined-pair count), and derived contradiction is pushed
    /// onto the sink's event buffer, with variables named through the
    /// sink's stable name map. The traced and untraced paths perform the
    /// identical elimination — tracing only observes.
    pub fn refute_traced(
        &self,
        opts: &FourierOptions,
        meter: &mut FuelMeter,
        mut trace: Option<&mut RefuteTrace<'_>>,
    ) -> (RefuteResult, usize) {
        let mut work: Vec<Ineq> = Vec::with_capacity(self.ineqs.len());
        let mut input_tightened = 0u64;
        for i in &self.ineqs {
            let i = if opts.tighten {
                let t = i.tighten();
                if t != *i {
                    input_tightened += 1;
                }
                t
            } else {
                i.clone()
            };
            if i.is_contradiction() {
                if let Some(t) = trace.as_mut() {
                    if input_tightened > 0 {
                        t.events.push(TraceEvent::Tightened { count: input_tightened });
                    }
                    t.events.push(TraceEvent::Contradiction { ineq: i.to_string() });
                }
                return (RefuteResult::Refuted, 0);
            }
            if !i.is_trivial() {
                work.push(i);
            }
        }
        if let Some(t) = trace.as_mut() {
            if input_tightened > 0 {
                t.events.push(TraceEvent::Tightened { count: input_tightened });
            }
        }
        let mut combinations = 0usize;
        loop {
            // Collect remaining variables.
            let mut vars = BTreeSet::new();
            for i in &work {
                for v in i.linear().vars() {
                    vars.insert(v.clone());
                }
            }
            let Some(target) = Self::pick_variable(&work, &vars) else {
                // No variables left and no contradiction was found.
                return (RefuteResult::PossiblySat, combinations);
            };

            let mut lowers: Vec<&Ineq> = Vec::new(); // coeff < 0
            let mut uppers: Vec<&Ineq> = Vec::new(); // coeff > 0
            let mut rest: Vec<Ineq> = Vec::new();
            for i in &work {
                let c = i.linear().coeff(&target);
                if c > 0 {
                    uppers.push(i);
                } else if c < 0 {
                    lowers.push(i);
                } else {
                    rest.push(i.clone());
                }
            }

            // Per-round counters for the `Eliminate` event; the round can
            // end early (contradiction, fuel, overflow), in which case the
            // event records the pairs actually combined.
            let mut round_pairs = 0u64;
            let mut round_tightened = 0u64;
            let emit_round =
                |trace: &mut Option<&mut RefuteTrace<'_>>, pairs: u64, tightened: u64| {
                    if let Some(t) = trace.as_mut() {
                        let var = t.name(&target);
                        t.events.push(TraceEvent::Eliminate {
                            var,
                            uppers: uppers.len(),
                            lowers: lowers.len(),
                            pairs,
                            tightened,
                        });
                    }
                };

            for up in &uppers {
                for lo in &lowers {
                    if let Some(spent) = meter.charge() {
                        emit_round(&mut trace, round_pairs, round_tightened);
                        return (spent, combinations);
                    }
                    combinations += 1;
                    round_pairs += 1;
                    if combinations > opts.max_combinations {
                        emit_round(&mut trace, round_pairs, round_tightened);
                        return (RefuteResult::Overflow, combinations);
                    }
                    let a = up.linear().coeff(&target); // a > 0
                    let b = -lo.linear().coeff(&target); // b > 0
                                                         // b·up + a·lo eliminates `target`.
                    let combined = up.linear().scale(b).add(&lo.linear().scale(a));
                    debug_assert_eq!(combined.coeff(&target), 0);
                    let mut ineq = Ineq::le_zero(combined);
                    if opts.tighten {
                        let t = ineq.tighten();
                        if t != ineq {
                            round_tightened += 1;
                        }
                        ineq = t;
                    }
                    if ineq.is_contradiction() {
                        emit_round(&mut trace, round_pairs, round_tightened);
                        if let Some(t) = trace.as_mut() {
                            t.events.push(TraceEvent::Contradiction { ineq: ineq.to_string() });
                        }
                        return (RefuteResult::Refuted, combinations);
                    }
                    if !ineq.is_trivial() {
                        rest.push(ineq);
                    }
                }
            }
            emit_round(&mut trace, round_pairs, round_tightened);
            if rest.len() > opts.max_ineqs {
                return (RefuteResult::Overflow, combinations);
            }
            // Deduplicate to keep the working set small. The structural
            // sort (variable-id order) replaces an earlier sort keyed on
            // `format!`-rendered strings, which allocated two strings per
            // comparison on every elimination round.
            rest.sort_unstable();
            rest.dedup();
            work = rest;
            if work.is_empty() {
                return (RefuteResult::PossiblySat, combinations);
            }
        }
    }

    /// Chooses the elimination variable minimising the number of new
    /// inequalities (`#uppers × #lowers`), the classic greedy heuristic.
    fn pick_variable(work: &[Ineq], vars: &BTreeSet<Var>) -> Option<Var> {
        let mut best: Option<(Var, usize)> = None;
        for v in vars {
            let mut ups = 0usize;
            let mut los = 0usize;
            for i in work {
                let c = i.linear().coeff(v);
                if c > 0 {
                    ups += 1;
                } else if c < 0 {
                    los += 1;
                }
            }
            let cost = ups * los;
            match &best {
                Some((_, c)) if *c <= cost => {}
                _ => best = Some((v.clone(), cost)),
            }
        }
        best.map(|(v, _)| v)
    }
}

impl FromIterator<Ineq> for System {
    fn from_iter<T: IntoIterator<Item = Ineq>>(iter: T) -> Self {
        System { ineqs: iter.into_iter().collect() }
    }
}

impl Extend<Ineq> for System {
    fn extend<T: IntoIterator<Item = Ineq>>(&mut self, iter: T) {
        self.ineqs.extend(iter);
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, i) in self.ineqs.iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "{i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::VarGen;

    fn lv(v: &Var) -> Linear {
        Linear::var(v.clone())
    }

    fn k(c: i64) -> Linear {
        Linear::constant(c)
    }

    #[test]
    fn tighten_matches_paper() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        // 2x + 2y ≤ 1  has no integer solutions with x + y ≥ 1; tightened it
        // becomes x + y ≤ 0.
        let i = Ineq::le(lv(&x).scale(2).add(&lv(&y).scale(2)), k(1));
        let t = i.tighten();
        assert_eq!(t, Ineq::le(lv(&x).add(&lv(&y)), k(0)));
    }

    #[test]
    fn tighten_negative_constant() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        // 3x ≤ -2  →  x ≤ ⌊-2/3⌋ = -1.
        let i = Ineq::le(lv(&x).scale(3), k(-2));
        let t = i.tighten();
        assert_eq!(t, Ineq::le(lv(&x), k(-1)));
    }

    #[test]
    fn tighten_identity_when_gcd_one() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let i = Ineq::le(lv(&x).scale(2).add(&lv(&y).scale(3)), k(5));
        assert_eq!(i.tighten(), i);
    }

    #[test]
    fn refute_simple_contradiction() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        // x ≤ 0 and x ≥ 1.
        s.push(Ineq::le(lv(&x), k(0)));
        s.push(Ineq::le(k(1), lv(&x)));
        let (r, _) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
    }

    #[test]
    fn satisfiable_system_not_refuted() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let y = g.fresh("y");
        let mut s = System::new();
        // 0 ≤ x ≤ y ≤ 10.
        s.push(Ineq::le(k(0), lv(&x)));
        s.push(Ineq::le(lv(&x), lv(&y)));
        s.push(Ineq::le(lv(&y), k(10)));
        let (r, _) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::PossiblySat);
    }

    #[test]
    fn tightening_refutes_integer_infeasible() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        // 1 ≤ 2x ≤ 1: rationally satisfiable (x = 1/2), integrally not.
        let mut s = System::new();
        s.push(Ineq::le(k(1), lv(&x).scale(2)));
        s.push(Ineq::le(lv(&x).scale(2), k(1)));
        let with = s.refute(&FourierOptions::default()).0;
        assert_eq!(with, RefuteResult::Refuted);
        let without = s.refute(&FourierOptions { tighten: false, ..FourierOptions::default() }).0;
        assert_eq!(without, RefuteResult::PossiblySat);
    }

    #[test]
    fn equations_as_two_ineqs() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        s.push_eq(lv(&x), k(3));
        s.push(Ineq::le(lv(&x), k(2)));
        let (r, _) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
    }

    #[test]
    fn strict_inequality_exact_over_integers() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        // x < 1 and x > 0 has no integer solution.
        let mut s = System::new();
        s.push(Ineq::lt(lv(&x), k(1)));
        s.push(Ineq::lt(k(0), lv(&x)));
        let (r, _) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
    }

    #[test]
    fn multi_variable_chain_refutation() {
        let mut g = VarGen::new();
        let vars: Vec<Var> = (0..6).map(|i| g.fresh(&format!("v{i}"))).collect();
        let mut s = System::new();
        // v0 ≤ v1 ≤ ... ≤ v5 and v5 ≤ v0 - 1: a cycle with slack -1.
        for w in vars.windows(2) {
            s.push(Ineq::le(lv(&w[0]), lv(&w[1])));
        }
        s.push(Ineq::le(lv(&vars[5]).add(&k(1)), lv(&vars[0])));
        let (r, _) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
    }

    #[test]
    fn satisfied_by_checks_assignment() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(k(0), lv(&x)));
        s.push(Ineq::le(lv(&x), k(5)));
        let x2 = x.clone();
        let env3 = move |w: &Var| if *w == x2 { Some(3) } else { None };
        assert_eq!(s.satisfied_by(&env3), Some(true));
        let x3 = x.clone();
        let env9 = move |w: &Var| if *w == x3 { Some(9) } else { None };
        assert_eq!(s.satisfied_by(&env9), Some(false));
    }

    #[test]
    fn empty_system_possibly_sat() {
        let s = System::new();
        assert_eq!(s.refute(&FourierOptions::default()).0, RefuteResult::PossiblySat);
    }

    #[test]
    fn contradiction_on_input_detected_immediately() {
        let mut s = System::new();
        s.push(Ineq::le(k(1), k(0)));
        let (r, combos) = s.refute(&FourierOptions::default());
        assert_eq!(r, RefuteResult::Refuted);
        assert_eq!(combos, 0);
    }

    #[test]
    fn display_forms() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let i = Ineq::le(lv(&x), k(3));
        assert_eq!(i.to_string(), "x - 3 <= 0");
    }

    /// With zero fuel no combination can be performed, but contradictions
    /// already present in the input are still free.
    #[test]
    fn zero_fuel_blocks_elimination_but_not_input_contradictions() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(lv(&x), k(0)));
        s.push(Ineq::le(k(1), lv(&x)));
        let opts = FourierOptions::default();
        let mut dry = FuelMeter::new(Some(0), None);
        assert_eq!(s.refute_budgeted(&opts, &mut dry).0, RefuteResult::FuelExhausted);

        let mut contradiction = System::new();
        contradiction.push(Ineq::le(k(1), k(0)));
        let mut dry = FuelMeter::new(Some(0), None);
        assert_eq!(
            contradiction.refute_budgeted(&opts, &mut dry).0,
            RefuteResult::Refuted,
            "input contradictions cost nothing"
        );
    }

    /// Fuel is monotone: once a refutation completes under some budget, a
    /// larger budget returns the identical result and combination count.
    #[test]
    fn fuel_is_monotone_on_chain_refutation() {
        let mut g = VarGen::new();
        let vars: Vec<Var> = (0..6).map(|i| g.fresh(&format!("v{i}"))).collect();
        let mut s = System::new();
        for w in vars.windows(2) {
            s.push(Ineq::le(lv(&w[0]), lv(&w[1])));
        }
        s.push(Ineq::le(lv(&vars[5]).add(&k(1)), lv(&vars[0])));
        let opts = FourierOptions::default();
        let (full, combos) = s.refute(&opts);
        assert_eq!(full, RefuteResult::Refuted);
        assert!(combos > 0);
        let mut results = Vec::new();
        for fuel in 0..=combos as u64 + 2 {
            let mut m = FuelMeter::new(Some(fuel), None);
            results.push(s.refute_budgeted(&opts, &mut m).0);
        }
        for (fuel, r) in results.iter().enumerate() {
            if fuel < combos {
                assert_eq!(*r, RefuteResult::FuelExhausted, "fuel {fuel}");
            } else {
                assert_eq!(*r, RefuteResult::Refuted, "fuel {fuel}");
            }
        }
    }

    /// A shared meter spans several systems: work done on the first leaves
    /// less for the second.
    #[test]
    fn shared_meter_spans_systems() {
        let mut g = VarGen::new();
        let x = g.fresh("x");
        let mut s = System::new();
        s.push(Ineq::le(k(1), lv(&x)));
        s.push(Ineq::le(lv(&x), k(0)));
        let opts = FourierOptions::default();
        let (_, one) = s.refute(&opts);
        assert!(one > 0);
        // Enough fuel for exactly one refutation, shared across two.
        let mut m = FuelMeter::new(Some(one as u64), None);
        assert_eq!(s.refute_budgeted(&opts, &mut m).0, RefuteResult::Refuted);
        assert_eq!(s.refute_budgeted(&opts, &mut m).0, RefuteResult::FuelExhausted);
    }
}
