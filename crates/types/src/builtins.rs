//! The refined standard basis (§2.1, §3.1): dependent signatures for
//! arithmetic, comparison, and array/list primitives, declared as DML
//! source and elaborated into a base [`Env`].
//!
//! Notable signatures:
//!
//! * `+ <| {m:int} {n:int} int(m) * int(n) -> int(m+n)` — the paper's
//!   exact singleton arithmetic;
//! * `sub <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a` — the
//!   *unchecked* subscript, usable only where the guard is discharged;
//! * `subCK <| {n:nat} 'a array(n) * int -> 'a` — the always-checked
//!   subscript (the escape hatch used in the KMP example, Appendix A);
//! * `nth` / `nthCK` — the list analogues eliminating tag checks.

use crate::env::{CheckKind, Env};
use dml_index::VarGen;
use dml_syntax::ast as sast;
use dml_syntax::parse_program;

/// The prelude: list datatype + typeref (Figure 2), the `order` datatype,
/// and the refined standard basis.
pub const PRELUDE: &str = r#"
datatype 'a list = nil | :: of 'a * 'a list
typeref 'a list of nat with
  nil <| 'a list(0)
| :: <| {n:nat} 'a * 'a list(n) -> 'a list(n+1)

datatype order = LESS | EQUAL | GREATER

assert + <| {m:int} {n:int} int(m) * int(n) -> int(m+n)
and - <| {m:int} {n:int} int(m) * int(n) -> int(m-n)
and * <| {m:int} {n:int} int(m) * int(n) -> int(m*n)
and div <| {m:int} {n:int | n <> 0} int(m) * int(n) -> int(m div n)
and mod <| {m:int} {n:int | n <> 0} int(m) * int(n) -> int(m mod n)
and neg <| {m:int} int(m) -> int(0-m)
and iabs <| {m:int} int(m) -> int(abs(m))
and imin <| {m:int} {n:int} int(m) * int(n) -> int(min(m,n))
and imax <| {m:int} {n:int} int(m) * int(n) -> int(max(m,n))
and = <| {m:int} {n:int} int(m) * int(n) -> bool(m = n)
and <> <| {m:int} {n:int} int(m) * int(n) -> bool(m <> n)
and < <| {m:int} {n:int} int(m) * int(n) -> bool(m < n)
and <= <| {m:int} {n:int} int(m) * int(n) -> bool(m <= n)
and > <| {m:int} {n:int} int(m) * int(n) -> bool(m > n)
and >= <| {m:int} {n:int} int(m) * int(n) -> bool(m >= n)
and not <| {b:bool} bool(b) -> bool(not b)

assert length <| {n:nat} 'a array(n) -> int(n)
and sub <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a
and update <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) * 'a -> unit
and array <| {n:nat} int(n) * 'a -> 'a array(n)
and subCK <| {n:nat} 'a array(n) * int -> 'a
and updateCK <| {n:nat} 'a array(n) * int * 'a -> unit

assert llength <| {n:nat} 'a list(n) -> int(n)
and nth <| {n:nat} {i:nat | i < n} 'a list(n) * int(i) -> 'a
and nthCK <| {n:nat} 'a list(n) * int -> 'a

assert print_int <| int -> unit
"#;

/// The check kind associated with each prelude primitive name. User-defined
/// `assert` names containing `sub`, `update`, or `nth` prefixes (as in the
/// KMP example's `subPrefix`) inherit the corresponding kind.
pub fn check_kind(name: &str) -> CheckKind {
    match name {
        "sub" | "update" => CheckKind::ArrayBound,
        "nth" => CheckKind::ListTag,
        "div" | "mod" => CheckKind::DivZero,
        _ if name.starts_with("sub") && !name.ends_with("CK") => CheckKind::ArrayBound,
        _ if name.starts_with("update") && !name.ends_with("CK") => CheckKind::ArrayBound,
        _ if name.starts_with("nth") && !name.ends_with("CK") => CheckKind::ListTag,
        _ => CheckKind::None,
    }
}

/// Builds the base environment containing the prelude.
///
/// # Panics
///
/// Panics if the prelude itself fails to parse or elaborate — that is a bug
/// in this crate, covered by tests.
pub fn base_env(gen: &mut VarGen) -> Env {
    let program = parse_program(PRELUDE).expect("prelude parses");
    let mut env = Env::new();
    for d in &program.decls {
        match d {
            sast::Decl::Datatype(dd) => {
                env.add_datatype(dd, gen).expect("prelude datatype elaborates")
            }
            sast::Decl::Typeref(tr) => {
                env.add_typeref(tr, gen).expect("prelude typeref elaborates")
            }
            sast::Decl::Assert(sigs) => {
                env.add_assert(sigs, &check_kind, gen).expect("prelude assert elaborates")
            }
            other => panic!("unexpected declaration in prelude: {other:?}"),
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::MlTy;

    #[test]
    fn prelude_elaborates() {
        let mut gen = VarGen::new();
        let env = base_env(&mut gen);
        for name in [
            "+", "-", "*", "div", "mod", "neg", "=", "<>", "<", "<=", ">", ">=", "not", "length",
            "sub", "update", "array", "subCK", "updateCK", "llength", "nth", "nthCK", "iabs",
            "imin", "imax",
        ] {
            assert!(env.values.contains_key(name), "missing prelude primitive `{name}`");
        }
        assert!(env.is_constructor("nil"));
        assert!(env.is_constructor("::"));
        assert!(env.is_constructor("LESS"));
    }

    #[test]
    fn arithmetic_erases_correctly() {
        let mut gen = VarGen::new();
        let env = base_env(&mut gen);
        let plus = env.ml_scheme("+").unwrap();
        assert_eq!(
            plus.ty,
            MlTy::Arrow(
                Box::new(MlTy::Tuple(vec![MlTy::int(), MlTy::int()])),
                Box::new(MlTy::int())
            )
        );
        let eq = env.ml_scheme("=").unwrap();
        assert_eq!(
            eq.ty,
            MlTy::Arrow(
                Box::new(MlTy::Tuple(vec![MlTy::int(), MlTy::int()])),
                Box::new(MlTy::bool())
            )
        );
    }

    #[test]
    fn sub_is_polymorphic_and_checked_kind() {
        let mut gen = VarGen::new();
        let env = base_env(&mut gen);
        let sub = &env.values["sub"];
        assert_eq!(sub.scheme.tyvars, vec!["a".to_string()]);
        assert_eq!(sub.check, CheckKind::ArrayBound);
        assert_eq!(env.values["subCK"].check, CheckKind::None);
        assert_eq!(env.values["nth"].check, CheckKind::ListTag);
        assert_eq!(env.values["div"].check, CheckKind::DivZero);
    }

    #[test]
    fn check_kind_prefix_rules() {
        assert_eq!(check_kind("subPrefix"), CheckKind::ArrayBound);
        assert_eq!(check_kind("updatePrefix"), CheckKind::ArrayBound);
        assert_eq!(check_kind("subPrefixCK"), CheckKind::None);
        assert_eq!(check_kind("dotprod"), CheckKind::None);
    }

    #[test]
    fn list_typeref_registered() {
        let mut gen = VarGen::new();
        let env = base_env(&mut gen);
        let cons = &env.cons["::"];
        assert_eq!(cons.binder.vars.len(), 1);
        assert_eq!(env.families["list"].ix_sorts.len(), 1);
    }
}
