//! Conversion of surface types, sorts, and index expressions into the
//! internal languages of [`crate::ty`] and [`dml_index`].
//!
//! Index variable names are resolved against a lexically scoped [`Scope`];
//! every binder allocates a fresh [`Var`] so ids are globally unique and all
//! downstream substitution is capture-free.

use crate::ty::{Binder, Ix, Ty};
use dml_index::{IExp, Prop, Sort, Var, VarGen};
use dml_syntax::ast as sast;
use dml_syntax::Span;
use std::collections::HashMap;
use std::fmt;

/// Conversion error (unbound index variable, unknown family, arity
/// mismatch, boolean/integer sort confusion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertError {
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl ConvertError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        ConvertError { message: message.into(), span }
    }
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type conversion error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ConvertError {}

/// Declared shape of a type family: its type arity and index sorts.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySig {
    /// Number of type arguments.
    pub ty_arity: usize,
    /// Sorts of the index arguments (surface sorts; `nat` retains its
    /// guard). Empty for unrefined datatypes.
    pub ix_sorts: Vec<sast::Sort>,
}

/// A lexical scope of index variables (name → semantic variable + sort).
#[derive(Debug, Clone, Default)]
pub struct Scope {
    vars: HashMap<String, (Var, Sort)>,
}

impl Scope {
    /// The empty scope.
    pub fn new() -> Scope {
        Scope::default()
    }

    /// Child scope with an extra binding.
    pub fn bind(&mut self, name: &str, v: Var, s: Sort) -> Option<(Var, Sort)> {
        self.vars.insert(name.to_string(), (v, s))
    }

    /// Looks up a variable.
    pub fn lookup(&self, name: &str) -> Option<&(Var, Sort)> {
        self.vars.get(name)
    }
}

/// The conversion context: family signatures, in-scope ML type variables,
/// and a fresh-variable supply.
pub struct Converter<'a> {
    /// Known type families (`int`, `bool`, `unit`, `array`, `list`, user
    /// datatypes).
    pub families: &'a HashMap<String, FamilySig>,
    /// Fresh index variable supply.
    pub gen: &'a mut VarGen,
}

impl<'a> Converter<'a> {
    /// Creates a converter.
    pub fn new(families: &'a HashMap<String, FamilySig>, gen: &'a mut VarGen) -> Self {
        Converter { families, gen }
    }

    /// Converts a surface sort to a base sort plus a guard on `v`.
    pub fn convert_sort(
        &mut self,
        s: &sast::Sort,
        v: &Var,
        scope: &Scope,
    ) -> Result<(Sort, Prop), ConvertError> {
        match s {
            sast::Sort::Int => Ok((Sort::Int, Prop::True)),
            sast::Sort::Bool => Ok((Sort::Bool, Prop::True)),
            sast::Sort::Nat => Ok((Sort::Int, Prop::le(IExp::lit(0), IExp::var(v.clone())))),
            sast::Sort::Subset(elem, inner, prop) => {
                let (base, inner_guard) = self.convert_sort(inner, v, scope)?;
                let mut inner_scope = scope.clone();
                inner_scope.bind(&elem.name, v.clone(), base);
                let guard = self.convert_prop(prop, &inner_scope)?;
                Ok((base, inner_guard.and(guard)))
            }
        }
    }

    /// Converts a quantifier group, extending the scope.
    pub fn convert_quants(
        &mut self,
        quants: &[sast::Quant],
        scope: &mut Scope,
    ) -> Result<Binder, ConvertError> {
        let mut vars = Vec::with_capacity(quants.len());
        let mut guard = Prop::True;
        for q in quants {
            let v = self.gen.fresh(&q.var.name);
            let (base, sort_guard) = self.convert_sort(&q.sort, &v, scope)?;
            scope.bind(&q.var.name, v.clone(), base);
            guard = guard.and(sort_guard);
            if let Some(g) = &q.guard {
                guard = guard.and(self.convert_prop(g, scope)?);
            }
            vars.push((v, base));
        }
        Ok(Binder::guarded(vars, guard))
    }

    /// Converts a surface index expression.
    pub fn convert_iexpr(&mut self, e: &sast::IExpr, scope: &Scope) -> Result<IExp, ConvertError> {
        Ok(match e {
            sast::IExpr::Var(id) => match scope.lookup(&id.name) {
                Some((v, Sort::Int)) => IExp::var(v.clone()),
                Some((_, Sort::Bool)) => {
                    return Err(ConvertError::new(
                        format!("index variable `{}` is boolean, expected integer", id.name),
                        id.span,
                    ))
                }
                None => {
                    return Err(ConvertError::new(
                        format!("unbound index variable `{}`", id.name),
                        id.span,
                    ))
                }
            },
            sast::IExpr::Lit(n, _) => IExp::lit(*n),
            sast::IExpr::Add(a, b) => {
                self.convert_iexpr(a, scope)? + self.convert_iexpr(b, scope)?
            }
            sast::IExpr::Sub(a, b) => {
                self.convert_iexpr(a, scope)? - self.convert_iexpr(b, scope)?
            }
            sast::IExpr::Mul(a, b) => {
                self.convert_iexpr(a, scope)? * self.convert_iexpr(b, scope)?
            }
            sast::IExpr::Div(a, b) => {
                self.convert_iexpr(a, scope)?.div(self.convert_iexpr(b, scope)?)
            }
            sast::IExpr::Mod(a, b) => {
                self.convert_iexpr(a, scope)?.modulo(self.convert_iexpr(b, scope)?)
            }
            sast::IExpr::Min(a, b) => {
                self.convert_iexpr(a, scope)?.min(self.convert_iexpr(b, scope)?)
            }
            sast::IExpr::Max(a, b) => {
                self.convert_iexpr(a, scope)?.max(self.convert_iexpr(b, scope)?)
            }
            sast::IExpr::Abs(a) => self.convert_iexpr(a, scope)?.abs(),
            sast::IExpr::Sgn(a) => self.convert_iexpr(a, scope)?.sgn(),
            sast::IExpr::Neg(a) => -self.convert_iexpr(a, scope)?,
        })
    }

    /// Converts a surface index proposition.
    pub fn convert_prop(&mut self, p: &sast::IProp, scope: &Scope) -> Result<Prop, ConvertError> {
        Ok(match p {
            sast::IProp::Var(id) => match scope.lookup(&id.name) {
                Some((v, Sort::Bool)) => Prop::BVar(v.clone()),
                Some((_, Sort::Int)) => {
                    return Err(ConvertError::new(
                        format!("index variable `{}` is integer, expected boolean", id.name),
                        id.span,
                    ))
                }
                None => {
                    return Err(ConvertError::new(
                        format!("unbound index variable `{}`", id.name),
                        id.span,
                    ))
                }
            },
            sast::IProp::Lit(true, _) => Prop::True,
            sast::IProp::Lit(false, _) => Prop::False,
            sast::IProp::Cmp(op, a, b) => {
                let a = self.convert_iexpr(a, scope)?;
                let b = self.convert_iexpr(b, scope)?;
                let c = match op {
                    sast::CmpOp::Lt => dml_index::Cmp::Lt,
                    sast::CmpOp::Le => dml_index::Cmp::Le,
                    sast::CmpOp::Gt => dml_index::Cmp::Gt,
                    sast::CmpOp::Ge => dml_index::Cmp::Ge,
                    sast::CmpOp::Eq => dml_index::Cmp::Eq,
                    sast::CmpOp::Neq => dml_index::Cmp::Ne,
                };
                Prop::cmp(c, a, b)
            }
            sast::IProp::Not(q) => self.convert_prop(q, scope)?.negate(),
            sast::IProp::And(a, b) => {
                self.convert_prop(a, scope)?.and(self.convert_prop(b, scope)?)
            }
            sast::IProp::Or(a, b) => self.convert_prop(a, scope)?.or(self.convert_prop(b, scope)?),
        })
    }

    /// Converts a surface index argument against an expected sort.
    fn convert_index(
        &mut self,
        ix: &sast::Index,
        expected: Sort,
        scope: &Scope,
        span: Span,
    ) -> Result<Ix, ConvertError> {
        match (ix, expected) {
            (sast::Index::Int(e), Sort::Int) => Ok(Ix::Int(self.convert_iexpr(e, scope)?)),
            (sast::Index::Prop(p), Sort::Bool) => Ok(Ix::Bool(self.convert_prop(p, scope)?)),
            // A bare variable parsed as an integer expression may really be
            // a boolean index variable.
            (sast::Index::Int(sast::IExpr::Var(id)), Sort::Bool) => match scope.lookup(&id.name) {
                Some((v, Sort::Bool)) => Ok(Ix::Bool(Prop::BVar(v.clone()))),
                _ => Err(ConvertError::new(
                    format!("expected a boolean index, found `{}`", id.name),
                    id.span,
                )),
            },
            (sast::Index::Int(_), Sort::Bool) => {
                Err(ConvertError::new("expected a boolean index", span))
            }
            (sast::Index::Prop(_), Sort::Int) => {
                Err(ConvertError::new("expected an integer index", span))
            }
        }
    }

    /// Converts a surface dependent type.
    pub fn convert_dtype(&mut self, t: &sast::DType, scope: &Scope) -> Result<Ty, ConvertError> {
        match t {
            sast::DType::Var(id) => Ok(Ty::Rigid(id.name.clone())),
            sast::DType::App { name, ty_args, ix_args } => {
                let sig = self.families.get(&name.name).ok_or_else(|| {
                    ConvertError::new(format!("unknown type `{}`", name.name), name.span)
                })?;
                if ty_args.len() != sig.ty_arity {
                    return Err(ConvertError::new(
                        format!(
                            "type `{}` expects {} type argument(s), got {}",
                            name.name,
                            sig.ty_arity,
                            ty_args.len()
                        ),
                        name.span,
                    ));
                }
                if !ix_args.is_empty() && ix_args.len() != sig.ix_sorts.len() {
                    return Err(ConvertError::new(
                        format!(
                            "type `{}` expects {} index argument(s), got {}",
                            name.name,
                            sig.ix_sorts.len(),
                            ix_args.len()
                        ),
                        name.span,
                    ));
                }
                let tys = ty_args
                    .iter()
                    .map(|a| self.convert_dtype(a, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut ixs = Vec::with_capacity(ix_args.len());
                for (ix, sort) in ix_args.iter().zip(&sig.ix_sorts) {
                    let expected = match sort {
                        sast::Sort::Bool => Sort::Bool,
                        _ => Sort::Int,
                    };
                    ixs.push(self.convert_index(ix, expected, scope, name.span)?);
                }
                Ok(Ty::App(name.name.clone(), tys, ixs))
            }
            sast::DType::Product(parts) => {
                let ts = parts
                    .iter()
                    .map(|p| self.convert_dtype(p, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Ty::Tuple(ts))
            }
            sast::DType::Arrow(a, b) => Ok(Ty::Arrow(
                Box::new(self.convert_dtype(a, scope)?),
                Box::new(self.convert_dtype(b, scope)?),
            )),
            sast::DType::Pi(quants, body) => {
                let mut inner = scope.clone();
                let binder = self.convert_quants(quants, &mut inner)?;
                Ok(Ty::Pi(binder, Box::new(self.convert_dtype(body, &inner)?)))
            }
            sast::DType::Sigma(quants, body) => {
                let mut inner = scope.clone();
                let binder = self.convert_quants(quants, &mut inner)?;
                Ok(Ty::Sigma(binder, Box::new(self.convert_dtype(body, &inner)?)))
            }
        }
    }
}

/// The built-in family signatures (`int`, `bool`, `unit`, `array`, `list`).
pub fn builtin_families() -> HashMap<String, FamilySig> {
    let mut m = HashMap::new();
    m.insert("int".into(), FamilySig { ty_arity: 0, ix_sorts: vec![sast::Sort::Int] });
    m.insert("bool".into(), FamilySig { ty_arity: 0, ix_sorts: vec![sast::Sort::Bool] });
    m.insert("unit".into(), FamilySig { ty_arity: 0, ix_sorts: vec![] });
    m.insert("array".into(), FamilySig { ty_arity: 1, ix_sorts: vec![sast::Sort::Nat] });
    // `list` is *not* built in here: the prelude declares it as an ordinary
    // datatype refined by a `typeref` (exactly as in Figure 2 of the paper).
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::parse_dtype;

    fn convert(src: &str) -> Result<Ty, ConvertError> {
        let t = parse_dtype(src).unwrap();
        let fams = builtin_families();
        let mut gen = VarGen::new();
        let mut conv = Converter::new(&fams, &mut gen);
        conv.convert_dtype(&t, &Scope::new())
    }

    #[test]
    fn convert_sub_signature() {
        let t = convert("{n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a").unwrap();
        let s = t.to_string();
        assert!(s.contains("array(n)"), "{s}");
        assert!(s.contains("0 <= n"), "nat guard, {s}");
        assert!(s.contains("i < n"), "{s}");
    }

    #[test]
    fn convert_existential() {
        let t = convert("{m:nat} [n:nat | n <= m] 'a array(n)").unwrap();
        match t {
            Ty::Pi(_, body) => assert!(matches!(*body, Ty::Sigma(_, _))),
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn convert_bool_singleton() {
        let t = convert("{m:int} {n:int} int(m) * int(n) -> bool(m <= n)").unwrap();
        let s = t.to_string();
        assert!(s.contains("bool(m <= n)"), "{s}");
    }

    #[test]
    fn convert_bool_var_index() {
        let t = convert("{b:bool} bool(b) -> bool(not b)").unwrap();
        let s = t.to_string();
        assert!(s.contains("bool(b)"), "{s}");
        assert!(s.contains("not(b)"), "{s}");
    }

    #[test]
    fn unbound_index_var_rejected() {
        assert!(convert("int(n)").is_err());
    }

    #[test]
    fn unknown_family_rejected() {
        assert!(convert("widget(3)").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(convert("{n:nat} array(n)").is_err(), "array needs an element type");
        assert!(convert("{n:nat} int array(n, n)").is_err(), "too many indices");
    }

    #[test]
    fn bool_int_sort_confusion_rejected() {
        assert!(convert("{b:bool} int(b)").is_err());
        assert!(convert("{n:int} bool(n)").is_err());
    }

    #[test]
    fn subset_sort_guard_collected() {
        let t = convert("{i: {a:int | a >= 0} | i < 10} int(i)").unwrap();
        match t {
            Ty::Pi(b, _) => {
                let s = b.guard.to_string();
                assert!(s.contains(">= 0") || s.contains("0 <="), "{s}");
                assert!(s.contains("< 10"), "{s}");
            }
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn shared_guard_scopes_over_group() {
        let t = convert("{size:int, i:int | 0 <= i < size} 'a array(size) * int(i) -> 'a").unwrap();
        match t {
            Ty::Pi(b, _) => {
                assert_eq!(b.vars.len(), 2);
                assert!(b.guard.to_string().contains("i < size"), "{}", b.guard);
            }
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn div_in_index_converted() {
        let t = convert("{l:int, h:int} int(l + (h - l) div 2)").unwrap();
        assert!(t.to_string().contains("div 2"), "{t}");
    }
}
