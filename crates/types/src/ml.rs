//! Erased ML types (phase-1 currency) and erasure from dependent types.

use crate::ty::Ty;
use std::collections::BTreeSet;
use std::fmt;

/// An ML type with unification variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlTy {
    /// A unification variable.
    UVar(u32),
    /// A rigid (scheme-bound or explicitly scoped) type variable.
    Rigid(String),
    /// A type constructor application: `int`, `bool`, `unit`, `'a array`,
    /// `'a list`, user datatypes.
    Con(String, Vec<MlTy>),
    /// Product type (n ≠ 1; `unit` is `Con("unit", [])`).
    Tuple(Vec<MlTy>),
    /// Function type.
    Arrow(Box<MlTy>, Box<MlTy>),
}

impl MlTy {
    /// The `int` type.
    pub fn int() -> MlTy {
        MlTy::Con("int".into(), Vec::new())
    }

    /// The `bool` type.
    pub fn bool() -> MlTy {
        MlTy::Con("bool".into(), Vec::new())
    }

    /// The `unit` type.
    pub fn unit() -> MlTy {
        MlTy::Con("unit".into(), Vec::new())
    }

    /// `t array`.
    pub fn array(t: MlTy) -> MlTy {
        MlTy::Con("array".into(), vec![t])
    }

    /// `t list`.
    pub fn list(t: MlTy) -> MlTy {
        MlTy::Con("list".into(), vec![t])
    }

    /// Substitutes types for rigid variables (scheme instantiation).
    pub fn subst_rigids(&self, map: &dyn Fn(&str) -> Option<MlTy>) -> MlTy {
        match self {
            MlTy::UVar(_) => self.clone(),
            MlTy::Rigid(n) => map(n).unwrap_or_else(|| self.clone()),
            MlTy::Con(n, args) => {
                MlTy::Con(n.clone(), args.iter().map(|a| a.subst_rigids(map)).collect())
            }
            MlTy::Tuple(ts) => MlTy::Tuple(ts.iter().map(|t| t.subst_rigids(map)).collect()),
            MlTy::Arrow(a, b) => {
                MlTy::Arrow(Box::new(a.subst_rigids(map)), Box::new(b.subst_rigids(map)))
            }
        }
    }

    /// Collects unification variables.
    pub fn uvars_into(&self, out: &mut BTreeSet<u32>) {
        match self {
            MlTy::UVar(u) => {
                out.insert(*u);
            }
            MlTy::Rigid(_) => {}
            MlTy::Con(_, args) => {
                for a in args {
                    a.uvars_into(out);
                }
            }
            MlTy::Tuple(ts) => {
                for t in ts {
                    t.uvars_into(out);
                }
            }
            MlTy::Arrow(a, b) => {
                a.uvars_into(out);
                b.uvars_into(out);
            }
        }
    }

    /// Collects rigid variable names.
    pub fn rigids_into(&self, out: &mut BTreeSet<String>) {
        match self {
            MlTy::UVar(_) => {}
            MlTy::Rigid(n) => {
                out.insert(n.clone());
            }
            MlTy::Con(_, args) => {
                for a in args {
                    a.rigids_into(out);
                }
            }
            MlTy::Tuple(ts) => {
                for t in ts {
                    t.rigids_into(out);
                }
            }
            MlTy::Arrow(a, b) => {
                a.rigids_into(out);
                b.rigids_into(out);
            }
        }
    }
}

impl fmt::Display for MlTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &MlTy, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match t {
                MlTy::UVar(u) => write!(f, "?u{u}"),
                MlTy::Rigid(n) => write!(f, "'{n}"),
                MlTy::Con(n, args) => {
                    match args.len() {
                        0 => {}
                        1 => {
                            go(&args[0], f, 2)?;
                            write!(f, " ")?;
                        }
                        _ => {
                            write!(f, "(")?;
                            for (k, a) in args.iter().enumerate() {
                                if k > 0 {
                                    write!(f, ", ")?;
                                }
                                go(a, f, 0)?;
                            }
                            write!(f, ") ")?;
                        }
                    }
                    write!(f, "{n}")
                }
                MlTy::Tuple(ts) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    for (k, x) in ts.iter().enumerate() {
                        if k > 0 {
                            write!(f, " * ")?;
                        }
                        go(x, f, 2)?;
                    }
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                MlTy::Arrow(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " -> ")?;
                    go(b, f, 0)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0)
    }
}

/// An ML type scheme `∀'a⃗. τ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlScheme {
    /// Quantified type variables (appearing as [`MlTy::Rigid`] in `ty`).
    pub vars: Vec<String>,
    /// The body.
    pub ty: MlTy,
}

impl MlScheme {
    /// A monomorphic scheme.
    pub fn mono(ty: MlTy) -> MlScheme {
        MlScheme { vars: Vec::new(), ty }
    }
}

impl fmt::Display for MlScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vars.is_empty() {
            write!(f, "{}", self.ty)
        } else {
            write!(f, "forall {}. {}", self.vars.join(" "), self.ty)
        }
    }
}

/// Erases a dependent type to its ML skeleton: indices are dropped, Π and Σ
/// quantifiers disappear (they bind only index variables).
pub fn erase(t: &Ty) -> MlTy {
    match t {
        Ty::Rigid(n) => MlTy::Rigid(n.clone()),
        Ty::Meta(u) => MlTy::UVar(*u),
        Ty::App(name, tys, _) => MlTy::Con(name.clone(), tys.iter().map(erase).collect()),
        Ty::Tuple(ts) => MlTy::Tuple(ts.iter().map(erase).collect()),
        Ty::Arrow(a, b) => MlTy::Arrow(Box::new(erase(a)), Box::new(erase(b))),
        Ty::Pi(_, body) | Ty::Sigma(_, body) => erase(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Binder;
    use dml_index::{IExp, Sort, VarGen};

    #[test]
    fn erase_drops_indices_and_quantifiers() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let t = Ty::Pi(
            Binder::new(vec![(n.clone(), Sort::Int)]),
            Box::new(Ty::Arrow(
                Box::new(Ty::array(Ty::Rigid("a".into()), IExp::var(n.clone()))),
                Box::new(Ty::int_singleton(IExp::var(n))),
            )),
        );
        let e = erase(&t);
        assert_eq!(
            e,
            MlTy::Arrow(Box::new(MlTy::array(MlTy::Rigid("a".into()))), Box::new(MlTy::int()))
        );
    }

    #[test]
    fn display_ml_types() {
        let t = MlTy::Arrow(
            Box::new(MlTy::Tuple(vec![MlTy::int(), MlTy::int()])),
            Box::new(MlTy::bool()),
        );
        assert_eq!(t.to_string(), "int * int -> bool");
    }

    #[test]
    fn subst_rigids_instantiates() {
        let t = MlTy::Arrow(Box::new(MlTy::Rigid("a".into())), Box::new(MlTy::Rigid("b".into())));
        let r = t.subst_rigids(&|n| if n == "a" { Some(MlTy::int()) } else { None });
        assert_eq!(r, MlTy::Arrow(Box::new(MlTy::int()), Box::new(MlTy::Rigid("b".into()))));
    }

    #[test]
    fn uvar_collection() {
        let t = MlTy::Tuple(vec![MlTy::UVar(1), MlTy::array(MlTy::UVar(2))]);
        let mut s = BTreeSet::new();
        t.uvars_into(&mut s);
        assert_eq!(s.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
