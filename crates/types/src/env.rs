//! Program environments: type families, datatypes, constructors, and value
//! signatures, built from `datatype`, `typeref`, and `assert` declarations.

use crate::convert::{builtin_families, ConvertError, Converter, FamilySig, Scope};
use crate::ml::{erase, MlScheme, MlTy};
use crate::ty::{Binder, Ix, Scheme, Ty};
use dml_index::{IExp, Prop, Sort, VarGen};
use dml_syntax::ast as sast;
use std::collections::{BTreeSet, HashMap};

/// What kind of run-time check a primitive's guard corresponds to. Guard
/// obligations on primitives with [`CheckKind::ArrayBound`] or
/// [`CheckKind::ListTag`] are the paper's eliminable checks; proving them
/// lets the compiler use the unchecked primitive at that call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// No run-time check attached (ordinary function).
    None,
    /// Array bound check (`sub`, `update`, and user-asserted variants).
    ArrayBound,
    /// List tag check (`nth` and friends).
    ListTag,
    /// Division-by-zero guard (`div`, `mod`).
    DivZero,
}

/// A value (function or primitive) signature in the environment.
#[derive(Debug, Clone, PartialEq)]
pub struct ValInfo {
    /// The dependent type scheme.
    pub scheme: Scheme,
    /// The check kind of this primitive's guard obligations.
    pub check: CheckKind,
}

/// A datatype's metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatatypeInfo {
    /// Declared type variables.
    pub tyvars: Vec<String>,
    /// Constructor names in declaration order.
    pub cons: Vec<String>,
}

/// A constructor's signature: `Π binder. arg → δ(α⃗)(i⃗)` (or just the
/// result type for nullary constructors).
#[derive(Debug, Clone, PartialEq)]
pub struct ConInfo {
    /// The datatype this constructor belongs to.
    pub datatype: String,
    /// The datatype's type variables (scheme variables of the signature).
    pub tyvars: Vec<String>,
    /// Index binder of the refined signature (empty for unrefined).
    pub binder: Binder,
    /// Argument type, if the constructor takes one.
    pub arg: Option<Ty>,
    /// Result type (the datatype applied to its parameters and indices).
    pub result: Ty,
}

impl ConInfo {
    /// The erased ML argument type.
    pub fn arg_ml(&self) -> Option<MlTy> {
        self.arg.as_ref().map(erase)
    }

    /// The erased ML result type.
    pub fn result_ml(&self) -> MlTy {
        erase(&self.result)
    }
}

/// Typeref metadata for a refined datatype.
#[derive(Debug, Clone, PartialEq)]
pub struct TyperefInfo {
    /// Surface sorts of the indices.
    pub sorts: Vec<sast::Sort>,
}

/// The program environment shared by both elaboration phases.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Type families and their arities.
    pub families: HashMap<String, FamilySig>,
    /// Datatypes.
    pub datatypes: HashMap<String, DatatypeInfo>,
    /// Constructors.
    pub cons: HashMap<String, ConInfo>,
    /// Values (primitives from `assert`, plus top-level bindings added
    /// during elaboration).
    pub values: HashMap<String, ValInfo>,
}

impl Env {
    /// An environment with the built-in families only (no primitives).
    pub fn new() -> Env {
        Env { families: builtin_families(), ..Env::default() }
    }

    /// `true` if `name` is a registered constructor.
    pub fn is_constructor(&self, name: &str) -> bool {
        self.cons.contains_key(name)
    }

    /// Processes a `datatype` declaration.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] for duplicate names or malformed
    /// constructor argument types.
    pub fn add_datatype(
        &mut self,
        d: &sast::DatatypeDecl,
        gen: &mut VarGen,
    ) -> Result<(), ConvertError> {
        if self.families.contains_key(&d.name.name) {
            return Err(ConvertError {
                message: format!("type `{}` is already defined", d.name.name),
                span: d.name.span,
            });
        }
        let tyvars: Vec<String> = d.tyvars.iter().map(|t| t.name.clone()).collect();
        self.families.insert(
            d.name.name.clone(),
            FamilySig { ty_arity: tyvars.len(), ix_sorts: Vec::new() },
        );
        let result = Ty::App(
            d.name.name.clone(),
            tyvars.iter().map(|t| Ty::Rigid(t.clone())).collect(),
            Vec::new(),
        );
        let mut con_names = Vec::new();
        for con in &d.cons {
            let arg = match &con.arg {
                None => None,
                Some(t) => {
                    let mut conv = Converter::new(&self.families, gen);
                    Some(conv.convert_dtype(t, &Scope::new())?)
                }
            };
            con_names.push(con.name.name.clone());
            self.cons.insert(
                con.name.name.clone(),
                ConInfo {
                    datatype: d.name.name.clone(),
                    tyvars: tyvars.clone(),
                    binder: Binder::default(),
                    arg,
                    result: result.clone(),
                },
            );
        }
        self.datatypes.insert(d.name.name.clone(), DatatypeInfo { tyvars, cons: con_names });
        Ok(())
    }

    /// Processes a `typeref` declaration, refining an existing datatype.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the datatype is unknown, a constructor is
    /// missing, or a refined signature does not erase to the constructor's
    /// ML type (the paper requires the structures to match).
    pub fn add_typeref(
        &mut self,
        t: &sast::TyperefDecl,
        gen: &mut VarGen,
    ) -> Result<(), ConvertError> {
        let info = self.datatypes.get(&t.name.name).cloned().ok_or_else(|| ConvertError {
            message: format!("typeref of unknown datatype `{}`", t.name.name),
            span: t.name.span,
        })?;
        // Record the index sorts on the family.
        let fam = self.families.get_mut(&t.name.name).expect("datatype implies family");
        fam.ix_sorts = t.sorts.clone();
        for (cname, dtype) in &t.cons {
            if !info.cons.contains(&cname.name) {
                return Err(ConvertError {
                    message: format!("`{}` is not a constructor of `{}`", cname.name, t.name.name),
                    span: cname.span,
                });
            }
            let refined = {
                let mut conv = Converter::new(&self.families, gen);
                conv.convert_dtype(dtype, &Scope::new())?
            };
            let old = self.cons.get(&cname.name).expect("constructor registered");
            let new_info =
                con_info_from_signature(&t.name.name, &info.tyvars, refined.clone(), cname.span)?;
            // Structural check: the refined signature must erase to the ML
            // signature of the constructor.
            let old_ml = (old.arg_ml(), old.result_ml());
            let new_ml = (new_info.arg_ml(), new_info.result_ml());
            if old_ml != new_ml {
                return Err(ConvertError {
                    message: format!(
                        "refined type of `{}` does not match its ML type \
                         (expected {:?} -> {}, found {:?} -> {})",
                        cname.name, old_ml.0, old_ml.1, new_ml.0, new_ml.1
                    ),
                    span: cname.span,
                });
            }
            self.cons.insert(cname.name.clone(), new_info);
        }
        Ok(())
    }

    /// Processes an `assert` declaration, registering primitive signatures.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] for malformed types.
    pub fn add_assert(
        &mut self,
        sigs: &[(sast::Ident, sast::DType)],
        check_of: &dyn Fn(&str) -> CheckKind,
        gen: &mut VarGen,
    ) -> Result<(), ConvertError> {
        for (name, dtype) in sigs {
            let ty = {
                let mut conv = Converter::new(&self.families, gen);
                conv.convert_dtype(dtype, &Scope::new())?
            };
            let mut rigids = BTreeSet::new();
            erase(&ty).rigids_into(&mut rigids);
            let scheme = Scheme { tyvars: rigids.into_iter().collect(), ty };
            self.values.insert(name.name.clone(), ValInfo { scheme, check: check_of(&name.name) });
        }
        Ok(())
    }

    /// The erased ML scheme of a value.
    pub fn ml_scheme(&self, name: &str) -> Option<MlScheme> {
        self.values
            .get(name)
            .map(|v| MlScheme { vars: v.scheme.tyvars.clone(), ty: erase(&v.scheme.ty) })
    }

    /// Lifts an erased ML type into a dependent type by quantifying every
    /// index position existentially (§2.3: "Indices may be omitted in
    /// types, in which case they are interpreted existentially").
    pub fn lift(&self, t: &MlTy, gen: &mut VarGen) -> Ty {
        match t {
            MlTy::UVar(u) => Ty::Rigid(format!("_u{u}")),
            MlTy::Rigid(n) => Ty::Rigid(n.clone()),
            MlTy::Tuple(ts) => Ty::Tuple(ts.iter().map(|x| self.lift(x, gen)).collect()),
            MlTy::Arrow(a, b) => {
                Ty::Arrow(Box::new(self.lift(a, gen)), Box::new(self.lift(b, gen)))
            }
            MlTy::Con(name, args) => {
                let lifted_args: Vec<Ty> = args.iter().map(|a| self.lift(a, gen)).collect();
                let sorts = self.families.get(name).map(|f| f.ix_sorts.clone()).unwrap_or_default();
                if sorts.is_empty() {
                    return Ty::App(name.clone(), lifted_args, Vec::new());
                }
                let mut vars = Vec::new();
                let mut guard = Prop::True;
                let mut ixs = Vec::new();
                for s in &sorts {
                    let v = gen.fresh_tagged("x");
                    let (base, g) = match s {
                        sast::Sort::Bool => (Sort::Bool, Prop::True),
                        sast::Sort::Nat => {
                            (Sort::Int, Prop::le(IExp::lit(0), IExp::var(v.clone())))
                        }
                        sast::Sort::Int => (Sort::Int, Prop::True),
                        sast::Sort::Subset(_, _, _) => {
                            // Conservative: treat as unguarded int.
                            (Sort::Int, Prop::True)
                        }
                    };
                    guard = guard.and(g);
                    ixs.push(match base {
                        Sort::Int => Ix::Int(IExp::var(v.clone())),
                        Sort::Bool => Ix::Bool(Prop::BVar(v.clone())),
                    });
                    vars.push((v, base));
                }
                Ty::Sigma(
                    Binder::guarded(vars, guard),
                    Box::new(Ty::App(name.clone(), lifted_args, ixs)),
                )
            }
        }
    }
}

/// Normalises a refined constructor signature `Π b. arg → result` (or a
/// bare result type) into a [`ConInfo`].
fn con_info_from_signature(
    datatype: &str,
    tyvars: &[String],
    ty: Ty,
    span: dml_syntax::Span,
) -> Result<ConInfo, ConvertError> {
    let mut binder = Binder::default();
    let mut body = ty;
    while let Ty::Pi(b, inner) = body {
        binder.vars.extend(b.vars);
        binder.guard = std::mem::replace(&mut binder.guard, Prop::True).and(b.guard);
        body = *inner;
    }
    let (arg, result) = match body {
        Ty::Arrow(a, r) => (Some(*a), *r),
        other => (None, other),
    };
    match &result {
        Ty::App(name, _, _) if name == datatype => {}
        other => {
            return Err(ConvertError {
                message: format!("constructor result type must be `{datatype}`, found `{other}`"),
                span,
            })
        }
    }
    Ok(ConInfo { datatype: datatype.to_string(), tyvars: tyvars.to_vec(), binder, arg, result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::parse_program;

    fn env_from(src: &str) -> Result<(Env, VarGen), ConvertError> {
        let p = parse_program(src).unwrap();
        let mut env = Env::new();
        let mut gen = VarGen::new();
        for d in &p.decls {
            match d {
                sast::Decl::Datatype(dd) => env.add_datatype(dd, &mut gen)?,
                sast::Decl::Typeref(tr) => env.add_typeref(tr, &mut gen)?,
                sast::Decl::Assert(sigs) => env.add_assert(sigs, &|_| CheckKind::None, &mut gen)?,
                _ => {}
            }
        }
        Ok((env, gen))
    }

    const LIST_DECL: &str = r#"
datatype 'a seq = snil | scons of 'a * 'a seq
typeref 'a seq of nat with
  snil <| 'a seq(0)
| scons <| {n:nat} 'a * 'a seq(n) -> 'a seq(n+1)
"#;

    #[test]
    fn datatype_and_typeref_roundtrip() {
        let (env, _) = env_from(LIST_DECL).unwrap();
        assert!(env.is_constructor("snil"));
        assert!(env.is_constructor("scons"));
        let scons = &env.cons["scons"];
        assert_eq!(scons.binder.vars.len(), 1);
        assert!(scons.arg.is_some());
        assert_eq!(env.families["seq"].ix_sorts.len(), 1);
        let snil = &env.cons["snil"];
        assert!(snil.arg.is_none());
        assert!(matches!(&snil.result, Ty::App(n, _, ixs) if n == "seq" && ixs.len() == 1));
    }

    #[test]
    fn typeref_shape_mismatch_rejected() {
        let src = r#"
datatype 'a seq = snil | scons of 'a * 'a seq
typeref 'a seq of nat with
  snil <| 'a seq(0)
| scons <| {n:nat} 'a seq(n) -> 'a seq(n+1)
"#;
        assert!(env_from(src).is_err(), "scons argument shape differs");
    }

    #[test]
    fn typeref_unknown_datatype_rejected() {
        let src = "typeref 'a ghost of nat with gnil <| 'a ghost(0)";
        assert!(env_from(src).is_err());
    }

    #[test]
    fn duplicate_datatype_rejected() {
        let src = "datatype t = A datatype t = B";
        assert!(env_from(src).is_err());
    }

    #[test]
    fn assert_registers_polymorphic_scheme() {
        let src = "assert pick <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a";
        let (env, _) = env_from(src).unwrap();
        let v = &env.values["pick"];
        assert_eq!(v.scheme.tyvars, vec!["a".to_string()]);
        let ml = env.ml_scheme("pick").unwrap();
        assert_eq!(ml.ty.to_string(), "'a array * int -> 'a");
    }

    #[test]
    fn lift_existentializes_indices() {
        let (env, mut gen) = env_from(LIST_DECL).unwrap();
        let lifted = env.lift(&MlTy::Con("seq".into(), vec![MlTy::int()]), &mut gen);
        match lifted {
            Ty::Sigma(b, body) => {
                assert_eq!(b.vars.len(), 1);
                assert!(b.guard.to_string().contains("0 <="), "nat guard: {}", b.guard);
                assert!(
                    matches!(*body, Ty::App(ref n, _, ref ixs) if n == "seq" && ixs.len() == 1)
                );
            }
            other => panic!("expected Sigma, got {other:?}"),
        }
        // int lifts to a singleton under Sigma.
        let li = env.lift(&MlTy::int(), &mut gen);
        assert!(matches!(li, Ty::Sigma(_, _)));
        // unit has no indices.
        assert_eq!(env.lift(&MlTy::unit(), &mut gen), Ty::unit());
    }

    #[test]
    fn lift_preserves_structure() {
        let (env, mut gen) = env_from("").unwrap();
        let t = MlTy::Arrow(
            Box::new(MlTy::Tuple(vec![MlTy::int(), MlTy::bool()])),
            Box::new(MlTy::unit()),
        );
        let l = env.lift(&t, &mut gen);
        match l {
            Ty::Arrow(dom, cod) => {
                assert!(matches!(*dom, Ty::Tuple(_)));
                assert_eq!(*cod, Ty::unit());
            }
            other => panic!("expected Arrow, got {other:?}"),
        }
    }
}
