//! First-order unification for erased ML types.

use crate::ml::MlTy;
use std::collections::HashMap;
use std::fmt;

/// A unification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyError {
    /// Constructor/shape mismatch.
    Mismatch(MlTy, MlTy),
    /// Occurs-check failure (infinite type).
    Occurs(u32, MlTy),
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Mismatch(a, b) => write!(f, "cannot unify `{a}` with `{b}`"),
            UnifyError::Occurs(u, t) => write!(f, "occurs check: ?u{u} in `{t}`"),
        }
    }
}

impl std::error::Error for UnifyError {}

/// A unifier: a store of unification-variable bindings.
#[derive(Debug, Clone, Default)]
pub struct Unifier {
    bindings: HashMap<u32, MlTy>,
    next: u32,
}

impl Unifier {
    /// Creates an empty unifier.
    pub fn new() -> Unifier {
        Unifier::default()
    }

    /// Allocates a fresh unification variable.
    pub fn fresh(&mut self) -> MlTy {
        let u = self.next;
        self.next += 1;
        MlTy::UVar(u)
    }

    /// Number of variables allocated.
    pub fn count(&self) -> u32 {
        self.next
    }

    /// Resolves the top-level constructor of `t` (path compression not
    /// applied; chains are short in practice).
    pub fn shallow_resolve(&self, t: &MlTy) -> MlTy {
        let mut t = t.clone();
        while let MlTy::UVar(u) = t {
            match self.bindings.get(&u) {
                Some(next) => t = next.clone(),
                None => return MlTy::UVar(u),
            }
        }
        t
    }

    /// Fully resolves a type, replacing all bound unification variables.
    pub fn resolve(&self, t: &MlTy) -> MlTy {
        match self.shallow_resolve(t) {
            MlTy::UVar(u) => MlTy::UVar(u),
            MlTy::Rigid(n) => MlTy::Rigid(n),
            MlTy::Con(n, args) => MlTy::Con(n, args.iter().map(|a| self.resolve(a)).collect()),
            MlTy::Tuple(ts) => MlTy::Tuple(ts.iter().map(|t| self.resolve(t)).collect()),
            MlTy::Arrow(a, b) => {
                MlTy::Arrow(Box::new(self.resolve(&a)), Box::new(self.resolve(&b)))
            }
        }
    }

    fn occurs(&self, u: u32, t: &MlTy) -> bool {
        match self.shallow_resolve(t) {
            MlTy::UVar(v) => v == u,
            MlTy::Rigid(_) => false,
            MlTy::Con(_, args) => args.iter().any(|a| self.occurs(u, a)),
            MlTy::Tuple(ts) => ts.iter().any(|t| self.occurs(u, t)),
            MlTy::Arrow(a, b) => self.occurs(u, &a) || self.occurs(u, &b),
        }
    }

    /// Unifies two types, extending the binding store.
    ///
    /// # Errors
    ///
    /// Returns [`UnifyError`] on shape mismatch or occurs-check failure; the
    /// store may be partially extended on failure (callers abort anyway).
    pub fn unify(&mut self, a: &MlTy, b: &MlTy) -> Result<(), UnifyError> {
        let a = self.shallow_resolve(a);
        let b = self.shallow_resolve(b);
        match (&a, &b) {
            (MlTy::UVar(u), MlTy::UVar(v)) if u == v => Ok(()),
            (MlTy::UVar(u), t) | (t, MlTy::UVar(u)) => {
                if self.occurs(*u, t) {
                    return Err(UnifyError::Occurs(*u, t.clone()));
                }
                self.bindings.insert(*u, t.clone());
                Ok(())
            }
            (MlTy::Rigid(x), MlTy::Rigid(y)) if x == y => Ok(()),
            (MlTy::Con(n, xs), MlTy::Con(m, ys)) if n == m && xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (MlTy::Tuple(xs), MlTy::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (MlTy::Arrow(x1, y1), MlTy::Arrow(x2, y2)) => {
                self.unify(x1, x2)?;
                self.unify(y1, y2)
            }
            _ => Err(UnifyError::Mismatch(self.resolve(&a), self.resolve(&b))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_var_with_type() {
        let mut u = Unifier::new();
        let v = u.fresh();
        u.unify(&v, &MlTy::int()).unwrap();
        assert_eq!(u.resolve(&v), MlTy::int());
    }

    #[test]
    fn unify_propagates_through_arrows() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let b = u.fresh();
        let f1 = MlTy::Arrow(Box::new(a.clone()), Box::new(b.clone()));
        let f2 = MlTy::Arrow(Box::new(MlTy::int()), Box::new(MlTy::bool()));
        u.unify(&f1, &f2).unwrap();
        assert_eq!(u.resolve(&a), MlTy::int());
        assert_eq!(u.resolve(&b), MlTy::bool());
    }

    #[test]
    fn mismatch_reported() {
        let mut u = Unifier::new();
        assert!(matches!(u.unify(&MlTy::int(), &MlTy::bool()), Err(UnifyError::Mismatch(_, _))));
    }

    #[test]
    fn occurs_check_fires() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let t = MlTy::Arrow(Box::new(a.clone()), Box::new(MlTy::int()));
        assert!(matches!(u.unify(&a, &t), Err(UnifyError::Occurs(_, _))));
    }

    #[test]
    fn var_var_chains_resolve() {
        let mut u = Unifier::new();
        let a = u.fresh();
        let b = u.fresh();
        u.unify(&a, &b).unwrap();
        u.unify(&b, &MlTy::unit()).unwrap();
        assert_eq!(u.resolve(&a), MlTy::unit());
    }

    #[test]
    fn rigid_variables_only_unify_with_themselves() {
        let mut u = Unifier::new();
        let r = MlTy::Rigid("a".into());
        assert!(u.unify(&r, &r.clone()).is_ok());
        assert!(u.unify(&r, &MlTy::Rigid("b".into())).is_err());
        assert!(u.unify(&r, &MlTy::int()).is_err());
    }

    #[test]
    fn tuples_unify_pointwise() {
        let mut u = Unifier::new();
        let a = u.fresh();
        u.unify(
            &MlTy::Tuple(vec![a.clone(), MlTy::int()]),
            &MlTy::Tuple(vec![MlTy::bool(), MlTy::int()]),
        )
        .unwrap();
        assert_eq!(u.resolve(&a), MlTy::bool());
        assert!(u
            .unify(&MlTy::Tuple(vec![MlTy::int()]), &MlTy::Tuple(vec![MlTy::int(), MlTy::int()]))
            .is_err());
    }
}
