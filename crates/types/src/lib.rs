//! The type system of DML: internal dependent types, erasure to ML types,
//! unification, and phase-1 Hindley–Milner inference.
//!
//! Elaboration is a two-phase process (§3 of the paper):
//!
//! 1. *Phase 1* (this crate, [`infer`]): "we ignore dependent type
//!    annotations and simply perform the type inference of ML". This makes
//!    the extension **conservative**: a program with no dependent annotation
//!    elaborates and evaluates exactly as in ML.
//! 2. *Phase 2* (`dml-elab`): a second bidirectional traversal collects
//!    index constraints from the dependent annotations.
//!
//! This crate provides:
//! * [`ty`] — the internal dependent type language (Π/Σ/families/products);
//! * [`ml`] + [`unify`] — erased ML types and unification;
//! * [`infer`] — Hindley–Milner inference with the value restriction;
//! * [`convert`] — elaboration of surface [`dml_syntax`] types into
//!   internal types over the semantic index language of [`dml_index`];
//! * [`builtins`] — the dependent signatures of the refined standard basis
//!   (`+`, `sub`, `update`, `length`, `nth`, ...) from §2.1 and §3.1;
//! * [`env`](mod@env) — program environments: datatypes, typerefs, value
//!   signatures.

pub mod builtins;
pub mod convert;
pub mod env;
pub mod infer;
pub mod ml;
pub mod ty;
pub mod unify;

pub use env::{ConInfo, Env, TyperefInfo};
pub use infer::{infer_program, InferError, InferResult};
pub use ml::{MlScheme, MlTy};
pub use ty::{Binder, Ix, Scheme, Ty};
