//! The internal dependent type language.
//!
//! ```text
//! τ ::= 'a | (τ₁,...,τₙ) δ (i₁,...,iₖ) | τ₁ * ... * τₙ | τ₁ → τ₂
//!     | Π{a⃗:γ⃗ | g}. τ | Σ{a⃗:γ⃗ | g}. τ
//! ```
//!
//! Subset sorts are normalised away: a binder carries base-sorted variables
//! plus one guard proposition (`nat` becomes `int` with guard `0 <= a`).

use dml_index::{IExp, Prop, Sort, Var, VarGen};
use std::collections::BTreeSet;
use std::fmt;

/// An index argument of a type family: integer expression or boolean
/// proposition (for `bool(b)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ix {
    /// Integer index.
    Int(IExp),
    /// Boolean index.
    Bool(Prop),
}

impl Ix {
    /// Substitutes an integer expression for an index variable.
    pub fn subst(&self, v: &Var, e: &IExp) -> Ix {
        match self {
            Ix::Int(i) => Ix::Int(i.subst(v, e)),
            Ix::Bool(p) => Ix::Bool(p.subst(v, e)),
        }
    }

    /// Free index variables.
    pub fn free_vars_into(&self, out: &mut BTreeSet<Var>) {
        match self {
            Ix::Int(i) => i.free_vars_into(out),
            Ix::Bool(p) => p.free_vars_into(out),
        }
    }
}

impl fmt::Display for Ix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ix::Int(i) => write!(f, "{i}"),
            Ix::Bool(p) => write!(f, "{p}"),
        }
    }
}

/// A quantifier binder: variables with base sorts plus a guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binder {
    /// Bound index variables with their base sorts.
    pub vars: Vec<(Var, Sort)>,
    /// Guard proposition (conjunction of subset-sort guards and the
    /// explicit `| b` guard); `Prop::True` when absent.
    pub guard: Prop,
}

impl Default for Binder {
    fn default() -> Self {
        Binder { vars: Vec::new(), guard: Prop::True }
    }
}

impl Binder {
    /// A binder with no guard.
    pub fn new(vars: Vec<(Var, Sort)>) -> Binder {
        Binder { vars, guard: Prop::True }
    }

    /// A binder with a guard.
    pub fn guarded(vars: Vec<(Var, Sort)>, guard: Prop) -> Binder {
        Binder { vars, guard }
    }
}

/// An internal dependent type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// A rigid (universally bound) ML type variable `'a`.
    Rigid(String),
    /// A phase-2 instantiation metavariable for a polymorphic application,
    /// resolved by the elaborator's [`MetaStore`](crate::unify) analogue.
    Meta(u32),
    /// A type family applied to type and index arguments: `int(n)`,
    /// `bool(b)`, `'a array(n)`, `'a list(n)`, user datatypes, `unit`
    /// (`App("unit", [], [])`).
    App(String, Vec<Ty>, Vec<Ix>),
    /// Product type (n ≥ 2).
    Tuple(Vec<Ty>),
    /// Function type.
    Arrow(Box<Ty>, Box<Ty>),
    /// Universal quantification `Π binder. τ`.
    Pi(Binder, Box<Ty>),
    /// Existential quantification `Σ binder. τ`.
    Sigma(Binder, Box<Ty>),
}

impl Ty {
    /// The `unit` type.
    pub fn unit() -> Ty {
        Ty::App("unit".into(), Vec::new(), Vec::new())
    }

    /// Unindexed `int` (elaboration interprets it existentially on demand).
    pub fn int() -> Ty {
        Ty::App("int".into(), Vec::new(), Vec::new())
    }

    /// The singleton type `int(e)`.
    pub fn int_singleton(e: IExp) -> Ty {
        Ty::App("int".into(), Vec::new(), vec![Ix::Int(e)])
    }

    /// Unindexed `bool`.
    pub fn bool() -> Ty {
        Ty::App("bool".into(), Vec::new(), Vec::new())
    }

    /// The singleton type `bool(p)`.
    pub fn bool_singleton(p: Prop) -> Ty {
        Ty::App("bool".into(), Vec::new(), vec![Ix::Bool(p)])
    }

    /// `'a array(n)`.
    pub fn array(elem: Ty, len: IExp) -> Ty {
        Ty::App("array".into(), vec![elem], vec![Ix::Int(len)])
    }

    /// `'a list(n)`.
    pub fn list(elem: Ty, len: IExp) -> Ty {
        Ty::App("list".into(), vec![elem], vec![Ix::Int(len)])
    }

    /// Substitutes an index expression for an index variable throughout.
    pub fn subst(&self, v: &Var, e: &IExp) -> Ty {
        match self {
            Ty::Rigid(_) | Ty::Meta(_) => self.clone(),
            Ty::App(name, tys, ixs) => Ty::App(
                name.clone(),
                tys.iter().map(|t| t.subst(v, e)).collect(),
                ixs.iter().map(|i| i.subst(v, e)).collect(),
            ),
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| t.subst(v, e)).collect()),
            Ty::Arrow(a, b) => Ty::Arrow(Box::new(a.subst(v, e)), Box::new(b.subst(v, e))),
            Ty::Pi(b, t) => {
                debug_assert!(b.vars.iter().all(|(w, _)| w != v), "unique binder ids");
                Ty::Pi(
                    Binder { vars: b.vars.clone(), guard: b.guard.subst(v, e) },
                    Box::new(t.subst(v, e)),
                )
            }
            Ty::Sigma(b, t) => {
                debug_assert!(b.vars.iter().all(|(w, _)| w != v), "unique binder ids");
                Ty::Sigma(
                    Binder { vars: b.vars.clone(), guard: b.guard.subst(v, e) },
                    Box::new(t.subst(v, e)),
                )
            }
        }
    }

    /// Substitutes a type for a rigid type variable.
    pub fn subst_rigid(&self, name: &str, replacement: &Ty) -> Ty {
        match self {
            Ty::Rigid(n) if n == name => replacement.clone(),
            Ty::Rigid(_) | Ty::Meta(_) => self.clone(),
            Ty::App(fname, tys, ixs) => Ty::App(
                fname.clone(),
                tys.iter().map(|t| t.subst_rigid(name, replacement)).collect(),
                ixs.clone(),
            ),
            Ty::Tuple(ts) => {
                Ty::Tuple(ts.iter().map(|t| t.subst_rigid(name, replacement)).collect())
            }
            Ty::Arrow(a, b) => Ty::Arrow(
                Box::new(a.subst_rigid(name, replacement)),
                Box::new(b.subst_rigid(name, replacement)),
            ),
            Ty::Pi(b, t) => Ty::Pi(b.clone(), Box::new(t.subst_rigid(name, replacement))),
            Ty::Sigma(b, t) => Ty::Sigma(b.clone(), Box::new(t.subst_rigid(name, replacement))),
        }
    }

    /// Renames all index binders to fresh variables (alpha-conversion), so
    /// a signature can be instantiated several times without id collisions.
    pub fn refresh(&self, gen: &mut VarGen) -> Ty {
        match self {
            Ty::Rigid(_) | Ty::Meta(_) => self.clone(),
            Ty::App(name, tys, ixs) => {
                Ty::App(name.clone(), tys.iter().map(|t| t.refresh(gen)).collect(), ixs.clone())
            }
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| t.refresh(gen)).collect()),
            Ty::Arrow(a, b) => Ty::Arrow(Box::new(a.refresh(gen)), Box::new(b.refresh(gen))),
            Ty::Pi(b, t) | Ty::Sigma(b, t) => {
                let mut vars = Vec::with_capacity(b.vars.len());
                let mut guard = b.guard.clone();
                let mut body = t.as_ref().clone();
                for (v, s) in &b.vars {
                    let fresh = gen.fresh(v.name());
                    guard = guard.subst(v, &IExp::var(fresh.clone()));
                    body = body.subst(v, &IExp::var(fresh.clone()));
                    // Boolean binders: also substitute at the prop level.
                    if s.is_bool() {
                        guard = guard.subst_bool(v, &Prop::BVar(fresh.clone()));
                        body = body.subst_bvar(v, &fresh);
                    }
                    vars.push((fresh, *s));
                }
                let body = body.refresh(gen);
                let binder = Binder { vars, guard };
                if matches!(self, Ty::Pi(_, _)) {
                    Ty::Pi(binder, Box::new(body))
                } else {
                    Ty::Sigma(binder, Box::new(body))
                }
            }
        }
    }

    /// Substitutes a boolean variable for a boolean variable (helper for
    /// [`Ty::refresh`]).
    pub fn subst_bvar(&self, v: &Var, fresh: &Var) -> Ty {
        let p = Prop::BVar(fresh.clone());
        match self {
            Ty::Rigid(_) | Ty::Meta(_) => self.clone(),
            Ty::App(name, tys, ixs) => Ty::App(
                name.clone(),
                tys.iter().map(|t| t.subst_bvar(v, fresh)).collect(),
                ixs.iter()
                    .map(|i| match i {
                        Ix::Int(e) => Ix::Int(e.clone()),
                        Ix::Bool(q) => Ix::Bool(q.subst_bool(v, &p)),
                    })
                    .collect(),
            ),
            Ty::Tuple(ts) => Ty::Tuple(ts.iter().map(|t| t.subst_bvar(v, fresh)).collect()),
            Ty::Arrow(a, b) => {
                Ty::Arrow(Box::new(a.subst_bvar(v, fresh)), Box::new(b.subst_bvar(v, fresh)))
            }
            Ty::Pi(b, t) => Ty::Pi(
                Binder { vars: b.vars.clone(), guard: b.guard.subst_bool(v, &p) },
                Box::new(t.subst_bvar(v, fresh)),
            ),
            Ty::Sigma(b, t) => Ty::Sigma(
                Binder { vars: b.vars.clone(), guard: b.guard.subst_bool(v, &p) },
                Box::new(t.subst_bvar(v, fresh)),
            ),
        }
    }

    /// Free index variables of the type.
    pub fn free_index_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.free_index_vars_into(&mut out);
        out
    }

    fn free_index_vars_into(&self, out: &mut BTreeSet<Var>) {
        match self {
            Ty::Rigid(_) | Ty::Meta(_) => {}
            Ty::App(_, tys, ixs) => {
                for t in tys {
                    t.free_index_vars_into(out);
                }
                for i in ixs {
                    i.free_vars_into(out);
                }
            }
            Ty::Tuple(ts) => {
                for t in ts {
                    t.free_index_vars_into(out);
                }
            }
            Ty::Arrow(a, b) => {
                a.free_index_vars_into(out);
                b.free_index_vars_into(out);
            }
            Ty::Pi(b, t) | Ty::Sigma(b, t) => {
                let mut inner = BTreeSet::new();
                b.guard.free_vars_into(&mut inner);
                t.free_index_vars_into(&mut inner);
                for (v, _) in &b.vars {
                    inner.remove(v);
                }
                out.extend(inner);
            }
        }
    }

    /// Strips leading Π binders, returning them and the body.
    pub fn strip_pis(&self) -> (Vec<&Binder>, &Ty) {
        let mut binders = Vec::new();
        let mut t = self;
        while let Ty::Pi(b, body) = t {
            binders.push(b);
            t = body;
        }
        (binders, t)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn binder(b: &Binder, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let mut first = true;
            for (v, s) in &b.vars {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{v}:{s}")?;
            }
            if b.guard != Prop::True {
                write!(f, " | {}", b.guard)?;
            }
            Ok(())
        }
        fn go(t: &Ty, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match t {
                Ty::Rigid(n) => write!(f, "'{n}"),
                Ty::Meta(k) => write!(f, "?{k}"),
                Ty::App(name, tys, ixs) => {
                    match tys.len() {
                        0 => {}
                        1 => {
                            go(&tys[0], f, 2)?;
                            write!(f, " ")?;
                        }
                        _ => {
                            write!(f, "(")?;
                            for (k, a) in tys.iter().enumerate() {
                                if k > 0 {
                                    write!(f, ", ")?;
                                }
                                go(a, f, 0)?;
                            }
                            write!(f, ") ")?;
                        }
                    }
                    write!(f, "{name}")?;
                    if !ixs.is_empty() {
                        write!(f, "(")?;
                        for (k, i) in ixs.iter().enumerate() {
                            if k > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{i}")?;
                        }
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Ty::Tuple(ts) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    for (k, x) in ts.iter().enumerate() {
                        if k > 0 {
                            write!(f, " * ")?;
                        }
                        go(x, f, 2)?;
                    }
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Ty::Arrow(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, " -> ")?;
                    go(b, f, 0)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Ty::Pi(b, body) => {
                    write!(f, "{{")?;
                    binder(b, f)?;
                    write!(f, "}} ")?;
                    go(body, f, prec)
                }
                Ty::Sigma(b, body) => {
                    write!(f, "[")?;
                    binder(b, f)?;
                    write!(f, "] ")?;
                    go(body, f, prec)
                }
            }
        }
        go(self, f, 0)
    }
}

/// An ML-polymorphic dependent type scheme `∀'a⃗. τ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// Universally quantified ML type variables.
    pub tyvars: Vec<String>,
    /// The body, with [`Ty::Rigid`] occurrences of the bound variables.
    pub ty: Ty,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Ty) -> Scheme {
        Scheme { tyvars: Vec::new(), ty }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_paper_types() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let i = g.fresh("i");
        // {n:int | 0 <= n} {i:int | 0 <= i && i < n} 'a array(n) * int(i) -> 'a
        let t = Ty::Pi(
            Binder::guarded(
                vec![(n.clone(), Sort::Int)],
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
            ),
            Box::new(Ty::Pi(
                Binder::guarded(
                    vec![(i.clone(), Sort::Int)],
                    Prop::le(IExp::lit(0), IExp::var(i.clone()))
                        .and(Prop::lt(IExp::var(i.clone()), IExp::var(n.clone()))),
                ),
                Box::new(Ty::Arrow(
                    Box::new(Ty::Tuple(vec![
                        Ty::array(Ty::Rigid("a".into()), IExp::var(n)),
                        Ty::int_singleton(IExp::var(i)),
                    ])),
                    Box::new(Ty::Rigid("a".into())),
                )),
            )),
        );
        let s = t.to_string();
        assert!(s.contains("'a array(n) * int(i) -> 'a"), "{s}");
        assert!(s.contains("{n:int | 0 <= n}"), "{s}");
    }

    #[test]
    fn subst_into_indices() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let t = Ty::array(Ty::int(), IExp::var(n.clone()));
        let t2 = t.subst(&n, &IExp::lit(5));
        assert_eq!(t2, Ty::array(Ty::int(), IExp::lit(5)));
    }

    #[test]
    fn refresh_renames_binders() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let t = Ty::Pi(
            Binder::guarded(
                vec![(n.clone(), Sort::Int)],
                Prop::le(IExp::lit(0), IExp::var(n.clone())),
            ),
            Box::new(Ty::array(Ty::int(), IExp::var(n.clone()))),
        );
        let t2 = t.refresh(&mut g);
        match &t2 {
            Ty::Pi(b, body) => {
                let (v2, _) = &b.vars[0];
                assert_ne!(*v2, n, "binder renamed");
                assert!(body.free_index_vars().contains(v2));
                assert!(!body.free_index_vars().contains(&n));
            }
            other => panic!("expected Pi, got {other:?}"),
        }
    }

    #[test]
    fn free_index_vars_respect_binders() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m = g.fresh("m");
        let t = Ty::Pi(
            Binder::new(vec![(n.clone(), Sort::Int)]),
            Box::new(Ty::Tuple(vec![
                Ty::int_singleton(IExp::var(n.clone())),
                Ty::int_singleton(IExp::var(m.clone())),
            ])),
        );
        let fv = t.free_index_vars();
        assert!(fv.contains(&m));
        assert!(!fv.contains(&n));
    }

    #[test]
    fn subst_rigid_replaces_type_var() {
        let t = Ty::Arrow(Box::new(Ty::Rigid("a".into())), Box::new(Ty::Rigid("a".into())));
        let t2 = t.subst_rigid("a", &Ty::int());
        assert_eq!(t2, Ty::Arrow(Box::new(Ty::int()), Box::new(Ty::int())));
    }

    #[test]
    fn strip_pis_returns_binders() {
        let mut g = VarGen::new();
        let n = g.fresh("n");
        let m = g.fresh("m");
        let t = Ty::Pi(
            Binder::new(vec![(n, Sort::Int)]),
            Box::new(Ty::Pi(Binder::new(vec![(m, Sort::Int)]), Box::new(Ty::int()))),
        );
        let (bs, body) = t.strip_pis();
        assert_eq!(bs.len(), 2);
        assert_eq!(*body, Ty::int());
    }
}
