//! Phase 1: ML (Hindley–Milner) type inference over erased types.
//!
//! "In the first phase, we ignore dependent type annotations and simply
//! perform the type inference of ML" (§3). Dependent annotations are erased
//! to their ML skeletons and *checked* against the inferred types, keeping
//! the extension conservative. The result records an ML scheme for every
//! `fun`/`val` binder (keyed by the binder's source span) so that phase 2
//! can lift the types of unannotated bindings.

use crate::env::Env;
use crate::ml::{MlScheme, MlTy};
use crate::unify::Unifier;
use dml_syntax::ast as sast;
use dml_syntax::Span;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A phase-1 type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferError {
    /// Human-readable message.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl InferError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        InferError { message: message.into(), span }
    }
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for InferError {}

/// The result of phase-1 inference.
#[derive(Debug, Clone, Default)]
pub struct InferResult {
    /// ML scheme per binder, keyed by the binder identifier's span.
    pub schemes: HashMap<Span, MlScheme>,
    /// Final top-level value environment.
    pub top_level: HashMap<String, MlScheme>,
}

/// Runs phase-1 inference over a program whose `datatype`/`typeref`/
/// `assert` declarations have already been registered in `env`.
///
/// # Errors
///
/// Returns the first [`InferError`] encountered (unbound variable,
/// unification failure, malformed annotation, arity mismatch).
pub fn infer_program(program: &sast::Program, env: &Env) -> Result<InferResult, InferError> {
    let exceptions: std::collections::HashSet<String> =
        ["Subscript", "Div", "Size", "Match", "Overflow"].iter().map(|s| s.to_string()).collect();
    let mut inf =
        Inferencer { env, uni: Unifier::new(), result: InferResult::default(), exceptions };
    let mut vals: HashMap<String, MlScheme> = HashMap::new();
    for d in &program.decls {
        inf.decl(d, &mut vals)?;
    }
    // Resolve all recorded schemes fully.
    for s in inf.result.schemes.values_mut() {
        s.ty = inf.uni.resolve(&s.ty);
    }
    for (name, s) in &vals {
        inf.result
            .top_level
            .insert(name.clone(), MlScheme { vars: s.vars.clone(), ty: inf.uni.resolve(&s.ty) });
    }
    Ok(inf.result)
}

struct Inferencer<'e> {
    env: &'e Env,
    uni: Unifier,
    result: InferResult,
    /// Declared exception names (plus the SML basis built-ins).
    exceptions: std::collections::HashSet<String>,
}

impl<'e> Inferencer<'e> {
    fn fresh(&mut self) -> MlTy {
        self.uni.fresh()
    }

    fn unify(&mut self, a: &MlTy, b: &MlTy, span: Span) -> Result<(), InferError> {
        self.uni.unify(a, b).map_err(|e| InferError::new(e.to_string(), span))
    }

    fn instantiate(&mut self, scheme: &MlScheme) -> MlTy {
        if scheme.vars.is_empty() {
            return scheme.ty.clone();
        }
        let mut map = HashMap::new();
        for v in &scheme.vars {
            map.insert(v.clone(), self.fresh());
        }
        scheme.ty.subst_rigids(&|n| map.get(n).cloned())
    }

    /// Generalises `ty` over unification variables not free in `vals`.
    fn generalize(&mut self, ty: &MlTy, vals: &HashMap<String, MlScheme>) -> MlScheme {
        let ty = self.uni.resolve(ty);
        let mut ty_uvars = BTreeSet::new();
        ty.uvars_into(&mut ty_uvars);
        if ty_uvars.is_empty() {
            let mut vars = BTreeSet::new();
            ty.rigids_into(&mut vars);
            // Rigids introduced by explicit scoping generalize too; rigids
            // from the surrounding scope are not re-quantified, but at the
            // top level there is no surrounding rigid scope.
            return MlScheme { vars: vars.into_iter().collect(), ty };
        }
        let mut env_uvars = BTreeSet::new();
        for s in vals.values() {
            self.uni.resolve(&s.ty).uvars_into(&mut env_uvars);
        }
        let gen_uvars: Vec<u32> = ty_uvars.difference(&env_uvars).copied().collect();
        let mut names = Vec::new();
        let mut renaming: HashMap<u32, String> = HashMap::new();
        for (k, u) in gen_uvars.iter().enumerate() {
            let name = format!("t{k}");
            renaming.insert(*u, name.clone());
            names.push(name);
        }
        let ty2 = rename_uvars(&ty, &renaming);
        let mut rigids = BTreeSet::new();
        ty2.rigids_into(&mut rigids);
        MlScheme { vars: rigids.into_iter().collect(), ty: ty2 }
    }

    // -----------------------------------------------------------------
    // Declarations.
    // -----------------------------------------------------------------

    fn decl(
        &mut self,
        d: &sast::Decl,
        vals: &mut HashMap<String, MlScheme>,
    ) -> Result<(), InferError> {
        match d {
            // Environment-shaping declarations were processed before
            // inference began.
            sast::Decl::Datatype(_) | sast::Decl::Typeref(_) | sast::Decl::Assert(_) => Ok(()),
            sast::Decl::Exception(name) => {
                self.exceptions.insert(name.name.clone());
                Ok(())
            }
            sast::Decl::Fun(funs) => self.fun_group(funs, vals),
            sast::Decl::Val(v) => self.val_decl(v, vals),
        }
    }

    fn fun_group(
        &mut self,
        funs: &[sast::FunDecl],
        vals: &mut HashMap<String, MlScheme>,
    ) -> Result<(), InferError> {
        // Bind every function monomorphically for the recursive knot.
        let mut fun_tys = Vec::with_capacity(funs.len());
        for f in funs {
            let ty = match &f.anno {
                Some(anno) => self.ml_of_dtype(anno)?,
                None => self.fresh(),
            };
            vals.insert(f.name.name.clone(), MlScheme::mono(ty.clone()));
            fun_tys.push(ty);
        }
        for (f, fty) in funs.iter().zip(&fun_tys) {
            self.fun_clauses(f, fty, vals)?;
        }
        // Generalise after the whole group is checked.
        for (f, fty) in funs.iter().zip(&fun_tys) {
            vals.remove(&f.name.name);
            let scheme = self.generalize(fty, vals);
            self.result.schemes.insert(f.name.span, scheme.clone());
            vals.insert(f.name.name.clone(), scheme);
        }
        Ok(())
    }

    fn fun_clauses(
        &mut self,
        f: &sast::FunDecl,
        fty: &MlTy,
        vals: &HashMap<String, MlScheme>,
    ) -> Result<(), InferError> {
        let arity = f.clauses.first().map(|c| c.params.len()).unwrap_or(0);
        for c in &f.clauses {
            if c.params.len() != arity {
                return Err(InferError::new(
                    format!(
                        "clauses of `{}` have inconsistent arities ({} vs {})",
                        f.name.name,
                        arity,
                        c.params.len()
                    ),
                    f.name.span,
                ));
            }
        }
        // fty = A1 -> A2 -> ... -> An -> B
        let mut arg_tys = Vec::with_capacity(arity);
        let mut res = fty.clone();
        for _ in 0..arity {
            let a = self.fresh();
            let b = self.fresh();
            self.unify(&res, &MlTy::Arrow(Box::new(a.clone()), Box::new(b.clone())), f.name.span)?;
            arg_tys.push(a);
            res = b;
        }
        for c in &f.clauses {
            let mut scope = vals.clone();
            for (p, a) in c.params.iter().zip(&arg_tys) {
                let pt = self.pat(p, &mut scope)?;
                self.unify(&pt, a, p.span())?;
            }
            let bt = self.expr(&c.body, &scope)?;
            self.unify(&bt, &res, c.body.span())?;
        }
        Ok(())
    }

    fn val_decl(
        &mut self,
        v: &sast::ValDecl,
        vals: &mut HashMap<String, MlScheme>,
    ) -> Result<(), InferError> {
        let et = self.expr(&v.expr, vals)?;
        if let Some(anno) = &v.anno {
            let at = self.ml_of_dtype(anno)?;
            self.unify(&et, &at, v.span)?;
        }
        let mut scope = vals.clone();
        let pt = self.pat(&v.pat, &mut scope)?;
        self.unify(&pt, &et, v.pat.span())?;
        // Value restriction: only generalise syntactic values.
        let generalizable = is_syntactic_value(&v.expr);
        for bound in v.pat.bound_vars() {
            let raw = scope.get(&bound.name).expect("pattern bound").clone();
            let scheme = if generalizable {
                self.generalize(&raw.ty, vals)
            } else {
                MlScheme::mono(self.uni.resolve(&raw.ty))
            };
            self.result.schemes.insert(bound.span, scheme.clone());
            vals.insert(bound.name.clone(), scheme);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Patterns.
    // -----------------------------------------------------------------

    fn pat(
        &mut self,
        p: &sast::Pat,
        scope: &mut HashMap<String, MlScheme>,
    ) -> Result<MlTy, InferError> {
        match p {
            sast::Pat::Wild(_) => Ok(self.fresh()),
            sast::Pat::Int(_, _) => Ok(MlTy::int()),
            sast::Pat::Bool(_, _) => Ok(MlTy::bool()),
            sast::Pat::Var(id) => {
                if self.env.is_constructor(&id.name) {
                    let con = &self.env.cons[&id.name];
                    if con.arg.is_some() {
                        return Err(InferError::new(
                            format!("constructor `{}` expects an argument", id.name),
                            id.span,
                        ));
                    }
                    Ok(self.instantiate_con_result(&id.name))
                } else {
                    let t = self.fresh();
                    scope.insert(id.name.clone(), MlScheme::mono(t.clone()));
                    Ok(t)
                }
            }
            sast::Pat::Tuple(ps, _) => {
                if ps.is_empty() {
                    return Ok(MlTy::unit());
                }
                let ts = ps.iter().map(|p| self.pat(p, scope)).collect::<Result<Vec<_>, _>>()?;
                Ok(MlTy::Tuple(ts))
            }
            sast::Pat::Con(id, arg, span) => {
                if !self.env.is_constructor(&id.name) {
                    return Err(InferError::new(
                        format!("unknown constructor `{}`", id.name),
                        id.span,
                    ));
                }
                let (arg_ty, res_ty) = self.instantiate_con(&id.name);
                match (arg, arg_ty) {
                    (Some(p), Some(at)) => {
                        let pt = self.pat(p, scope)?;
                        self.unify(&pt, &at, *span)?;
                        Ok(res_ty)
                    }
                    (None, None) => Ok(res_ty),
                    (Some(_), None) => Err(InferError::new(
                        format!("constructor `{}` takes no argument", id.name),
                        *span,
                    )),
                    (None, Some(_)) => Err(InferError::new(
                        format!("constructor `{}` expects an argument", id.name),
                        *span,
                    )),
                }
            }
            sast::Pat::Anno(inner, t, span) => {
                let pt = self.pat(inner, scope)?;
                let at = self.ml_of_dtype(t)?;
                self.unify(&pt, &at, *span)?;
                Ok(pt)
            }
        }
    }

    fn instantiate_con(&mut self, name: &str) -> (Option<MlTy>, MlTy) {
        let con = &self.env.cons[name];
        let mut map = HashMap::new();
        for v in &con.tyvars {
            map.insert(v.clone(), self.fresh());
        }
        let arg = con.arg_ml().map(|t| t.subst_rigids(&|n| map.get(n).cloned()));
        let res = con.result_ml().subst_rigids(&|n| map.get(n).cloned());
        (arg, res)
    }

    fn instantiate_con_result(&mut self, name: &str) -> MlTy {
        self.instantiate_con(name).1
    }

    // -----------------------------------------------------------------
    // Expressions.
    // -----------------------------------------------------------------

    fn expr(
        &mut self,
        e: &sast::Expr,
        vals: &HashMap<String, MlScheme>,
    ) -> Result<MlTy, InferError> {
        match e {
            sast::Expr::Var(id) => {
                if let Some(s) = vals.get(&id.name) {
                    let s = s.clone();
                    return Ok(self.instantiate(&s));
                }
                if self.env.is_constructor(&id.name) {
                    let (arg, res) = self.instantiate_con(&id.name);
                    return Ok(match arg {
                        None => res,
                        Some(a) => MlTy::Arrow(Box::new(a), Box::new(res)),
                    });
                }
                if let Some(s) = self.env.ml_scheme(&id.name) {
                    return Ok(self.instantiate(&s));
                }
                Err(InferError::new(format!("unbound variable `{}`", id.name), id.span))
            }
            sast::Expr::Int(_, _) => Ok(MlTy::int()),
            sast::Expr::Bool(_, _) => Ok(MlTy::bool()),
            sast::Expr::App(f, a, span) => {
                let tf = self.expr(f, vals)?;
                let ta = self.expr(a, vals)?;
                let r = self.fresh();
                self.unify(&tf, &MlTy::Arrow(Box::new(ta), Box::new(r.clone())), *span)?;
                Ok(r)
            }
            sast::Expr::Tuple(es, _) => {
                if es.is_empty() {
                    return Ok(MlTy::unit());
                }
                let ts = es.iter().map(|x| self.expr(x, vals)).collect::<Result<Vec<_>, _>>()?;
                Ok(MlTy::Tuple(ts))
            }
            sast::Expr::If(c, t, f, span) => {
                let ct = self.expr(c, vals)?;
                self.unify(&ct, &MlTy::bool(), c.span())?;
                let tt = self.expr(t, vals)?;
                let ft = self.expr(f, vals)?;
                self.unify(&tt, &ft, *span)?;
                Ok(tt)
            }
            sast::Expr::Case(scrut, arms, span) => {
                let st = self.expr(scrut, vals)?;
                let result = self.fresh();
                for (p, body) in arms {
                    let mut scope = vals.clone();
                    let pt = self.pat(p, &mut scope)?;
                    self.unify(&pt, &st, p.span())?;
                    let bt = self.expr(body, &scope)?;
                    self.unify(&bt, &result, *span)?;
                }
                Ok(result)
            }
            sast::Expr::Let(decls, body, _) => {
                let mut scope = vals.clone();
                for d in decls {
                    match d {
                        sast::Decl::Datatype(dd) => {
                            return Err(InferError::new(
                                "datatype declarations are not supported in `let`",
                                dd.name.span,
                            ))
                        }
                        other => self.decl(other, &mut scope)?,
                    }
                }
                self.expr(body, &scope)
            }
            sast::Expr::Fn(arms, span) => {
                let pt = self.fresh();
                let bt = self.fresh();
                for (p, body) in arms {
                    let mut scope = vals.clone();
                    let t = self.pat(p, &mut scope)?;
                    self.unify(&t, &pt, p.span())?;
                    let b = self.expr(body, &scope)?;
                    self.unify(&b, &bt, *span)?;
                }
                Ok(MlTy::Arrow(Box::new(pt), Box::new(bt)))
            }
            sast::Expr::Seq(es, _) => {
                let mut last = MlTy::unit();
                for x in es {
                    last = self.expr(x, vals)?;
                }
                Ok(last)
            }
            sast::Expr::Anno(inner, t, span) => {
                let it = self.expr(inner, vals)?;
                let at = self.ml_of_dtype(t)?;
                self.unify(&it, &at, *span)?;
                Ok(at)
            }
            sast::Expr::Andalso(a, b, _) | sast::Expr::Orelse(a, b, _) => {
                let at = self.expr(a, vals)?;
                self.unify(&at, &MlTy::bool(), a.span())?;
                let bt = self.expr(b, vals)?;
                self.unify(&bt, &MlTy::bool(), b.span())?;
                Ok(MlTy::bool())
            }
            sast::Expr::Raise(name, _) => {
                if !self.exceptions.contains(&name.name) {
                    return Err(InferError::new(
                        format!("unknown exception `{}`", name.name),
                        name.span,
                    ));
                }
                // `raise` has any type.
                Ok(self.fresh())
            }
            sast::Expr::Handle(body, arms, span) => {
                let bt = self.expr(body, vals)?;
                for (name, h) in arms {
                    if !self.exceptions.contains(&name.name) {
                        return Err(InferError::new(
                            format!("unknown exception `{}`", name.name),
                            name.span,
                        ));
                    }
                    let ht = self.expr(h, vals)?;
                    self.unify(&ht, &bt, *span)?;
                }
                Ok(bt)
            }
        }
    }

    /// Erases a surface dependent type directly to an ML type (indices are
    /// ignored entirely, so this needs no index-variable scope).
    fn ml_of_dtype(&mut self, t: &sast::DType) -> Result<MlTy, InferError> {
        match t {
            sast::DType::Var(id) => Ok(MlTy::Rigid(id.name.clone())),
            sast::DType::App { name, ty_args, .. } => {
                let sig = self.env.families.get(&name.name).ok_or_else(|| {
                    InferError::new(format!("unknown type `{}`", name.name), name.span)
                })?;
                if ty_args.len() != sig.ty_arity {
                    return Err(InferError::new(
                        format!(
                            "type `{}` expects {} type argument(s), got {}",
                            name.name,
                            sig.ty_arity,
                            ty_args.len()
                        ),
                        name.span,
                    ));
                }
                let args =
                    ty_args.iter().map(|a| self.ml_of_dtype(a)).collect::<Result<Vec<_>, _>>()?;
                Ok(MlTy::Con(name.name.clone(), args))
            }
            sast::DType::Product(ps) => {
                let ts = ps.iter().map(|p| self.ml_of_dtype(p)).collect::<Result<Vec<_>, _>>()?;
                Ok(MlTy::Tuple(ts))
            }
            sast::DType::Arrow(a, b) => {
                Ok(MlTy::Arrow(Box::new(self.ml_of_dtype(a)?), Box::new(self.ml_of_dtype(b)?)))
            }
            sast::DType::Pi(_, body) | sast::DType::Sigma(_, body) => self.ml_of_dtype(body),
        }
    }
}

fn rename_uvars(t: &MlTy, renaming: &HashMap<u32, String>) -> MlTy {
    match t {
        MlTy::UVar(u) => match renaming.get(u) {
            Some(n) => MlTy::Rigid(n.clone()),
            None => MlTy::UVar(*u),
        },
        MlTy::Rigid(n) => MlTy::Rigid(n.clone()),
        MlTy::Con(n, args) => {
            MlTy::Con(n.clone(), args.iter().map(|a| rename_uvars(a, renaming)).collect())
        }
        MlTy::Tuple(ts) => MlTy::Tuple(ts.iter().map(|t| rename_uvars(t, renaming)).collect()),
        MlTy::Arrow(a, b) => {
            MlTy::Arrow(Box::new(rename_uvars(a, renaming)), Box::new(rename_uvars(b, renaming)))
        }
    }
}

/// Syntactic values for the value restriction.
fn is_syntactic_value(e: &sast::Expr) -> bool {
    match e {
        sast::Expr::Var(_)
        | sast::Expr::Int(_, _)
        | sast::Expr::Bool(_, _)
        | sast::Expr::Fn(_, _) => true,
        sast::Expr::Tuple(es, _) => es.iter().all(is_syntactic_value),
        sast::Expr::Anno(inner, _, _) => is_syntactic_value(inner),
        // Constructor applications to values are values; we approximate by
        // checking that the head is a bare variable (constructor or not:
        // a partial application of a function is also a value).
        sast::Expr::App(f, a, _) => {
            matches!(f.as_ref(), sast::Expr::Var(_)) && is_syntactic_value(a)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::base_env;
    use dml_index::VarGen;
    use dml_syntax::parse_program;

    fn infer(src: &str) -> Result<(InferResult, Env), InferError> {
        let p = parse_program(src).unwrap();
        let mut gen = VarGen::new();
        let mut env = base_env(&mut gen);
        for d in &p.decls {
            match d {
                sast::Decl::Datatype(dd) => env
                    .add_datatype(dd, &mut gen)
                    .map_err(|e| InferError::new(e.message, e.span))?,
                sast::Decl::Typeref(tr) => {
                    env.add_typeref(tr, &mut gen).map_err(|e| InferError::new(e.message, e.span))?
                }
                sast::Decl::Assert(sigs) => env
                    .add_assert(sigs, &crate::builtins::check_kind, &mut gen)
                    .map_err(|e| InferError::new(e.message, e.span))?,
                _ => {}
            }
        }
        infer_program(&p, &env).map(|r| (r, env))
    }

    fn top(src: &str, name: &str) -> String {
        let (r, _) = infer(src).unwrap();
        r.top_level[name].to_string()
    }

    #[test]
    fn infer_identity_polymorphic() {
        assert_eq!(top("fun id(x) = x", "id"), "forall t0. 't0 -> 't0");
    }

    #[test]
    fn infer_arithmetic() {
        assert_eq!(top("fun double(x) = x + x", "double"), "int -> int");
    }

    #[test]
    fn infer_recursion() {
        let src = "fun fact(n) = if n = 0 then 1 else n * fact(n - 1)";
        assert_eq!(top(src, "fact"), "int -> int");
    }

    #[test]
    fn infer_mutual_recursion() {
        let src = "fun even(n) = if n = 0 then true else odd(n - 1) \
                   and odd(n) = if n = 0 then false else even(n - 1)";
        assert_eq!(top(src, "even"), "int -> bool");
        assert_eq!(top(src, "odd"), "int -> bool");
    }

    #[test]
    fn infer_list_reverse() {
        let src = "fun rev(nil, ys) = ys | rev(x::xs, ys) = rev(xs, x::ys)";
        assert_eq!(top(src, "rev"), "forall t0. 't0 list * 't0 list -> 't0 list");
    }

    #[test]
    fn infer_higher_order() {
        let src = "fun compose f g x = f (g x)";
        assert_eq!(
            top(src, "compose"),
            "forall t0 t1 t2. ('t2 -> 't1) -> ('t0 -> 't2) -> 't0 -> 't1"
        );
    }

    #[test]
    fn infer_annotated_fun_uses_annotation() {
        let src = "fun len(v) = length v where len <| {n:nat} 'a array(n) -> int(n)";
        assert_eq!(top(src, "len"), "forall a. 'a array -> int");
    }

    #[test]
    fn annotation_mismatch_rejected() {
        let src = "fun f(x) = x + 1 where f <| bool -> bool";
        assert!(infer(src).is_err());
    }

    #[test]
    fn unbound_variable_rejected() {
        assert!(infer("fun f(x) = y").is_err());
    }

    #[test]
    fn branch_type_mismatch_rejected() {
        assert!(infer("fun f(x) = if x then 1 else false").is_err());
    }

    #[test]
    fn value_restriction_blocks_generalization() {
        // `val r = id id` is not a syntactic value application... head is a
        // variable so our approximation treats `id id` as a value; use a
        // clearly expansive expression instead.
        let src = "fun id(x) = x  val r = (id id) 3";
        let (result, _) = infer(src).unwrap();
        assert_eq!(result.top_level["r"].to_string(), "int");
    }

    #[test]
    fn case_expression_types() {
        let src = r#"
datatype 'a option = NONE | SOME of 'a
fun get(x, d) = case x of SOME v => v | NONE => d
"#;
        assert_eq!(top(src, "get"), "forall t0. 't0 option * 't0 -> 't0");
    }

    #[test]
    fn constructors_as_functions() {
        let src = "fun single(x) = x :: nil";
        assert_eq!(top(src, "single"), "forall t0. 't0 -> 't0 list");
    }

    #[test]
    fn array_primitives_type() {
        let src = "fun first(v) = sub(v, 0)";
        assert_eq!(top(src, "first"), "forall t0. 't0 array -> 't0");
    }

    #[test]
    fn order_comparison_function() {
        let src = "fun cmp(x, y) = if x < y then LESS else if x > y then GREATER else EQUAL";
        assert_eq!(top(src, "cmp"), "int * int -> order");
    }

    #[test]
    fn schemes_recorded_per_binder() {
        let src = "fun f(x) = x + 1";
        let p = parse_program(src).unwrap();
        let (result, _) = infer(src).unwrap();
        if let sast::Decl::Fun(fs) = &p.decls[0] {
            assert!(result.schemes.contains_key(&fs[0].name.span));
        } else {
            panic!("expected fun");
        }
    }

    #[test]
    fn local_fun_in_let() {
        let src = r#"
fun outer(v) = let
  fun go(i, acc) = if i = 0 then acc else go(i - 1, acc + sub(v, i - 1))
in
  go(length v, 0)
end
"#;
        assert_eq!(top(src, "outer"), "int array -> int");
    }

    #[test]
    fn seq_and_unit() {
        let src = "fun f(a) = (update(a, 0, 1); length a)";
        assert_eq!(top(src, "f"), "int array -> int");
    }

    #[test]
    fn occurs_check_rejected() {
        assert!(infer("fun f(x) = x x").is_err());
    }

    #[test]
    fn fn_expression() {
        let src = "val inc = fn x => x + 1";
        assert_eq!(top(src, "inc"), "int -> int");
    }

    #[test]
    fn andalso_orelse_bool() {
        let src = "fun f(x, y) = x < y andalso y < 10 orelse x = 0";
        assert_eq!(top(src, "f"), "int * int -> bool");
    }
}
