//! Solver-backed semantic lints over elaborated DML programs.
//!
//! The type checker answers one question: *is every obligation provable?*
//! The lints here ask the dual questions — is an `if` condition **forced**
//! by the index hypotheses in scope (dead branch)? Is a refinement conjunct
//! **implied** by the others (redundant)? Is a `where` precondition
//! **unsatisfiable** (uncallable function)? — by re-playing the
//! elaborator's per-site contexts ([`dml_elab::SiteContext`]) through the
//! solver's entailment entry point ([`dml_solver::Solver::entails`]).
//! Two further lints are syntactic: unused index binders and index
//! expressions outside the linear fragment of §3.2.
//!
//! Every lint is **sound against the solver's conservativity**: a semantic
//! lint fires only on a `Valid` entailment verdict, so solver
//! incompleteness can only *suppress* findings, never fabricate them.
//!
//! | code   | name                   | backed by  |
//! |--------|------------------------|------------|
//! | DML001 | dead-branch            | entailment |
//! | DML002 | redundant-refinement   | entailment |
//! | DML003 | unused-index-variable  | syntax     |
//! | DML004 | nonlinear-index        | syntax     |
//! | DML005 | unprovable-annotation  | entailment |
//! | DML006 | residual-bound-check   | pipeline verdicts |
//! | DML007 | inferable-annotation   | interval inference + solver |
//!
//! DML007 closes the loop with `dmlc infer`: when the pipeline's interval
//! abstract interpreter synthesizes an annotation the solver verifies, the
//! lint reports it as a machine-applicable fix ([`Fix`], rendered as a
//! SARIF `fixes` object) on the unannotated function.

pub mod lints;
pub mod render;
pub mod walk;

use dml_syntax::{Diagnostic, Severity, Span};

pub use lints::run_lints;

/// A registered lint: stable code, human name, and one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable machine-readable code (`DML001`...).
    pub code: &'static str,
    /// Kebab-case name.
    pub name: &'static str,
    /// One-line description, used in SARIF rule metadata.
    pub summary: &'static str,
    /// Severity findings of this lint carry by default.
    pub default_severity: Severity,
}

/// The lint registry, in code order.
pub const LINTS: &[Lint] = &[
    Lint {
        code: "DML001",
        name: "dead-branch",
        summary: "branch condition is forced true or false by the index hypotheses in scope",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML002",
        name: "redundant-refinement",
        summary: "refinement conjunct is entailed by the remaining conjuncts and sort guards",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML003",
        name: "unused-index-variable",
        summary: "quantified index variable is never mentioned in the type it scopes over",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML004",
        name: "nonlinear-index",
        summary: "index expression falls outside the linear fragment the solver decides",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML005",
        name: "unprovable-annotation",
        summary: "annotation guard is unsatisfiable — the function can never be called",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML006",
        name: "residual-bound-check",
        summary: "bound/tag check could not be proven and stays in the compiled program",
        default_severity: Severity::Warning,
    },
    Lint {
        code: "DML007",
        name: "inferable-annotation",
        summary: "a solver-verified `where`-annotation is inferable for this unannotated \
                  function and would eliminate residual bound checks",
        default_severity: Severity::Note,
    },
];

/// Looks up a lint by its code (`DML001`) or name (`dead-branch`).
pub fn lint_by_code(code: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.code.eq_ignore_ascii_case(code) || l.name == code)
}

/// A machine-applicable fix: insert `text` at byte offset `insert_at`.
/// Carried by DML007 findings and rendered as a SARIF `fixes` object, so
/// code-scanning UIs can offer the annotation one click away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// One-line description of what applying the fix does.
    pub description: String,
    /// Byte offset in the source at which `text` is inserted.
    pub insert_at: u32,
    /// The exact text to insert (starts with a newline for `where`-clauses).
    pub text: String,
}

/// One solver-verified inferred annotation, handed to the DML007 lint by
/// the pipeline — which owns running inference, so linting a fully
/// annotated (or residual-free) program costs nothing extra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferSuggestion {
    /// Function the annotation refines.
    pub fun: String,
    /// Pretty-printed annotation type.
    pub rendered: String,
    /// Full fix-it text (`\nwhere f <| ...`).
    pub fixit: String,
    /// Byte offset where the fix-it is inserted.
    pub insert_at: u32,
    /// Span of the function's name identifier (the finding anchor).
    pub name_span: Span,
}

/// One lint finding, anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint's stable code.
    pub code: &'static str,
    /// The lint's kebab-case name.
    pub name: &'static str,
    /// Severity (the lint's default unless promoted by `--deny`).
    pub severity: Severity,
    /// The main message.
    pub message: String,
    /// Anchor span.
    pub span: Span,
    /// Supporting notes (hypotheses used, suggested rewrite, ...).
    pub notes: Vec<String>,
    /// Machine-applicable fix, when the lint can synthesize one.
    pub fix: Option<Fix>,
}

impl Finding {
    /// Renders the finding as a [`Diagnostic`] carrying its lint code.
    pub fn diagnostic(&self) -> Diagnostic {
        let mut d = match self.severity {
            Severity::Error => Diagnostic::error(self.message.clone(), self.span),
            Severity::Warning => Diagnostic::warning(self.message.clone(), self.span),
            Severity::Note => Diagnostic::note(self.message.clone(), self.span),
        }
        .with_code(self.code);
        for n in &self.notes {
            d = d.with_note(n.clone());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_wellformed() {
        assert!(LINTS.len() >= 5);
        for (k, l) in LINTS.iter().enumerate() {
            assert_eq!(l.code, format!("DML{:03}", k + 1), "codes are dense and ordered");
            assert!(l.name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn lookup_by_code_or_name() {
        assert_eq!(lint_by_code("DML001").unwrap().name, "dead-branch");
        assert_eq!(lint_by_code("dml003").unwrap().name, "unused-index-variable");
        assert_eq!(lint_by_code("nonlinear-index").unwrap().code, "DML004");
        assert!(lint_by_code("DML999").is_none());
    }

    #[test]
    fn finding_renders_with_code() {
        let f = Finding {
            code: "DML001",
            name: "dead-branch",
            severity: Severity::Warning,
            message: "always true".into(),
            span: Span::new(0, 4),
            notes: vec!["note".into()],
            fix: None,
        };
        let r = f.diagnostic().render("cond");
        assert!(r.starts_with("warning[DML001]: always true"), "{r}");
        assert!(r.contains("note"), "{r}");
    }
}
