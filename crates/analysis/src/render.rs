//! Output formats for lint findings: human diagnostics, plain JSON, and
//! SARIF 2.1.0 (the static-analysis interchange format GitHub code
//! scanning ingests).
//!
//! JSON is emitted by hand — the workspace builds offline with no
//! serialization dependency, and the subset needed here (objects, arrays,
//! strings, integers) is small.

use dml_syntax::span::line_col;
use dml_syntax::Severity;

use crate::{Finding, LINTS};

/// Renders findings as compiler-style diagnostics against the source,
/// ending with a one-line summary.
pub fn human(findings: &[Finding], src: &str) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.diagnostic().render(src));
        out.push('\n');
    }
    let (e, w) = count(findings);
    out.push_str(&format!("{} finding(s): {} error(s), {} warning(s)\n", findings.len(), e, w));
    out
}

fn count(findings: &[Finding]) -> (usize, usize) {
    let e = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let w = findings.iter().filter(|f| f.severity == Severity::Warning).count();
    (e, w)
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn severity_str(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    }
}

/// Renders findings as a JSON array with 1-based line/column positions.
pub fn json(findings: &[Finding], src: &str) -> String {
    let mut items = Vec::with_capacity(findings.len());
    for f in findings {
        let start = line_col(src, f.span.start);
        let end = line_col(src, f.span.end);
        let notes: Vec<String> =
            f.notes.iter().map(|n| format!("\"{}\"", json_escape(n))).collect();
        let fix = match &f.fix {
            None => "null".to_string(),
            Some(fix) => format!(
                "{{ \"description\": \"{}\", \"insertAt\": {}, \"text\": \"{}\" }}",
                json_escape(&fix.description),
                fix.insert_at,
                json_escape(&fix.text),
            ),
        };
        items.push(format!(
            concat!(
                "  {{\n",
                "    \"code\": \"{code}\",\n",
                "    \"name\": \"{name}\",\n",
                "    \"severity\": \"{sev}\",\n",
                "    \"message\": \"{msg}\",\n",
                "    \"span\": {{ \"start\": {s}, \"end\": {e} }},\n",
                "    \"start\": {{ \"line\": {sl}, \"column\": {sc} }},\n",
                "    \"end\": {{ \"line\": {el}, \"column\": {ec} }},\n",
                "    \"notes\": [{notes}],\n",
                "    \"fix\": {fix}\n",
                "  }}"
            ),
            code = f.code,
            name = f.name,
            sev = severity_str(f.severity),
            msg = json_escape(&f.message),
            s = f.span.start,
            e = f.span.end,
            sl = start.line,
            sc = start.col,
            el = end.line,
            ec = end.col,
            notes = notes.join(", "),
            fix = fix,
        ));
    }
    format!("[\n{}\n]\n", items.join(",\n"))
}

/// Renders findings as a SARIF 2.1.0 log with one run. Every registered
/// lint appears as a rule; results reference rules by id and index.
pub fn sarif(findings: &[Finding], src: &str, artifact_uri: &str) -> String {
    let rules: Vec<String> = LINTS
        .iter()
        .map(|l| {
            format!(
                concat!(
                    "          {{\n",
                    "            \"id\": \"{id}\",\n",
                    "            \"name\": \"{name}\",\n",
                    "            \"shortDescription\": {{ \"text\": \"{desc}\" }},\n",
                    "            \"defaultConfiguration\": {{ \"level\": \"{level}\" }}\n",
                    "          }}"
                ),
                id = l.code,
                name = l.name,
                desc = json_escape(l.summary),
                level = severity_str(l.default_severity),
            )
        })
        .collect();
    let results: Vec<String> = findings
        .iter()
        .map(|f| {
            let start = line_col(src, f.span.start);
            let end = line_col(src, f.span.end);
            let rule_index =
                LINTS.iter().position(|l| l.code == f.code).expect("registered lint");
            let mut text = f.message.clone();
            for n in &f.notes {
                text.push_str("; ");
                text.push_str(n);
            }
            // A machine-applicable fix becomes a SARIF `fixes` object: one
            // artifact change whose single replacement deletes a
            // zero-length region at the insertion offset — the SARIF
            // encoding of a pure insertion.
            let fixes = match &f.fix {
                None => String::new(),
                Some(fix) => format!(
                    concat!(
                        ",\n",
                        "          \"fixes\": [\n",
                        "            {{\n",
                        "              \"description\": {{ \"text\": \"{desc}\" }},\n",
                        "              \"artifactChanges\": [\n",
                        "                {{\n",
                        "                  \"artifactLocation\": {{ \"uri\": \"{uri}\" }},\n",
                        "                  \"replacements\": [\n",
                        "                    {{\n",
                        "                      \"deletedRegion\": {{ \"charOffset\": {at}, \"charLength\": 0 }},\n",
                        "                      \"insertedContent\": {{ \"text\": \"{ins}\" }}\n",
                        "                    }}\n",
                        "                  ]\n",
                        "                }}\n",
                        "              ]\n",
                        "            }}\n",
                        "          ]"
                    ),
                    desc = json_escape(&fix.description),
                    uri = json_escape(artifact_uri),
                    at = fix.insert_at,
                    ins = json_escape(&fix.text),
                ),
            };
            format!(
                concat!(
                    "        {{\n",
                    "          \"ruleId\": \"{id}\",\n",
                    "          \"ruleIndex\": {idx},\n",
                    "          \"level\": \"{level}\",\n",
                    "          \"message\": {{ \"text\": \"{msg}\" }},\n",
                    "          \"locations\": [\n",
                    "            {{\n",
                    "              \"physicalLocation\": {{\n",
                    "                \"artifactLocation\": {{ \"uri\": \"{uri}\" }},\n",
                    "                \"region\": {{ \"startLine\": {sl}, \"startColumn\": {sc}, \"endLine\": {el}, \"endColumn\": {ec} }}\n",
                    "              }}\n",
                    "            }}\n",
                    "          ]{fixes}\n",
                    "        }}"
                ),
                id = f.code,
                idx = rule_index,
                level = severity_str(f.severity),
                msg = json_escape(&text),
                uri = json_escape(artifact_uri),
                sl = start.line,
                sc = start.col,
                el = end.line,
                ec = end.col,
                fixes = fixes,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
            "  \"version\": \"2.1.0\",\n",
            "  \"runs\": [\n",
            "    {{\n",
            "      \"tool\": {{\n",
            "        \"driver\": {{\n",
            "          \"name\": \"dmlc\",\n",
            "          \"informationUri\": \"https://doi.org/10.1145/277650.277732\",\n",
            "          \"rules\": [\n{rules}\n          ]\n",
            "        }}\n",
            "      }},\n",
            "      \"results\": [\n{results}\n      ]\n",
            "    }}\n",
            "  ]\n",
            "}}\n"
        ),
        rules = rules.join(",\n"),
        results = results.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::Span;

    fn sample() -> (Vec<Finding>, &'static str) {
        let src = "fun f(x) = x\nwhere f <| {n:nat} int -> int\n";
        let findings = vec![Finding {
            code: "DML003",
            name: "unused-index-variable",
            severity: Severity::Warning,
            message: "index variable `n` is never used \"here\"".into(),
            span: Span::new(24, 25),
            notes: vec!["remove the binder".into()],
            fix: None,
        }];
        (findings, src)
    }

    fn fix_sample() -> (Vec<Finding>, &'static str) {
        let src = "fun f(v) = sub(v, 0)\n";
        let findings = vec![Finding {
            code: "DML007",
            name: "inferable-annotation",
            severity: Severity::Note,
            message: "`f` has no annotation, but a solver-verified one is inferable".into(),
            span: Span::new(4, 5),
            notes: vec![],
            fix: Some(crate::Fix {
                description: "insert `where f <| {n:nat | n > 0} int array(n) -> int`".into(),
                insert_at: 20,
                text: "\nwhere f <| {n:nat | n > 0} int array(n) -> int".into(),
            }),
        }];
        (findings, src)
    }

    #[test]
    fn human_has_summary_line() {
        let (f, src) = sample();
        let out = human(&f, src);
        assert!(out.contains("warning[DML003]"), "{out}");
        assert!(out.contains("1 finding(s): 0 error(s), 1 warning(s)"), "{out}");
    }

    #[test]
    fn json_positions_are_one_based_and_escaped() {
        let (f, src) = sample();
        let out = json(&f, src);
        assert!(out.contains("\"code\": \"DML003\""), "{out}");
        assert!(out.contains("\"line\": 2"), "{out}");
        assert!(out.contains("never used \\\"here\\\""), "escaped quotes: {out}");
    }

    #[test]
    fn sarif_declares_all_rules_and_references_by_index() {
        let (f, src) = sample();
        let out = sarif(&f, src, "test.dml");
        assert!(out.contains("\"version\": \"2.1.0\""), "{out}");
        for l in LINTS {
            assert!(out.contains(&format!("\"id\": \"{}\"", l.code)), "{out}");
        }
        assert!(out.contains("\"ruleId\": \"DML003\""), "{out}");
        assert!(out.contains("\"ruleIndex\": 2"), "{out}");
        assert!(out.contains("\"startLine\": 2"), "{out}");
        assert!(out.contains("\"uri\": \"test.dml\""), "{out}");
    }

    #[test]
    fn json_renders_fix_object_and_null() {
        let (f, src) = sample();
        assert!(json(&f, src).contains("\"fix\": null"), "{}", json(&f, src));
        let (f, src) = fix_sample();
        let out = json(&f, src);
        assert!(out.contains("\"insertAt\": 20"), "{out}");
        assert!(out.contains("\\nwhere f <| {n:nat | n > 0}"), "{out}");
    }

    #[test]
    fn sarif_renders_fix_as_insertion_replacement() {
        let (f, src) = fix_sample();
        let out = sarif(&f, src, "f.dml");
        assert!(out.contains("\"fixes\": ["), "{out}");
        assert!(out.contains("\"artifactChanges\": ["), "{out}");
        assert!(
            out.contains("\"deletedRegion\": { \"charOffset\": 20, \"charLength\": 0 }"),
            "{out}"
        );
        assert!(out.contains("\"insertedContent\""), "{out}");
        // Findings without a fix stay fix-free.
        let (plain, src2) = sample();
        assert!(!sarif(&plain, src2, "f.dml").contains("\"fixes\""));
    }

    #[test]
    fn empty_findings_render_in_every_format() {
        let out = human(&[], "x");
        assert!(out.contains("0 finding(s)"), "{out}");
        assert_eq!(json(&[], "x"), "[\n\n]\n");
        let s = sarif(&[], "x", "a.dml");
        assert!(s.contains("\"results\": ["), "{s}");
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
