//! Surface-syntax walker: collects every quantifier group and every index
//! expression in a program, together with enough context (enclosing
//! binders, owner, names used in scope) for the lints to judge them.
//!
//! The walker is purely syntactic — no conversion to the semantic index
//! language happens here. `lints.rs` converts the collected groups on
//! demand.

use std::collections::BTreeSet;

use dml_syntax::ast::{self as sast, DType, Decl, Expr, IExpr, IProp, Index, Pat, Quant, Sort};
use dml_syntax::Span;

/// What kind of binder a quantifier group came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// A `{...}` universal binder in a type.
    Pi,
    /// A `[...]` existential binder in a type.
    Sigma,
    /// Explicit `fun{...} f` index parameters.
    FunParams,
}

/// One quantifier group, with the chain of enclosing binders and the set of
/// index-variable names referenced in its scope.
#[derive(Debug, Clone)]
pub struct QuantGroup {
    /// Where the group came from.
    pub kind: GroupKind,
    /// The group's own binders, in source order.
    pub quants: Vec<Quant>,
    /// Enclosing binders, outermost first (their guards are hypotheses for
    /// this group).
    pub outer: Vec<Quant>,
    /// The declaration the group belongs to (function, constructor, ...).
    pub owner: String,
    /// Anchor span (the first binder).
    pub span: Span,
    /// Index-variable names referenced in the body the group scopes over
    /// (shadowing-aware), *excluding* the group's own guards.
    pub body_names: BTreeSet<String>,
    /// Per-binder: names referenced by that binder's guard and subset sort,
    /// parallel to `quants`.
    pub guard_names: Vec<BTreeSet<String>>,
}

impl QuantGroup {
    /// Is binder `k` referenced anywhere other than its own guard?
    pub fn binder_is_used(&self, k: usize) -> bool {
        let name = &self.quants[k].var.name;
        if self.body_names.contains(name) {
            return true;
        }
        self.guard_names.iter().enumerate().any(|(j, names)| j != k && names.contains(name))
    }
}

/// An index expression as written in a type position.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// The expression, verbatim.
    pub expr: IExpr,
    /// The declaration it appears under.
    pub owner: String,
}

/// Everything the syntactic lints need, in one pass.
#[derive(Debug, Clone, Default)]
pub struct SurfaceFacts {
    /// All quantifier groups.
    pub groups: Vec<QuantGroup>,
    /// All index expressions in type positions.
    pub index_exprs: Vec<IndexSite>,
}

/// Collects [`SurfaceFacts`] from a whole program.
pub fn collect(program: &sast::Program) -> SurfaceFacts {
    let mut facts = SurfaceFacts::default();
    for d in &program.decls {
        decl(d, &mut facts);
    }
    facts
}

fn decl(d: &Decl, facts: &mut SurfaceFacts) {
    match d {
        Decl::Assert(sigs) => {
            for (name, t) in sigs {
                dtype(t, &mut Vec::new(), &name.name, facts);
            }
        }
        Decl::Datatype(dt) => {
            for c in &dt.cons {
                if let Some(t) = &c.arg {
                    dtype(t, &mut Vec::new(), &c.name.name, facts);
                }
            }
        }
        Decl::Typeref(tr) => {
            for (name, t) in &tr.cons {
                dtype(t, &mut Vec::new(), &name.name, facts);
            }
        }
        Decl::Fun(fs) => {
            for f in fs {
                fun(f, facts);
            }
        }
        Decl::Val(v) => {
            if let Some(t) = &v.anno {
                dtype(t, &mut Vec::new(), "val binding", facts);
            }
            pat(&v.pat, &mut Vec::new(), "val binding", facts);
            expr(&v.expr, &mut Vec::new(), "val binding", facts);
        }
        Decl::Exception(_) => {}
    }
}

fn fun(f: &sast::FunDecl, facts: &mut SurfaceFacts) {
    let owner = f.name.name.clone();
    // Explicit index parameters form a group whose scope is the `where`
    // annotation plus every annotation inside the clause bodies.
    if !f.index_params.is_empty() {
        let mut body_names = BTreeSet::new();
        let mut shadow = Vec::new();
        if let Some(t) = &f.anno {
            dtype_names(t, &mut shadow, &mut body_names);
        }
        for c in &f.clauses {
            for p in &c.params {
                pat_names(p, &mut shadow, &mut body_names);
            }
            expr_names(&c.body, &mut shadow, &mut body_names);
        }
        push_group(GroupKind::FunParams, &f.index_params, &[], &owner, body_names, facts);
        collect_quant_iexprs(&f.index_params, &owner, facts);
    }
    let mut outer: Vec<Quant> = f.index_params.clone();
    if let Some(t) = &f.anno {
        dtype(t, &mut outer, &owner, facts);
    }
    // The annotation's outermost Pi binders scope over annotations inside
    // the clause bodies too.
    if let Some(DType::Pi(quants, _)) = &f.anno {
        outer.extend(quants.iter().cloned());
    }
    for c in &f.clauses {
        for p in &c.params {
            pat(p, &mut outer, &owner, facts);
        }
        expr(&c.body, &mut outer, &owner, facts);
    }
}

fn push_group(
    kind: GroupKind,
    quants: &[Quant],
    outer: &[Quant],
    owner: &str,
    body_names: BTreeSet<String>,
    facts: &mut SurfaceFacts,
) {
    let guard_names = quants
        .iter()
        .map(|q| {
            let mut names = BTreeSet::new();
            let mut shadow = Vec::new();
            sort_names(&q.sort, &mut shadow, &mut names);
            if let Some(g) = &q.guard {
                iprop_names(g, &mut shadow, &mut names);
            }
            names
        })
        .collect();
    facts.groups.push(QuantGroup {
        kind,
        quants: quants.to_vec(),
        outer: outer.to_vec(),
        owner: owner.to_string(),
        span: quants.first().map(|q| q.var.span).unwrap_or_default(),
        body_names,
        guard_names,
    });
}

/// Records the index expressions occurring in a binder list's guards and
/// subset sorts.
fn collect_quant_iexprs(quants: &[Quant], owner: &str, facts: &mut SurfaceFacts) {
    for q in quants {
        sort_iexprs(&q.sort, owner, facts);
        if let Some(g) = &q.guard {
            iprop_iexprs(g, owner, facts);
        }
    }
}

fn sort_iexprs(s: &Sort, owner: &str, facts: &mut SurfaceFacts) {
    if let Sort::Subset(_, inner, p) = s {
        sort_iexprs(inner, owner, facts);
        iprop_iexprs(p, owner, facts);
    }
}

fn iprop_iexprs(p: &IProp, owner: &str, facts: &mut SurfaceFacts) {
    match p {
        IProp::Var(_) | IProp::Lit(_, _) => {}
        IProp::Cmp(_, a, b) => {
            facts.index_exprs.push(IndexSite { expr: (**a).clone(), owner: owner.to_string() });
            facts.index_exprs.push(IndexSite { expr: (**b).clone(), owner: owner.to_string() });
        }
        IProp::Not(q) => iprop_iexprs(q, owner, facts),
        IProp::And(a, b) | IProp::Or(a, b) => {
            iprop_iexprs(a, owner, facts);
            iprop_iexprs(b, owner, facts);
        }
    }
}

fn dtype(t: &DType, outer: &mut Vec<Quant>, owner: &str, facts: &mut SurfaceFacts) {
    match t {
        DType::Var(_) => {}
        DType::App { ty_args, ix_args, .. } => {
            for a in ty_args {
                dtype(a, outer, owner, facts);
            }
            for ix in ix_args {
                match ix {
                    Index::Int(e) => facts
                        .index_exprs
                        .push(IndexSite { expr: e.clone(), owner: owner.to_string() }),
                    Index::Prop(p) => iprop_iexprs(p, owner, facts),
                }
            }
        }
        DType::Product(ts) => {
            for a in ts {
                dtype(a, outer, owner, facts);
            }
        }
        DType::Arrow(a, b) => {
            dtype(a, outer, owner, facts);
            dtype(b, outer, owner, facts);
        }
        DType::Pi(quants, body) | DType::Sigma(quants, body) => {
            let kind = if matches!(t, DType::Pi(..)) { GroupKind::Pi } else { GroupKind::Sigma };
            let mut body_names = BTreeSet::new();
            dtype_names(body, &mut Vec::new(), &mut body_names);
            push_group(kind, quants, outer, owner, body_names, facts);
            collect_quant_iexprs(quants, owner, facts);
            let depth = outer.len();
            outer.extend(quants.iter().cloned());
            dtype(body, outer, owner, facts);
            outer.truncate(depth);
        }
    }
}

fn expr(e: &Expr, outer: &mut Vec<Quant>, owner: &str, facts: &mut SurfaceFacts) {
    match e {
        Expr::Var(_) | Expr::Int(_, _) | Expr::Bool(_, _) | Expr::Raise(_, _) => {}
        Expr::App(a, b, _) | Expr::Andalso(a, b, _) | Expr::Orelse(a, b, _) => {
            expr(a, outer, owner, facts);
            expr(b, outer, owner, facts);
        }
        Expr::Tuple(es, _) | Expr::Seq(es, _) => {
            for x in es {
                expr(x, outer, owner, facts);
            }
        }
        Expr::If(c, t, f, _) => {
            expr(c, outer, owner, facts);
            expr(t, outer, owner, facts);
            expr(f, outer, owner, facts);
        }
        Expr::Case(scrut, arms, _) => {
            expr(scrut, outer, owner, facts);
            for (p, a) in arms {
                pat(p, outer, owner, facts);
                expr(a, outer, owner, facts);
            }
        }
        Expr::Let(decls, body, _) => {
            for d in decls {
                decl_in(d, outer, owner, facts);
            }
            expr(body, outer, owner, facts);
        }
        Expr::Fn(arms, _) => {
            for (p, a) in arms {
                pat(p, outer, owner, facts);
                expr(a, outer, owner, facts);
            }
        }
        Expr::Anno(inner, t, _) => {
            expr(inner, outer, owner, facts);
            dtype(t, outer, owner, facts);
        }
        Expr::Handle(body, arms, _) => {
            expr(body, outer, owner, facts);
            for (_, a) in arms {
                expr(a, outer, owner, facts);
            }
        }
    }
}

/// Local declarations inside `let` keep the enclosing binders in scope.
fn decl_in(d: &Decl, outer: &mut Vec<Quant>, owner: &str, facts: &mut SurfaceFacts) {
    match d {
        Decl::Fun(fs) => {
            for f in fs {
                // Local functions restart the binder chain with their own
                // explicit parameters on top of the enclosing ones.
                let depth = outer.len();
                outer.extend(f.index_params.iter().cloned());
                if !f.index_params.is_empty() {
                    let mut body_names = BTreeSet::new();
                    let mut shadow = Vec::new();
                    if let Some(t) = &f.anno {
                        dtype_names(t, &mut shadow, &mut body_names);
                    }
                    for c in &f.clauses {
                        for p in &c.params {
                            pat_names(p, &mut shadow, &mut body_names);
                        }
                        expr_names(&c.body, &mut shadow, &mut body_names);
                    }
                    push_group(
                        GroupKind::FunParams,
                        &f.index_params,
                        &outer[..depth],
                        &f.name.name,
                        body_names,
                        facts,
                    );
                    collect_quant_iexprs(&f.index_params, &f.name.name, facts);
                }
                if let Some(t) = &f.anno {
                    dtype(t, outer, &f.name.name, facts);
                }
                if let Some(DType::Pi(quants, _)) = &f.anno {
                    outer.extend(quants.iter().cloned());
                }
                for c in &f.clauses {
                    for p in &c.params {
                        pat(p, outer, &f.name.name, facts);
                    }
                    expr(&c.body, outer, &f.name.name, facts);
                }
                outer.truncate(depth);
            }
        }
        Decl::Val(v) => {
            if let Some(t) = &v.anno {
                dtype(t, outer, owner, facts);
            }
            pat(&v.pat, outer, owner, facts);
            expr(&v.expr, outer, owner, facts);
        }
        _ => decl(d, facts),
    }
}

fn pat(p: &Pat, outer: &mut Vec<Quant>, owner: &str, facts: &mut SurfaceFacts) {
    match p {
        Pat::Wild(_) | Pat::Var(_) | Pat::Int(_, _) | Pat::Bool(_, _) => {}
        Pat::Tuple(ps, _) => {
            for q in ps {
                pat(q, outer, owner, facts);
            }
        }
        Pat::Con(_, arg, _) => {
            if let Some(q) = arg {
                pat(q, outer, owner, facts);
            }
        }
        Pat::Anno(inner, t, _) => {
            pat(inner, outer, owner, facts);
            dtype(t, outer, owner, facts);
        }
    }
}

// ---------------------------------------------------------------------------
// Name collection (shadowing-aware).
// ---------------------------------------------------------------------------

fn dtype_names(t: &DType, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match t {
        DType::Var(_) => {}
        DType::App { ty_args, ix_args, .. } => {
            for a in ty_args {
                dtype_names(a, shadow, out);
            }
            for ix in ix_args {
                match ix {
                    Index::Int(e) => iexpr_names(e, shadow, out),
                    Index::Prop(p) => iprop_names(p, shadow, out),
                }
            }
        }
        DType::Product(ts) => {
            for a in ts {
                dtype_names(a, shadow, out);
            }
        }
        DType::Arrow(a, b) => {
            dtype_names(a, shadow, out);
            dtype_names(b, shadow, out);
        }
        DType::Pi(quants, body) | DType::Sigma(quants, body) => {
            let depth = shadow.len();
            for q in quants {
                sort_names(&q.sort, shadow, out);
                if let Some(g) = &q.guard {
                    iprop_names(g, shadow, out);
                }
                shadow.push(q.var.name.clone());
            }
            dtype_names(body, shadow, out);
            shadow.truncate(depth);
        }
    }
}

fn sort_names(s: &Sort, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    if let Sort::Subset(binder, inner, p) = s {
        sort_names(inner, shadow, out);
        shadow.push(binder.name.clone());
        iprop_names(p, shadow, out);
        shadow.pop();
    }
}

fn iprop_names(p: &IProp, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match p {
        IProp::Var(i) => {
            if !shadow.contains(&i.name) {
                out.insert(i.name.clone());
            }
        }
        IProp::Lit(_, _) => {}
        IProp::Cmp(_, a, b) => {
            iexpr_names(a, shadow, out);
            iexpr_names(b, shadow, out);
        }
        IProp::Not(q) => iprop_names(q, shadow, out),
        IProp::And(a, b) | IProp::Or(a, b) => {
            iprop_names(a, shadow, out);
            iprop_names(b, shadow, out);
        }
    }
}

fn iexpr_names(e: &IExpr, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        IExpr::Var(i) => {
            if !shadow.contains(&i.name) {
                out.insert(i.name.clone());
            }
        }
        IExpr::Lit(_, _) => {}
        IExpr::Add(a, b)
        | IExpr::Sub(a, b)
        | IExpr::Mul(a, b)
        | IExpr::Div(a, b)
        | IExpr::Mod(a, b)
        | IExpr::Min(a, b)
        | IExpr::Max(a, b) => {
            iexpr_names(a, shadow, out);
            iexpr_names(b, shadow, out);
        }
        IExpr::Abs(a) | IExpr::Sgn(a) | IExpr::Neg(a) => iexpr_names(a, shadow, out),
    }
}

fn pat_names(p: &Pat, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match p {
        Pat::Wild(_) | Pat::Var(_) | Pat::Int(_, _) | Pat::Bool(_, _) => {}
        Pat::Tuple(ps, _) => {
            for q in ps {
                pat_names(q, shadow, out);
            }
        }
        Pat::Con(_, arg, _) => {
            if let Some(q) = arg {
                pat_names(q, shadow, out);
            }
        }
        Pat::Anno(inner, t, _) => {
            pat_names(inner, shadow, out);
            dtype_names(t, shadow, out);
        }
    }
}

fn expr_names(e: &Expr, shadow: &mut Vec<String>, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(_) | Expr::Int(_, _) | Expr::Bool(_, _) | Expr::Raise(_, _) => {}
        Expr::App(a, b, _) | Expr::Andalso(a, b, _) | Expr::Orelse(a, b, _) => {
            expr_names(a, shadow, out);
            expr_names(b, shadow, out);
        }
        Expr::Tuple(es, _) | Expr::Seq(es, _) => {
            for x in es {
                expr_names(x, shadow, out);
            }
        }
        Expr::If(c, t, f, _) => {
            expr_names(c, shadow, out);
            expr_names(t, shadow, out);
            expr_names(f, shadow, out);
        }
        Expr::Case(scrut, arms, _) => {
            expr_names(scrut, shadow, out);
            for (p, a) in arms {
                pat_names(p, shadow, out);
                expr_names(a, shadow, out);
            }
        }
        Expr::Let(decls, body, _) => {
            for d in decls {
                match d {
                    Decl::Fun(fs) => {
                        for f in fs {
                            let depth = shadow.len();
                            shadow.extend(f.index_params.iter().map(|q| q.var.name.clone()));
                            if let Some(t) = &f.anno {
                                dtype_names(t, shadow, out);
                            }
                            for c in &f.clauses {
                                for p in &c.params {
                                    pat_names(p, shadow, out);
                                }
                                expr_names(&c.body, shadow, out);
                            }
                            shadow.truncate(depth);
                        }
                    }
                    Decl::Val(v) => {
                        if let Some(t) = &v.anno {
                            dtype_names(t, shadow, out);
                        }
                        pat_names(&v.pat, shadow, out);
                        expr_names(&v.expr, shadow, out);
                    }
                    _ => {}
                }
            }
            expr_names(body, shadow, out);
        }
        Expr::Fn(arms, _) => {
            for (p, a) in arms {
                pat_names(p, shadow, out);
                expr_names(a, shadow, out);
            }
        }
        Expr::Anno(inner, t, _) => {
            expr_names(inner, shadow, out);
            dtype_names(t, shadow, out);
        }
        Expr::Handle(body, arms, _) => {
            expr_names(body, shadow, out);
            for (_, a) in arms {
                expr_names(a, shadow, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_syntax::parse_program;

    #[test]
    fn collects_pi_groups_with_outer_chain() {
        let src = "fun f(x) = x\nwhere f <| {n:nat} int(n) -> {i:nat | i < n} int(i) -> int\n";
        let p = parse_program(src).expect("parses");
        let facts = collect(&p);
        assert_eq!(facts.groups.len(), 2);
        assert_eq!(facts.groups[0].quants[0].var.name, "n");
        assert!(facts.groups[0].outer.is_empty());
        assert_eq!(facts.groups[1].quants[0].var.name, "i");
        assert_eq!(facts.groups[1].outer.len(), 1, "inner group sees the outer binder");
        assert_eq!(facts.groups[1].outer[0].var.name, "n");
    }

    #[test]
    fn body_names_respect_shadowing() {
        // The inner `{n:nat}` re-binds `n`, so the outer group's body does
        // not use the *outer* n beyond `int(n)`... here it does via int(n).
        let src = "fun f(x) = x\nwhere f <| {n:nat} int(n) -> int\n";
        let p = parse_program(src).expect("parses");
        let facts = collect(&p);
        assert!(facts.groups[0].body_names.contains("n"));

        let src2 = "fun g(x) = x\nwhere g <| {n:nat} int -> {n:nat} int(n) -> int\n";
        let p2 = parse_program(src2).expect("parses");
        let facts2 = collect(&p2);
        // Outer group's body mentions only the *inner* n, which shadows.
        assert!(!facts2.groups[0].body_names.contains("n"));
        assert!(!facts2.groups[0].binder_is_used(0));
    }

    #[test]
    fn binder_used_via_sibling_guard_counts() {
        let src = "fun f(x) = x\nwhere f <| {n:nat, i:nat | i < n} int(i) -> int\n";
        let p = parse_program(src).expect("parses");
        let facts = collect(&p);
        let g = &facts.groups[0];
        assert!(g.binder_is_used(0), "n is used in i's guard");
        assert!(g.binder_is_used(1), "i is used in the body");
    }

    #[test]
    fn collects_index_exprs_from_ix_args_and_guards() {
        let src = "fun f(x) = x\nwhere f <| {n:nat | n * n > 0} int(n + 1) -> int\n";
        let p = parse_program(src).expect("parses");
        let facts = collect(&p);
        let rendered: Vec<String> =
            facts.index_exprs.iter().map(|s| format!("{:?}", s.expr)).collect();
        assert!(
            facts.index_exprs.iter().any(|s| matches!(s.expr, IExpr::Mul(..))),
            "guard product collected: {rendered:?}"
        );
        assert!(
            facts.index_exprs.iter().any(|s| matches!(s.expr, IExpr::Add(..))),
            "ix-arg sum collected: {rendered:?}"
        );
    }
}
