//! The lint implementations.
//!
//! DML001, DML002 and DML005 are *solver-backed*: they call
//! [`Solver::entails`] on contexts captured during elaboration
//! ([`SiteContext`]) or reconstructed from quantifier groups, and fire only
//! on a `Valid` verdict. DML003 and DML004 are syntactic.

use std::collections::HashMap;

use dml_elab::{ResidualCheck, SiteContext, SiteRole};
use dml_index::{Prop, Sort, Var, VarGen};
use dml_solver::{Solver, Verdict};
use dml_syntax::ast::{self as sast, IExpr};
use dml_syntax::Span;
use dml_types::convert::{Converter, FamilySig, Scope};
use dml_types::env::CheckKind;

use crate::walk::{self, GroupKind, QuantGroup};
use crate::{lint_by_code, Finding, Fix, InferSuggestion};

/// Runs every registered lint over a program.
///
/// * `program` — the surface AST (for the syntactic lints and the
///   refinement lints, which re-convert quantifier groups).
/// * `contexts` — per-site hypothesis snapshots from elaboration (for the
///   dead-branch lint). Pass `&[]` to skip DML001.
/// * `families` — the type-family signatures in scope (builtins plus the
///   program's `typeref`/`datatype` declarations).
/// * `solver` — the solver answering entailment queries. Passing the
///   solver a program was compiled with shares its verdict cache, so
///   entailments the compile already decided are answered without
///   re-running the decision procedure.
/// * `residuals` — the pipeline's residual checks
///   ([`dml_elab::residual_checks`]) for the DML006 lint. Pass `&[]` to
///   skip it (e.g. when linting without solving).
/// * `suggestions` — solver-verified inferred annotations for the DML007
///   lint. The *pipeline* runs inference (and only when residual checks
///   exist); pass `&[]` to skip it.
pub fn run_lints(
    program: &sast::Program,
    contexts: &[SiteContext],
    families: &HashMap<String, FamilySig>,
    solver: &Solver,
    gen: &mut VarGen,
    residuals: &[ResidualCheck],
    suggestions: &[InferSuggestion],
) -> Vec<Finding> {
    let facts = walk::collect(program);
    let mut findings = Vec::new();
    dead_branch(contexts, solver, gen, &mut findings);
    refinement_lints(&facts.groups, families, solver, gen, &mut findings);
    unused_index_variable(&facts.groups, &mut findings);
    nonlinear_index(&facts.index_exprs, &mut findings);
    residual_bound_check(residuals, &mut findings);
    inferable_annotation(suggestions, &mut findings);
    findings.sort_by_key(|f| (f.span.start, f.span.end, f.code));
    findings.dedup_by(|a, b| a.code == b.code && a.span == b.span && a.message == b.message);
    findings
}

fn finding(code: &str, message: String, span: Span, notes: Vec<String>) -> Finding {
    let lint = lint_by_code(code).expect("registered lint");
    Finding {
        code: lint.code,
        name: lint.name,
        severity: lint.default_severity,
        message,
        span,
        notes,
        fix: None,
    }
}

fn valid(r: Verdict) -> bool {
    r.is_proven()
}

/// Renders at most `limit` hypotheses as notes.
fn hyp_notes(hyps: &[Prop], limit: usize) -> Vec<String> {
    let mut notes = Vec::new();
    if hyps.is_empty() {
        notes.push("no index hypotheses were in scope".to_string());
        return notes;
    }
    let shown: Vec<String> = hyps.iter().take(limit).map(|h| h.to_string()).collect();
    notes.push(format!("under hypotheses: {}", shown.join("  and  ")));
    if hyps.len() > limit {
        notes.push(format!("... and {} more", hyps.len() - limit));
    }
    notes
}

// ---------------------------------------------------------------------------
// DML001: dead-branch.
// ---------------------------------------------------------------------------

fn dead_branch(
    contexts: &[SiteContext],
    solver: &Solver,
    gen: &mut VarGen,
    findings: &mut Vec<Finding>,
) {
    for sc in contexts {
        let unreachable =
            !sc.hyps.is_empty() && valid(solver.entails(&sc.vars, &sc.hyps, &Prop::False, gen));
        match &sc.role {
            SiteRole::IfCond => {
                let Some(cond) = &sc.cond else { continue };
                if unreachable {
                    let mut notes = hyp_notes(&sc.hyps, 6);
                    notes.push(format!("in function `{}`", sc.in_fun));
                    findings.push(finding(
                        "DML001",
                        "this `if` is unreachable: the index hypotheses in scope are contradictory"
                            .to_string(),
                        sc.span,
                        notes,
                    ));
                } else if valid(solver.entails(&sc.vars, &sc.hyps, cond, gen)) {
                    let mut notes = hyp_notes(&sc.hyps, 6);
                    notes.push(format!("in function `{}`", sc.in_fun));
                    notes.push("the `else` branch is dead code".to_string());
                    findings.push(finding(
                        "DML001",
                        format!("condition `{cond}` is always true here"),
                        sc.span,
                        notes,
                    ));
                } else if valid(solver.entails(&sc.vars, &sc.hyps, &cond.clone().negate(), gen)) {
                    let mut notes = hyp_notes(&sc.hyps, 6);
                    notes.push(format!("in function `{}`", sc.in_fun));
                    notes.push("the `then` branch is dead code".to_string());
                    findings.push(finding(
                        "DML001",
                        format!("condition `{cond}` is always false here"),
                        sc.span,
                        notes,
                    ));
                }
            }
            SiteRole::CaseArm { con } => {
                if unreachable {
                    let what = match con {
                        Some(c) => format!("arm `{c}` of this match can never be taken"),
                        None => "this match arm can never be taken".to_string(),
                    };
                    let mut notes = hyp_notes(&sc.hyps, 6);
                    notes.push(format!("in function `{}`", sc.in_fun));
                    findings.push(finding("DML001", what, sc.span, notes));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DML002 / DML005: redundant refinement, unprovable annotation.
// ---------------------------------------------------------------------------

/// A quantifier group converted to the semantic index language, keeping
/// user-written guard conjuncts separate from synthesized sort guards.
struct ConvGroup {
    /// All binders in scope (outer chain first, then the group's own).
    vars: Vec<(Var, Sort)>,
    /// Guards contributed by the enclosing binder chain.
    outer_hyps: Vec<Prop>,
    /// Sort guards of the group's own binders (`nat` ⇒ `0 <= v`, subset
    /// sorts' propositions).
    sort_guards: Vec<Prop>,
    /// User-written guard conjuncts: (binder position, conjunct).
    user: Vec<(usize, Prop)>,
}

/// Converts a group piecewise. `convert_quants` would fold sort guards and
/// user guards into one proposition; DML002 needs them separate, so this
/// mirrors its steps conjunct by conjunct. Returns `None` on conversion
/// errors (the type checker owns reporting those).
fn convert_group(
    g: &QuantGroup,
    families: &HashMap<String, FamilySig>,
    gen: &mut VarGen,
) -> Option<ConvGroup> {
    let mut conv = Converter::new(families, gen);
    let mut scope = Scope::new();
    let mut out = ConvGroup {
        vars: Vec::new(),
        outer_hyps: Vec::new(),
        sort_guards: Vec::new(),
        user: Vec::new(),
    };
    for q in &g.outer {
        let v = conv.gen.fresh(&q.var.name);
        let (base, sort_guard) = conv.convert_sort(&q.sort, &v, &scope).ok()?;
        scope.bind(&q.var.name, v.clone(), base);
        out.vars.push((v, base));
        for c in sort_guard.conjuncts() {
            if *c != Prop::True {
                out.outer_hyps.push(c.clone());
            }
        }
        if let Some(guard) = &q.guard {
            let p = conv.convert_prop(guard, &scope).ok()?;
            for c in p.conjuncts() {
                if *c != Prop::True {
                    out.outer_hyps.push(c.clone());
                }
            }
        }
    }
    for (k, q) in g.quants.iter().enumerate() {
        let v = conv.gen.fresh(&q.var.name);
        let (base, sort_guard) = conv.convert_sort(&q.sort, &v, &scope).ok()?;
        scope.bind(&q.var.name, v.clone(), base);
        out.vars.push((v, base));
        for c in sort_guard.conjuncts() {
            if *c != Prop::True {
                out.sort_guards.push(c.clone());
            }
        }
        if let Some(guard) = &q.guard {
            let p = conv.convert_prop(guard, &scope).ok()?;
            for c in p.conjuncts() {
                if *c != Prop::True {
                    out.user.push((k, c.clone()));
                }
            }
        }
    }
    Some(out)
}

fn refinement_lints(
    groups: &[QuantGroup],
    families: &HashMap<String, FamilySig>,
    solver: &Solver,
    gen: &mut VarGen,
    findings: &mut Vec<Finding>,
) {
    for g in groups {
        let Some(cg) = convert_group(g, families, gen) else { continue };

        // DML005: the whole guard set is unsatisfiable. Skip when the
        // enclosing chain is already contradictory — the enclosing group
        // gets the report.
        let mut all: Vec<Prop> = cg.outer_hyps.clone();
        all.extend(cg.sort_guards.iter().cloned());
        all.extend(cg.user.iter().map(|(_, p)| p.clone()));
        let outer_contradictory = !cg.outer_hyps.is_empty()
            && valid(solver.entails(&cg.vars, &cg.outer_hyps, &Prop::False, gen));
        if !all.is_empty()
            && !outer_contradictory
            && valid(solver.entails(&cg.vars, &all, &Prop::False, gen))
        {
            let what = match g.kind {
                GroupKind::Sigma => "no index can inhabit this existential binder",
                _ => "this binder's guard is unsatisfiable — the type has no instances",
            };
            findings.push(finding(
                "DML005",
                format!("{what} (in `{}`)", g.owner),
                g.span,
                hyp_notes(&all, 8),
            ));
            continue; // ex falso would mark every conjunct redundant
        }
        if outer_contradictory {
            continue;
        }

        // DML002: a user conjunct entailed by everything else.
        for (j, (k, c)) in cg.user.iter().enumerate() {
            let mut rest: Vec<Prop> = cg.outer_hyps.clone();
            rest.extend(cg.sort_guards.iter().cloned());
            rest.extend(
                cg.user.iter().enumerate().filter(|(i, _)| *i != j).map(|(_, (_, p))| p.clone()),
            );
            if valid(solver.entails(&cg.vars, &rest, c, gen)) {
                let mut notes = hyp_notes(&rest, 8);
                notes.push("dropping this conjunct changes nothing provable".to_string());
                findings.push(finding(
                    "DML002",
                    format!(
                        "refinement conjunct `{c}` on `{}` is entailed by the remaining guards",
                        g.quants[*k].var.name
                    ),
                    g.quants[*k].var.span,
                    notes,
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DML003: unused-index-variable.
// ---------------------------------------------------------------------------

fn unused_index_variable(groups: &[QuantGroup], findings: &mut Vec<Finding>) {
    for g in groups {
        for (k, q) in g.quants.iter().enumerate() {
            if g.binder_is_used(k) {
                continue;
            }
            let where_ = match g.kind {
                GroupKind::Pi => "universal binder",
                GroupKind::Sigma => "existential binder",
                GroupKind::FunParams => "explicit index parameter",
            };
            findings.push(finding(
                "DML003",
                format!(
                    "index variable `{}` ({where_} in `{}`) is never used in the type it scopes over",
                    q.var.name, g.owner
                ),
                q.var.span,
                vec!["remove the binder, or constrain the type with it".to_string()],
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// DML004: nonlinear-index.
// ---------------------------------------------------------------------------

/// Constant-folds a surface index expression.
fn const_fold(e: &IExpr) -> Option<i64> {
    Some(match e {
        IExpr::Var(_) => return None,
        IExpr::Lit(n, _) => *n,
        IExpr::Add(a, b) => const_fold(a)?.checked_add(const_fold(b)?)?,
        IExpr::Sub(a, b) => const_fold(a)?.checked_sub(const_fold(b)?)?,
        IExpr::Mul(a, b) => const_fold(a)?.checked_mul(const_fold(b)?)?,
        IExpr::Div(a, b) => {
            let d = const_fold(b)?;
            if d == 0 {
                return None;
            }
            const_fold(a)?.div_euclid(d)
        }
        IExpr::Mod(a, b) => {
            let d = const_fold(b)?;
            if d == 0 {
                return None;
            }
            const_fold(a)?.rem_euclid(d)
        }
        IExpr::Min(a, b) => const_fold(a)?.min(const_fold(b)?),
        IExpr::Max(a, b) => const_fold(a)?.max(const_fold(b)?),
        IExpr::Abs(a) => const_fold(a)?.checked_abs()?,
        IExpr::Sgn(a) => const_fold(a)?.signum(),
        IExpr::Neg(a) => const_fold(a)?.checked_neg()?,
    })
}

fn nonlinear_index(sites: &[walk::IndexSite], findings: &mut Vec<Finding>) {
    for site in sites {
        scan_nonlinear(&site.expr, &site.owner, findings);
    }
}

/// Reports the *maximal* nonlinear node and does not descend into it, so a
/// single offending product yields one finding.
fn scan_nonlinear(e: &IExpr, owner: &str, findings: &mut Vec<Finding>) {
    match e {
        IExpr::Mul(a, b) if const_fold(a).is_none() && const_fold(b).is_none() => {
            findings.push(finding(
                "DML004",
                format!("product of two non-constant indices in `{owner}` is outside the linear fragment"),
                e.span(),
                vec![
                    "the solver decides only linear arithmetic (§3.2); this obligation will never be proven".to_string(),
                    "hoist one factor to a constant, or introduce a fresh index variable equated to the product".to_string(),
                ],
            ));
        }
        IExpr::Div(a, b) | IExpr::Mod(a, b) if const_fold(b).is_none_or(|k| k <= 0) => {
            let op = if matches!(e, IExpr::Div(..)) { "div" } else { "mod" };
            let why = match const_fold(b) {
                None => "a non-constant divisor",
                Some(_) => "a non-positive constant divisor",
            };
            findings.push(finding(
                "DML004",
                format!("`{op}` with {why} in `{owner}` is outside the linear fragment"),
                e.span(),
                vec![
                    "the solver lowers `div`/`mod` only for positive literal divisors".to_string(),
                    "restructure the index so the divisor is a positive constant".to_string(),
                ],
            ));
            // The dividend may still hide another nonlinearity worth naming.
            scan_nonlinear(a, owner, findings);
        }
        IExpr::Add(a, b)
        | IExpr::Sub(a, b)
        | IExpr::Mul(a, b)
        | IExpr::Div(a, b)
        | IExpr::Mod(a, b)
        | IExpr::Min(a, b)
        | IExpr::Max(a, b) => {
            scan_nonlinear(a, owner, findings);
            scan_nonlinear(b, owner, findings);
        }
        IExpr::Abs(a) | IExpr::Sgn(a) | IExpr::Neg(a) => scan_nonlinear(a, owner, findings),
        IExpr::Var(_) | IExpr::Lit(_, _) => {}
    }
}

// ---------------------------------------------------------------------------
// DML006: residual-bound-check.
// ---------------------------------------------------------------------------

/// One finding per residual check site, carrying the solver's reason
/// (nonlinear constraint, fuel exhausted, deadline, possibly falsifiable).
/// The pipeline computes the residual set; this lint only reports it, so
/// like the other semantic lints it cannot fire on a proven site.
fn residual_bound_check(residuals: &[ResidualCheck], findings: &mut Vec<Finding>) {
    for r in residuals {
        let what = match r.check {
            CheckKind::ListTag => "list tag check",
            _ => "array bound check",
        };
        findings.push(finding(
            "DML006",
            format!("{what} for `{}` in `{}` stays at run time: {}", r.prim, r.in_fun, r.reason),
            r.site,
            vec![
                "the solver could not prove this access safe; the check is residual".to_string(),
                "strengthen the annotation, or compile strictly to make this an error".to_string(),
            ],
        ));
    }
}

// ---------------------------------------------------------------------------
// DML007: inferable-annotation.
// ---------------------------------------------------------------------------

/// One finding per solver-verified inferred annotation, anchored at the
/// function's name and carrying the machine-applicable [`Fix`]. Inference
/// already re-proved every obligation of the refined program, so — like
/// every other semantic lint — this cannot suggest anything the solver
/// would reject.
fn inferable_annotation(suggestions: &[InferSuggestion], findings: &mut Vec<Finding>) {
    for s in suggestions {
        let mut f = finding(
            "DML007",
            format!(
                "`{}` has no annotation, but a solver-verified one is inferable: `{}`",
                s.fun, s.rendered
            ),
            s.name_span,
            vec![
                format!("apply: insert `{}` after the function body", s.fixit.trim_start()),
                "interval analysis proposed it; the solver re-proved every eliminated check"
                    .to_string(),
            ],
        );
        f.fix = Some(Fix {
            description: format!("insert `where {} <| {}`", s.fun, s.rendered),
            insert_at: s.insert_at,
            text: s.fixit.clone(),
        });
        findings.push(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_index::UnknownReason;
    use dml_syntax::parse_program;
    use dml_types::convert::builtin_families;

    fn lint_src(src: &str) -> Vec<Finding> {
        let program = parse_program(src).expect("parses");
        let mut gen = VarGen::new();
        run_lints(&program, &[], &builtin_families(), &Solver::default(), &mut gen, &[], &[])
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn redundant_conjunct_is_flagged() {
        // `0 <= n` is exactly the nat sort guard.
        let f = lint_src("fun f(x) = x\nwhere f <| {n:nat | 0 <= n} int(n) -> int(n)\n");
        assert!(codes(&f).contains(&"DML002"), "{f:?}");
    }

    #[test]
    fn entailed_conjunct_is_flagged() {
        // n >= 1 entails n >= 0 — but over `int`, not via the nat guard.
        let f = lint_src("fun f(x) = x\nwhere f <| {n:int | n >= 1 && n >= 0} int(n) -> int(n)\n");
        let dml2: Vec<_> = f.iter().filter(|x| x.code == "DML002").collect();
        assert_eq!(dml2.len(), 1, "{f:?}");
        assert!(
            dml2[0].message.contains("0 <= n") || dml2[0].message.contains("n >= 0"),
            "{dml2:?}"
        );
    }

    #[test]
    fn independent_conjuncts_are_not_flagged() {
        let f = lint_src(
            "fun f(x) = x\nwhere f <| {n:int, i:int | 0 <= i && i < n} int(n) -> int(i)\n",
        );
        assert!(!codes(&f).contains(&"DML002"), "{f:?}");
        assert!(!codes(&f).contains(&"DML005"), "{f:?}");
    }

    /// The acceptance-criterion test shape: removing a hypothesis flips the
    /// verdict. With the `nat` sort the conjunct is redundant; weakening the
    /// binder to `int` removes the `0 <= n` hypothesis and the lint goes
    /// quiet.
    #[test]
    fn dropping_a_hypothesis_flips_redundancy() {
        let with_nat = lint_src("fun f(x) = x\nwhere f <| {n:nat | n >= 0} int(n) -> int(n)\n");
        assert!(codes(&with_nat).contains(&"DML002"), "{with_nat:?}");
        let with_int = lint_src("fun f(x) = x\nwhere f <| {n:int | n >= 0} int(n) -> int(n)\n");
        assert!(!codes(&with_int).contains(&"DML002"), "{with_int:?}");
    }

    #[test]
    fn unsatisfiable_guard_is_unprovable_annotation() {
        let f = lint_src("fun f(x) = x\nwhere f <| {n:nat | n < 0} int(n) -> int(n)\n");
        assert!(codes(&f).contains(&"DML005"), "{f:?}");
        // Ex falso must not also spam DML002.
        assert!(!codes(&f).contains(&"DML002"), "{f:?}");
    }

    #[test]
    fn unused_binder_is_flagged_and_used_is_not() {
        let f = lint_src("fun f(x) = x\nwhere f <| {n:nat, m:nat} int(n) -> int(n)\n");
        let dml3: Vec<_> = f.iter().filter(|x| x.code == "DML003").collect();
        assert_eq!(dml3.len(), 1, "{f:?}");
        assert!(dml3[0].message.contains("`m`"), "{dml3:?}");
    }

    #[test]
    fn self_referential_guard_does_not_count_as_use() {
        let f = lint_src("fun f(x) = x\nwhere f <| {n:nat | n > 0} int -> int\n");
        assert!(codes(&f).contains(&"DML003"), "{f:?}");
    }

    #[test]
    fn nonlinear_product_and_divisor_are_flagged() {
        let f = lint_src("fun f(x) = x\nwhere f <| {n:nat, m:nat} int(n * m) -> int(n)\n");
        assert!(codes(&f).contains(&"DML004"), "{f:?}");
        let g =
            lint_src("fun g(x) = x\nwhere g <| {n:nat, m:nat | m > 0} int(n div m) -> int(n)\n");
        assert!(codes(&g).contains(&"DML004"), "{g:?}");
    }

    #[test]
    fn linear_indices_are_quiet() {
        let f = lint_src(
            "fun f(x) = x\nwhere f <| {n:nat, i:int | 0 <= i && i < n} int(2 * n + i - 1) -> int(n div 2)\n",
        );
        assert!(!codes(&f).contains(&"DML004"), "{f:?}");
    }

    #[test]
    fn residual_checks_surface_as_dml006() {
        let program = parse_program("fun f(x) = x").expect("parses");
        let mut gen = VarGen::new();
        let residuals = vec![ResidualCheck {
            site: Span::new(4, 9),
            prim: "sub".into(),
            check: CheckKind::ArrayBound,
            in_fun: "f".into(),
            reason: UnknownReason::Nonlinear("i * i".into()),
        }];
        let f = run_lints(
            &program,
            &[],
            &builtin_families(),
            &Solver::default(),
            &mut gen,
            &residuals,
            &[],
        );
        let dml6: Vec<_> = f.iter().filter(|x| x.code == "DML006").collect();
        assert_eq!(dml6.len(), 1, "{f:?}");
        assert!(dml6[0].message.contains("sub"), "{dml6:?}");
        assert!(dml6[0].message.contains("non-linear"), "{dml6:?}");
        assert_eq!(dml6[0].span, Span::new(4, 9));
    }

    #[test]
    fn const_fold_handles_compound_constants() {
        use dml_syntax::ast::IExpr as E;
        let lit = |n| Box::new(E::Lit(n, Span::default()));
        assert_eq!(const_fold(&E::Mul(lit(3), Box::new(E::Neg(lit(2))))), Some(-6));
        assert_eq!(const_fold(&E::Div(lit(7), lit(0))), None);
        assert_eq!(const_fold(&E::Var(sast::Ident::synth("n"))), None);
    }
}
