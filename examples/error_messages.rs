//! Demonstrates the informative error messages of §6's future work: a
//! program with an out-of-bounds access, a broken loop invariant, and a
//! non-exhaustive match, each explained against its source.
//!
//! ```text
//! cargo run --example error_messages
//! ```

fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

const BROKEN: &str = r#"
fun sumto(v, k) = let
  fun loop(i, acc) =
    if i <= k then loop(i+1, acc + sub(v, i)) else acc
  where loop <| {i:nat} int(i) * int -> int
in
  loop(0, 0)
end
where sumto <| {n:nat} int array(n) * int -> int

datatype color = RED | GREEN | BLUE
fun name(c) = case c of RED => 1 | GREEN => 2
"#;

fn main() {
    let compiled = compile(BROKEN).expect("the program parses and is ML-well-typed");
    assert!(!compiled.fully_verified(), "the access is genuinely unsafe");

    println!("== unproven obligations ==\n");
    print!("{}", compiled.explain_failures(BROKEN));

    println!("== match warnings ==\n");
    for (site, con) in compiled.match_warnings() {
        println!(
            "match at {site} may not be exhaustive: `{con}` not provably impossible\n  -> {}",
            site.slice(BROKEN)
        );
    }

    // Nothing is eliminated for an unverified program.
    assert!(compiled.proven_sites().is_empty());
    println!("\nproven sites: 0 (nothing is eliminated while obligations fail)");
}
