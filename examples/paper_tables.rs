//! Regenerates the paper's evaluation tables on scaled-down workloads.
//!
//! ```text
//! cargo run --release --example paper_tables [factor]
//! ```
//!
//! The optional factor (default 1) scales the workloads toward the paper's
//! sizes; see `EXPERIMENTS.md` for the mapping.

use dml::experiments;

fn main() {
    let factor: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    println!("== Table 1: constraint generation and solving ==");
    print!("{}", experiments::table1_rendered());

    println!("\n== Table 2: check elimination, low per-check cost model (factor {factor}) ==");
    let t2 = experiments::table2(factor);
    print!("{}", experiments::table_rendered(&t2));

    println!("\n== Table 3: check elimination, high per-check cost model (factor {factor}) ==");
    let t3 = experiments::table3(factor);
    print!("{}", experiments::table_rendered(&t3));

    assert!(t2.iter().all(|r| r.outputs_match), "modes must agree");
    assert!(t3.iter().all(|r| r.outputs_match), "modes must agree");
}
