//! Binary search (Figure 3): prints the Figure-4 constraints generated for
//! the `look` loop, then probes a sorted array with the midpoint check
//! eliminated.
//!
//! ```text
//! cargo run --example bsearch
//! ```

use dml::experiments::figure4;
use dml::{Mode, Value};
fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

use dml_programs::bsearch;

fn main() {
    println!("== Figure 4: constraints generated for `look` ==");
    for line in figure4() {
        println!("{line}");
    }

    let compiled = compile(bsearch::SOURCE).expect("bsearch compiles");
    assert!(compiled.fully_verified(), "binary search fully verifies");

    let (arr, keys) = bsearch::workload(1 << 14, 1 << 12, 2026);
    let arr_v = Value::int_array(arr.iter().copied());

    let mut machine = compiled.machine(Mode::Eliminated);
    let mut found = 0usize;
    let start = std::time::Instant::now();
    for &key in &keys {
        let r = machine.call("isearch", vec![bsearch::args(key, &arr_v)]).expect("runs");
        if matches!(&r, Value::Con(n, Some(_)) if &**n == "FOUND") {
            found += 1;
        }
    }
    let elapsed = start.elapsed();

    // Cross-check against the Rust reference.
    let expected = keys.iter().filter(|k| bsearch::reference(&arr, **k)).count();
    assert_eq!(found, expected);

    println!(
        "\nprobed {} keys into an array of {} in {:.1} ms: {} found",
        keys.len(),
        arr.len(),
        elapsed.as_secs_f64() * 1e3,
        found
    );
    println!(
        "bound checks: executed {}, eliminated {} (every `sub` in the loop is proven)",
        machine.counters.executed(),
        machine.counters.eliminated()
    );
}
