//! A tour of the verified library programs beyond the paper's benchmarks:
//! every function fully type-checks, every array/list access runs
//! unchecked, and validation confirms none could ever fault.
//!
//! ```text
//! cargo run --release --example verified_library
//! ```

use dml::{CheckConfig, Value};
use dml_programs::extra;
use std::rc::Rc;

fn validated_machine(src: &str) -> (dml::Compiled, dml::Machine) {
    let compiled = dml::Compiler::new().compile(src).expect("compiles");
    assert!(compiled.fully_verified(), "{}", compiled.explain_failures(src));
    let machine =
        compiled.machine_with(CheckConfig::eliminated(Default::default()).with_validation());
    (compiled, machine)
}

fn main() {
    println!("program        proven sites  result");
    println!("--------------------------------------------------");

    // Heap sort.
    let (compiled, mut m) = validated_machine(extra::HEAPSORT);
    let v = Value::int_array([9, 2, 7, 7, 1, 8, 0, 4]);
    m.call("heapsort", vec![v.clone()]).unwrap();
    println!(
        "heap sort      {:>12}  {:?}",
        compiled.proven_sites().len(),
        v.int_array_to_vec().unwrap()
    );
    assert_eq!(v.int_array_to_vec().unwrap(), vec![0, 1, 2, 4, 7, 7, 8, 9]);
    assert!(m.counters.array_checks_eliminated > 0);
    assert_eq!(m.counters.array_checks_executed, 0, "everything proven");

    // In-place reversal.
    let (compiled, mut m) = validated_machine(extra::ARRAY_REVERSE);
    let v = Value::int_array([1, 2, 3, 4, 5]);
    m.call("arev", vec![v.clone()]).unwrap();
    println!(
        "array reverse  {:>12}  {:?}",
        compiled.proven_sites().len(),
        v.int_array_to_vec().unwrap()
    );

    // Insertion point.
    let (compiled, mut m) = validated_machine(extra::LOWER_BOUND);
    let v = Value::int_array([2, 4, 6, 8, 10]);
    let r = m.call("lower_bound", vec![Value::Tuple(Rc::new(vec![v, Value::Int(7)]))]).unwrap();
    println!("lower bound    {:>12}  insertion point for 7 = {r}", compiled.proven_sites().len());
    assert_eq!(r.as_int(), Some(3));

    // Length-indexed list functions (no arrays — the proofs are about the
    // typeref'd list lengths).
    let (compiled, mut m) = validated_machine(extra::INSERTION_SORT);
    let l = Value::list([3, 1, 2].map(Value::Int));
    let r = m.call("isort", vec![l]).unwrap();
    println!("insertion sort {:>12}  {r}", compiled.proven_sites().len());

    let (compiled, mut m) = validated_machine(extra::ZIP);
    let r = m
        .call(
            "zip",
            vec![Value::Tuple(Rc::new(vec![
                Value::list([1, 2].map(Value::Int)),
                Value::list([10, 20].map(Value::Int)),
            ]))],
        )
        .unwrap();
    println!("zip            {:>12}  {r}", compiled.proven_sites().len());

    println!("\nall verified; all accesses ran unchecked under validation");
}
