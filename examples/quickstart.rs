//! Quickstart: compile Figure 1's `dotprod`, watch its bound checks get
//! proven away, and run it in both modes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dml::Mode;
fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

use dml_programs::dotprod;

fn main() {
    println!("== source (Figure 1 of the paper) ==\n{}", dotprod::SOURCE.trim());

    let compiled = compile(dotprod::SOURCE).expect("dotprod compiles");
    println!("\n== constraints ==");
    for (ob, r) in compiled.obligations() {
        println!("{ob}  [{}]", if r.is_proven() { "valid" } else { "NOT PROVEN" });
    }
    println!(
        "\nfully verified: {}; proven check sites: {}",
        compiled.fully_verified(),
        compiled.proven_sites().len()
    );

    let (v1, v2) = dotprod::workload(100_000, 42);
    let expected = dotprod::reference(&v1, &v2);

    for mode in [Mode::Checked, Mode::Eliminated] {
        let mut machine = compiled.machine(mode);
        let start = std::time::Instant::now();
        let r = machine.call("dotprod", vec![dotprod::args(&v1, &v2)]).expect("runs");
        let elapsed = start.elapsed();
        assert_eq!(r.as_int(), Some(expected), "both modes agree with the reference");
        println!(
            "\nmode {mode:?}: result {} in {:.1} ms — checks executed {}, eliminated {}",
            r,
            elapsed.as_secs_f64() * 1e3,
            machine.counters.executed(),
            machine.counters.eliminated(),
        );
    }
}
