//! Knuth–Morris–Pratt matching (Appendix A): the scan loop's accesses are
//! all proven, while `computePrefix` keeps some checks via `subCK` — the
//! paper's "several array bound checks ... cannot be eliminated".
//!
//! ```text
//! cargo run --example kmp
//! ```

use dml::Mode;
fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

use dml_programs::kmp;

fn main() {
    let compiled = compile(kmp::SOURCE).expect("kmp compiles");
    assert!(compiled.fully_verified(), "the program type-checks as written");
    println!(
        "proven check sites: {}   (the `subCK` escape hatches generate no obligations\n\
         and simply stay checked at run time)",
        compiled.proven_sites().len()
    );

    let pat = [0, 1, 0, 0, 1, 0, 1];
    let text = kmp::workload(20_000, &pat, Some(15_000), 7);

    let mut machine = compiled.machine(Mode::Eliminated);
    let found = machine
        .call("kmpMatch", vec![kmp::args(&text, &pat)])
        .expect("runs")
        .as_int()
        .expect("int result");
    assert_eq!(found, kmp::reference(&text, &pat), "agrees with the Rust reference");

    println!("\npattern {:?} first occurs at index {found}", pat);
    println!("checks executed (subCK residue): {}", machine.counters.array_checks_executed);
    println!("checks eliminated (proven sub/update): {}", machine.counters.array_checks_eliminated);
    assert!(machine.counters.array_checks_eliminated > machine.counters.array_checks_executed);
}
