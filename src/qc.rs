//! A tiny deterministic pseudo-random generator for fuzz-style tests.
//!
//! The repository builds offline, so the property tests use this fixed-seed
//! SplitMix64 generator instead of an external framework. Every run explores
//! the same inputs, which keeps failures reproducible without a regression
//! file; widen coverage by bumping iteration counts, not by reseeding.

/// SplitMix64: passes BigCrush, two lines of state transition, and good
/// enough equidistribution for coefficient soup.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi`. The modulo bias is irrelevant at test ranges
    /// (spans ≪ 2⁶⁴).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform in `lo..=hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.i64_in(lo as i64, hi as i64) as usize
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.i64_in(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in -2..=2 hit");
    }

    #[test]
    fn pick_stays_in_bounds() {
        let mut rng = Rng::new(3);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
