//! Workspace-level integration-test and example package for **dml-rs**, a
//! reproduction of *Eliminating Array Bound Checking Through Dependent
//! Types* (Xi & Pfenning, PLDI 1998).
//!
//! The real library lives in the `dml` facade crate and its constituent
//! crates (`dml-syntax`, `dml-index`, `dml-solver`, `dml-types`,
//! `dml-elab`, `dml-eval`, `dml-programs`). This package hosts:
//!
//! * `examples/` — runnable binaries demonstrating the public API;
//! * `tests/` — integration and property tests spanning all crates.

pub mod qc;

pub use dml;
pub use dml_elab;
pub use dml_eval;
pub use dml_index;
pub use dml_oracle;
pub use dml_programs;
pub use dml_solver;
pub use dml_syntax;
pub use dml_types;
