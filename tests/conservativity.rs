//! Conservativity: the dependent extension must not change the meaning of
//! programs (§1: "without the use of dependent types, programs will
//! elaborate and evaluate exactly as in ML").
//!
//! We strip the `where` annotations from each benchmark and check that the
//! stripped program (a) still passes the pipeline, (b) computes the same
//! results, and (c) keeps all of its run-time checks.

use dml::experiments::{bench_source, benchmarks};
use dml::Mode;

/// Removes `where <name> <| ...` clauses from a program source. The
/// annotation grammar is line-oriented in our sources: a `where` clause
/// runs until the first line that does not continue a type (this mirrors
/// `BenchProgram::annotation_lines`).
fn strip_annotations(src: &str) -> String {
    let mut out = String::new();
    let mut in_anno = false;
    for line in src.lines() {
        let t = line.trim_start();
        if t.starts_with("where ") {
            in_anno = true;
        }
        if in_anno {
            let end = line.trim_end();
            if !(end.ends_with("->")
                || end.ends_with("&&")
                || end.ends_with('*')
                || end.ends_with('|')
                || end.ends_with('}'))
            {
                in_anno = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn stripped_programs_still_compile_and_run_identically() {
    for b in benchmarks() {
        // `val` type ascriptions (kmp) are not strippable line-wise; the
        // eight table benchmarks only use `where` clauses.
        let annotated_src = bench_source(&b.program);
        let stripped_src = strip_annotations(&annotated_src);
        assert!(
            !stripped_src.contains("where "),
            "{}: annotations remain:\n{stripped_src}",
            b.program.name
        );

        let annotated = dml::Compiler::new()
            .compile(&annotated_src)
            .unwrap_or_else(|e| panic!("{} annotated: {e}", b.program.name));
        let stripped = dml::Compiler::new()
            .compile(&stripped_src)
            .unwrap_or_else(|e| panic!("{} stripped: {e}", b.program.name));

        // The stripped program cannot prove checks whose safety rests on
        // `where` annotations. Hanoi is the exception: its pole accesses
        // are guarded by boolean-singleton conditionals (`if 0 < ft andalso
        // ft - 1 < length pf then ...`), which refine the branch hypotheses
        // with no annotation at all — so its checks stay eliminable.
        let guard_based = b.program.name == "hanoi towers";
        if !guard_based {
            assert!(
                stripped.proven_sites().is_empty(),
                "{}: annotation-free code must keep its checks",
                b.program.name
            );
        }

        // Either way it behaves identically.
        let mut m1 = annotated.machine(Mode::Checked);
        let sum1 = (b.run)(&mut m1, 1);
        let mut m2 = stripped.machine(Mode::Eliminated);
        let sum2 = (b.run)(&mut m2, 1);
        assert_eq!(sum1, sum2, "{}: stripping annotations changed behaviour", b.program.name);
        if !guard_based {
            assert_eq!(
                m2.counters.eliminated(),
                0,
                "{}: nothing may be eliminated without annotations",
                b.program.name
            );
        }
        assert_eq!(
            m1.counters.executed(),
            m2.counters.executed() + m2.counters.eliminated(),
            "{}: same dynamic check total",
            b.program.name
        );
    }
}

#[test]
fn annotations_do_not_change_check_mode_results() {
    // The same machine-level execution with and without dependent types:
    // checked-mode runs of the annotated program equal eliminated-mode runs.
    for b in benchmarks() {
        let compiled = dml::experiments::compile_bench(&b);
        let mut c = compiled.machine(Mode::Checked);
        let mut e = compiled.machine(Mode::Eliminated);
        assert_eq!((b.run)(&mut c, 1), (b.run)(&mut e, 1), "{}", b.program.name);
    }
}

#[test]
fn plain_ml_program_unaffected_by_pipeline() {
    // A program using no dependent feature at all.
    let src = r#"
datatype 'a tree = LEAF | NODE of 'a tree * 'a * 'a tree
fun insert(t, x) = case t of
    LEAF => NODE(LEAF, x, LEAF)
  | NODE(l, y, r) => if x < y then NODE(insert(l, x), y, r)
                     else if x > y then NODE(l, y, insert(r, x))
                     else t
fun size(t) = case t of LEAF => 0 | NODE(l, _, r) => 1 + size(l) + size(r)
fun build(i, n, t) = if i < n then build(i + 1, n, insert(t, i * 7919 mod 101)) else t
fun main(n) = size(build(0, n, LEAF))
"#;
    let compiled = dml::Compiler::new().compile(src).unwrap();
    // The `mod` guards are provable (constant 101); tree code generates no
    // bound checks at all.
    let mut m = compiled.machine(Mode::Eliminated);
    let r = m.call("main", vec![dml::Value::Int(300)]).unwrap();
    assert_eq!(r.as_int(), Some(101), "all residues mod 101 appear");
    assert_eq!(m.counters.executed() + m.counters.eliminated(), 0, "no array checks at all");
}
