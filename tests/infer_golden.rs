//! Golden results for `dmlc infer` over the annotation-stripped corpus.
//!
//! Each `examples/*_bare.dml` twin is compiled with inference enabled and
//! must land exactly on its documented before/after residual counts —
//! the linear-index programs reach zero, the ones needing caller
//! preconditions (`dotprod`, `bcopy`) keep exactly the honest remainder.
//! A second test pins the synthesized fix-it text byte-for-byte across
//! solver configurations (workers × cache), which is what makes DML007
//! fix-its reproducible in CI.

use dml::Compiler;
use std::fs;

fn infer_file(path: &str) -> (String, dml::Compiled) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let compiled = Compiler::new()
        .infer(true)
        .compile(&src)
        .unwrap_or_else(|e| panic!("{path} failed to compile: {e}"));
    (src, compiled)
}

#[track_caller]
fn check_counts(path: &str, before: usize, after: usize, accepted_funs: &[&str]) {
    let (src, compiled) = infer_file(path);
    let report = compiled.infer_report().expect("inference was enabled");
    assert_eq!(
        (report.before, report.after),
        (before, after),
        "{path}: expected {before} -> {after}; report:\n{}",
        report.render_human(&src)
    );
    let got: Vec<&str> = report.accepted.iter().map(|a| a.fun.as_str()).collect();
    assert_eq!(got, accepted_funs, "{path}: accepted annotations");
    // What inference proved really is eliminated in the compiled program.
    assert_eq!(compiled.residual_checks().len(), after, "{path}: residual_checks disagrees");
}

#[test]
fn asum_bare_reaches_zero() {
    check_counts("examples/asum_bare.dml", 1, 0, &["asum", "loop"]);
}

#[test]
fn amax_bare_reaches_zero() {
    check_counts("examples/amax_bare.dml", 1, 0, &["amax", "go"]);
}

#[test]
fn bsearch_bare_reaches_zero() {
    check_counts("examples/bsearch_bare.dml", 1, 0, &["bsearch", "look"]);
}

#[test]
fn dotprod_bare_keeps_honest_residual() {
    check_counts("examples/dotprod_bare.dml", 2, 1, &["dotprod", "loop"]);
}

#[test]
fn bcopy_bare_proves_reads_keeps_writes() {
    check_counts("examples/bcopy_bare.dml", 10, 5, &["bcopy", "copy4", "copy1"]);
}

#[test]
fn residual_dml_fully_annotated_infers_nothing() {
    // Every function already carries an annotation, so inference has no
    // candidates — and in particular must not disturb the showcase file's
    // lint golden sequence.
    let (_, compiled) = infer_file("examples/residual.dml");
    let report = compiled.infer_report().unwrap();
    assert!(report.accepted.is_empty(), "{:?}", report.accepted);
    assert_eq!(report.before, report.after);
}

#[test]
fn fixits_are_byte_identical_across_configs() {
    let src = fs::read_to_string("examples/bcopy_bare.dml").unwrap();
    let mut renderings = Vec::new();
    for workers in [1usize, 4] {
        for cache in [true, false] {
            let compiled =
                Compiler::new().infer(true).workers(workers).cache(cache).compile(&src).unwrap();
            let report = compiled.infer_report().unwrap();
            let fixits: Vec<String> =
                report.accepted.iter().map(|a| format!("{}@{}", a.fixit, a.insert_at)).collect();
            renderings.push((workers, cache, fixits));
        }
    }
    let (_, _, first) = &renderings[0];
    for (workers, cache, fixits) in &renderings {
        assert_eq!(fixits, first, "fix-its differ under workers={workers} cache={cache}");
    }
}

#[test]
fn inferred_annotations_reparse() {
    // The fix-it text must be valid concrete syntax: applying it to the
    // source and re-parsing yields a program whose annotation count grew.
    for path in ["examples/asum_bare.dml", "examples/bsearch_bare.dml"] {
        let (src, compiled) = infer_file(path);
        let report = compiled.infer_report().unwrap();
        let mut patched = src.clone();
        let mut edits: Vec<_> = report.accepted.iter().collect();
        edits.sort_by_key(|a| std::cmp::Reverse(a.insert_at));
        for a in edits {
            patched.insert_str(a.insert_at as usize, &a.fixit);
        }
        dml_syntax::parse_program(&patched)
            .unwrap_or_else(|e| panic!("{path}: patched source failed to parse: {e}\n{patched}"));
        // And the patched source now proves everything the AST route did.
        let recompiled = Compiler::new().compile(&patched).unwrap();
        assert_eq!(
            recompiled.residual_checks().len(),
            report.after,
            "{path}: textual fix-its disagree with AST application\n{patched}"
        );
    }
}

#[test]
fn strip_then_infer_roundtrips_seed_benchmarks() {
    // Stripping the paper benchmarks' annotations and re-inferring must
    // never crash and never leave more residuals than functions; the
    // fully linear `dotprod` loop body recovers its read invariant.
    for p in dml_programs::all_programs() {
        let stripped = dml::strip_annotations(p.source).unwrap();
        assert!(!stripped.contains("where"), "{}: strip left a where-clause", p.name);
        let compiled = Compiler::new()
            .infer(true)
            .compile(&stripped)
            .unwrap_or_else(|e| panic!("{}: stripped source failed: {e}", p.name));
        let report = compiled.infer_report().unwrap();
        assert!(
            report.after <= report.before,
            "{}: inference regressed {} -> {}",
            p.name,
            report.before,
            report.after
        );
    }
}
