//! Golden verdict snapshots for every `.dml` file under `examples/`.
//!
//! Each example is compiled in permissive and strict mode and its
//! `(proven, refuted, unknown, residual)` counts are pinned. A solver or
//! elaborator change that silently proves fewer (or more!) obligations,
//! or that changes which checks stay at run time, shows up here as an
//! exact diff — update the table deliberately, with the reason in the
//! commit.

use dml::{Compiler, PipelineError};

/// `(file, proven, refuted, unknown, residual, strict_compiles)`.
///
/// The `*_bare.dml` twins are compiled *without* inference here — these
/// are their plain baselines; `tests/infer_golden.rs` pins what
/// `Compiler::infer(true)` recovers from each.
const SNAPSHOTS: &[(&str, usize, usize, usize, usize, bool)] = &[
    ("lints.dml", 6, 0, 2, 1, false),
    ("residual.dml", 6, 0, 1, 1, false),
    ("asum_bare.dml", 2, 0, 1, 1, false),
    ("amax_bare.dml", 2, 0, 1, 1, false),
    ("bsearch_bare.dml", 3, 0, 1, 1, false),
    ("dotprod_bare.dml", 3, 0, 2, 2, false),
    ("bcopy_bare.dml", 12, 0, 10, 10, false),
    // The annotated emit-backend examples (docs/EMIT.md): fully verified,
    // so strict mode compiles and nothing stays residual.
    ("dotprod.dml", 9, 0, 0, 0, true),
    ("bcopy.dml", 26, 0, 0, 0, true),
    ("bsearch.dml", 11, 0, 0, 0, true),
    ("aliasing_trap.dml", 18, 0, 0, 0, true),
];

fn counts(file: &str) -> (usize, usize, usize, usize, bool) {
    let path = format!("{}/examples/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let compiled = Compiler::new()
        .workers(1)
        .compile(&src)
        .unwrap_or_else(|e| panic!("{file} must compile permissively: {e}"));
    let (mut p, mut r, mut u) = (0, 0, 0);
    for (_, v) in compiled.obligations() {
        if v.is_proven() {
            p += 1;
        } else if v.is_refuted() {
            r += 1;
        } else {
            u += 1;
        }
    }
    let strict = match Compiler::new().workers(1).strict(true).compile(&src) {
        Ok(_) => true,
        Err(PipelineError::Unproven(_)) => false,
        Err(e) => panic!("{file} failed strict mode for a non-verdict reason: {e}"),
    };
    (p, r, u, compiled.residual_checks().len(), strict)
}

#[test]
fn every_example_matches_its_snapshot() {
    for &(file, proven, refuted, unknown, residual, strict) in SNAPSHOTS {
        let got = counts(file);
        assert_eq!(
            got,
            (proven, refuted, unknown, residual, strict),
            "{file}: (proven, refuted, unknown, residual, strict_compiles) drifted \
             from the pinned snapshot — if the change is intentional, update \
             tests/verdict_snapshot.rs"
        );
    }
}

#[test]
fn snapshot_table_covers_every_example() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples");
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "dml") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            assert!(
                SNAPSHOTS.iter().any(|(f, ..)| *f == name),
                "examples/{name} has no verdict snapshot — add it to tests/verdict_snapshot.rs"
            );
        }
    }
}

#[test]
fn verdicts_are_insensitive_to_solver_configuration() {
    // The same counts must come out of a parallel, cache-off compile —
    // configuration changes the schedule, never the verdicts.
    for &(file, proven, refuted, unknown, residual, _) in SNAPSHOTS {
        let path = format!("{}/examples/{file}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap();
        let compiled = Compiler::new().workers(4).cache(false).compile(&src).unwrap();
        let (mut p, mut r, mut u) = (0, 0, 0);
        for (_, v) in compiled.obligations() {
            if v.is_proven() {
                p += 1;
            } else if v.is_refuted() {
                r += 1;
            } else {
                u += 1;
            }
        }
        assert_eq!(
            (p, r, u, compiled.residual_checks().len()),
            (proven, refuted, unknown, residual),
            "{file}: verdict counts changed under workers=4, cache=off"
        );
    }
}
