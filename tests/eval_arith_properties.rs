//! Differential property test: randomly generated arithmetic programs are
//! rendered as DML source, pushed through the **entire pipeline**
//! (parse → infer → elaborate → solve → interpret), and compared against a
//! Rust reference evaluator with the same SML semantics (wrapping
//! arithmetic, flooring `div`/`mod`).
//!
//! This exercises conservativity from yet another angle: the programs are
//! annotation-free and must mean exactly what ML says they mean. Expression
//! shapes come from the deterministic in-repo generator (`dml_repro::qc`).

use dml_repro::qc::Rng;

/// A little arithmetic AST we can both render to DML and evaluate in Rust.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    Z,
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    /// Division with a never-zero divisor: `a div (iabs(b) + 1)`.
    DivP(Box<E>, Box<E>),
    /// Modulus with a never-zero divisor.
    ModP(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Abs(Box<E>),
    /// `if a <= b then c else d` — exercises boolean flow too.
    IfLe(Box<E>, Box<E>, Box<E>, Box<E>),
}

/// Depth-limited random expression: at depth 0 (or with ¼ probability)
/// emits a leaf, otherwise one of the nine compound forms.
fn random_e(rng: &mut Rng, depth: usize) -> E {
    if depth == 0 || rng.usize_in(0, 3) == 0 {
        return match rng.usize_in(0, 3) {
            0 => E::X,
            1 => E::Y,
            2 => E::Z,
            _ => E::Lit(rng.i64_in(-30, 29)),
        };
    }
    let d = depth - 1;
    match rng.usize_in(0, 8) {
        0 => E::Add(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        1 => E::Sub(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        2 => E::Mul(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        3 => E::DivP(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        4 => E::ModP(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        5 => E::Min(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        6 => E::Max(Box::new(random_e(rng, d)), Box::new(random_e(rng, d))),
        7 => E::Abs(Box::new(random_e(rng, d))),
        _ => E::IfLe(
            Box::new(random_e(rng, d)),
            Box::new(random_e(rng, d)),
            Box::new(random_e(rng, d)),
            Box::new(random_e(rng, d)),
        ),
    }
}

fn render(e: &E) -> String {
    match e {
        E::X => "x".into(),
        E::Y => "y".into(),
        E::Z => "z".into(),
        E::Lit(n) => {
            if *n < 0 {
                format!("~{}", -n)
            } else {
                n.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::DivP(a, b) => format!("({} div (iabs({}) + 1))", render(a), render(b)),
        E::ModP(a, b) => format!("({} mod (iabs({}) + 1))", render(a), render(b)),
        E::Min(a, b) => format!("imin({}, {})", render(a), render(b)),
        E::Max(a, b) => format!("imax({}, {})", render(a), render(b)),
        E::Abs(a) => format!("iabs({})", render(a)),
        E::IfLe(a, b, c, d) => {
            format!("(if {} <= {} then {} else {})", render(a), render(b), render(c), render(d))
        }
    }
}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn reference(e: &E, x: i64, y: i64, z: i64) -> i64 {
    match e {
        E::X => x,
        E::Y => y,
        E::Z => z,
        E::Lit(n) => *n,
        E::Add(a, b) => reference(a, x, y, z).wrapping_add(reference(b, x, y, z)),
        E::Sub(a, b) => reference(a, x, y, z).wrapping_sub(reference(b, x, y, z)),
        E::Mul(a, b) => reference(a, x, y, z).wrapping_mul(reference(b, x, y, z)),
        E::DivP(a, b) => {
            let d = reference(b, x, y, z).wrapping_abs().wrapping_add(1);
            let n = reference(a, x, y, z);
            if d == 0 {
                // |i64::MIN| + 1 wraps to i64::MIN + 1 ... never zero for
                // our value ranges, but stay total.
                0
            } else {
                floor_div(n, d)
            }
        }
        E::ModP(a, b) => {
            let d = reference(b, x, y, z).wrapping_abs().wrapping_add(1);
            let n = reference(a, x, y, z);
            if d == 0 {
                0
            } else {
                n.wrapping_sub(d.wrapping_mul(floor_div(n, d)))
            }
        }
        E::Min(a, b) => reference(a, x, y, z).min(reference(b, x, y, z)),
        E::Max(a, b) => reference(a, x, y, z).max(reference(b, x, y, z)),
        E::Abs(a) => reference(a, x, y, z).wrapping_abs(),
        E::IfLe(a, b, c, d) => {
            if reference(a, x, y, z) <= reference(b, x, y, z) {
                reference(c, x, y, z)
            } else {
                reference(d, x, y, z)
            }
        }
    }
}

#[test]
fn interpreter_matches_reference() {
    let mut rng = Rng::new(0xD1FF);
    for _ in 0..192 {
        let e = random_e(&mut rng, 4);
        let x = rng.i64_in(-100, 99);
        let y = rng.i64_in(-100, 99);
        let z = rng.i64_in(-100, 99);
        let src = format!("fun f(x, y, z) = {}", render(&e));
        let compiled = dml::Compiler::new()
            .compile(&src)
            .unwrap_or_else(|err| panic!("pipeline failed on:\n{src}\n{err}"));
        let mut m = compiled.machine(dml::Mode::Checked);
        let args = dml::Value::Tuple(std::rc::Rc::new(vec![
            dml::Value::Int(x),
            dml::Value::Int(y),
            dml::Value::Int(z),
        ]));
        let got = m.call("f", vec![args]).unwrap().as_int().unwrap();
        let want = reference(&e, x, y, z);
        assert_eq!(got, want, "program:\n{src}");
    }
}

/// The same programs under *eliminated* mode behave identically (there are
/// no array accesses, so this pins the conservativity of mode switching
/// itself).
#[test]
fn modes_agree_on_pure_arithmetic() {
    let mut rng = Rng::new(0x50DE);
    for _ in 0..64 {
        let e = random_e(&mut rng, 4);
        let src = format!("fun f(x, y, z) = {}", render(&e));
        let compiled = dml::Compiler::new().compile(&src).unwrap();
        let args = || {
            dml::Value::Tuple(std::rc::Rc::new(vec![
                dml::Value::Int(3),
                dml::Value::Int(-7),
                dml::Value::Int(11),
            ]))
        };
        let mut a = compiled.machine(dml::Mode::Checked);
        let mut b = compiled.machine(dml::Mode::Eliminated);
        let ra = a.call("f", vec![args()]).unwrap().as_int();
        let rb = b.call("f", vec![args()]).unwrap().as_int();
        assert_eq!(ra, rb, "program:\n{src}");
    }
}
