//! Regression pins: exact obligation counts and elimination results per
//! benchmark program. These are intentionally brittle — any change to the
//! elaborator's constraint generation shows up here first and must be
//! reviewed against EXPERIMENTS.md (Table 1's "constraints" column).

use dml::experiments::{bench_source, benchmarks};

#[test]
fn obligation_counts_are_stable() {
    let expected: &[(&str, usize)] = &[
        ("bcopy", 26),
        ("binary search", 11),
        ("bubble sort", 19),
        ("matrix mult", 25),
        ("queen", 17),
        ("quick sort", 39),
        ("hanoi towers", 33),
        ("list access", 6),
    ];
    for ((name, want), b) in expected.iter().zip(benchmarks()) {
        assert_eq!(*name, b.program.name, "table order changed");
        let compiled = dml::Compiler::new().compile(&bench_source(&b.program)).unwrap();
        assert_eq!(
            compiled.stats().constraints,
            *want,
            "{name}: obligation count drifted — update EXPERIMENTS.md Table 1 if intended"
        );
        assert!(compiled.fully_verified(), "{name}");
    }
}

#[test]
fn proven_site_counts_are_stable() {
    // (program, proven sub/update/nth sites)
    let expected: &[(&str, usize)] = &[
        ("bcopy", 10), // 4 sub + 4 update in copy4, 1 + 1 in copy1
        ("binary search", 1),
        ("bubble sort", 6),
        ("matrix mult", 6),
        ("queen", 2),
        ("quick sort", 6),
        ("hanoi towers", 8),
        ("list access", 1),
    ];
    for ((name, want), b) in expected.iter().zip(benchmarks()) {
        let compiled = dml::Compiler::new().compile(&bench_source(&b.program)).unwrap();
        assert_eq!(compiled.proven_sites().len(), *want, "{name}: proven-site count drifted");
    }
}

/// The pipeline is total on arbitrary parseable token soup: it may reject,
/// but it must never panic. (The elaborator's `unwrap`s are all justified
/// by phase-1 invariants; this test patrols that claim.)
#[test]
fn pipeline_is_total_on_vocabulary_soup() {
    use dml_repro::qc::Rng;

    const WORDS: &[&str] = &[
        "fun",
        "val",
        "let",
        "in",
        "end",
        "if",
        "then",
        "else",
        "case",
        "of",
        "where",
        "<|",
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "->",
        "=>",
        "=",
        "|",
        "::",
        "nat",
        "int",
        "x",
        "f",
        "n",
        "0",
        "1",
        "+",
        "*",
        "sub",
        "array",
        ",",
        ":",
        "'a",
        "&&",
        "~",
        "nil",
        "raise",
        "handle",
        "exception",
        "Subscript",
        "length",
        "list",
        "div",
    ];
    let mut rng = Rng::new(0x5009);
    let mut compiled_ok = 0u32;
    for _ in 0..1500 {
        let len = rng.usize_in(0, 29);
        let src = (0..len).map(|_| *rng.pick(WORDS)).collect::<Vec<_>>().join(" ");
        if let Ok(result) = dml::Compiler::new().compile(&src) {
            compiled_ok += 1;
            let _ = result.fully_verified();
        }
    }
    // Sanity that the generator produces at least some valid programs
    // (e.g. single-token declarations are rare; the empty program counts).
    assert!(compiled_ok > 0);
}
