//! Property tests for the scale-corpus generator (`dml_oracle::scale`)
//! and the batch farm (`dml::check_batch`): the generator's stamped
//! verdict counts are a *correctness oracle* — every case must elaborate
//! and produce exactly the predicted proven/residual/nonlinear split
//! under every solver configuration, and the batch farm must render the
//! same merged report regardless of worker count.

use dml::{check_batch, stable_body, BatchEntry, Compiler};
use dml_oracle::{gen_scale_corpus, verify_scale_case, ScaleConfig};

/// Seeds exercised by the property tests: a handful is enough to cover
/// every unit shape (the generator cycles proven/residual/mixed/nonlinear
/// chains by weight) while keeping the suite fast.
const SEEDS: [u64; 4] = [1, 7, 42, 0xdead_beef];

#[test]
fn generator_is_deterministic_per_seed() {
    for seed in SEEDS {
        let cfg = ScaleConfig::new(seed, 300).files(3);
        let a = gen_scale_corpus(&cfg);
        let b = gen_scale_corpus(&cfg);
        assert_eq!(a.cases.len(), b.cases.len(), "seed {seed}");
        for (x, y) in a.cases.iter().zip(b.cases.iter()) {
            assert_eq!(x.name, y.name, "seed {seed}");
            assert_eq!(x.source, y.source, "seed {seed}: regeneration differs");
            assert_eq!(x.expected, y.expected, "seed {seed}");
        }
        assert_eq!(a.obligations, b.obligations, "seed {seed}");
    }
}

#[test]
fn distinct_seeds_generate_distinct_corpora() {
    let a = gen_scale_corpus(&ScaleConfig::new(SEEDS[0], 300).files(2));
    let b = gen_scale_corpus(&ScaleConfig::new(SEEDS[1], 300).files(2));
    assert_ne!(a.cases[0].source, b.cases[0].source);
}

#[test]
fn every_case_elaborates_and_matches_its_stamp_across_the_matrix() {
    // {workers 1, workers 4} × {cache on, cache off}: the stamped counts
    // are configuration-invariant — elision soundness cannot depend on
    // scheduling or memoization.
    for seed in SEEDS {
        let corpus = gen_scale_corpus(&ScaleConfig::new(seed, 250).files(2));
        assert!(corpus.obligations >= 250, "seed {seed}: target undershot");
        for case in &corpus.cases {
            for workers in [1usize, 4] {
                for cache in [true, false] {
                    let compiled = Compiler::new()
                        .workers(workers)
                        .cache(cache)
                        .compile(&case.source)
                        .unwrap_or_else(|e| {
                            panic!(
                                "seed {seed} {}: workers={workers} cache={cache}: {e}",
                                case.name
                            )
                        });
                    verify_scale_case(&compiled, &case.expected).unwrap_or_else(|e| {
                        panic!("seed {seed} {}: workers={workers} cache={cache}: {e}", case.name)
                    });
                }
            }
        }
    }
}

#[test]
fn corpus_totals_absorb_per_case_stamps() {
    let corpus = gen_scale_corpus(&ScaleConfig::new(9, 400).files(4));
    let sites: usize = corpus.cases.iter().map(|c| c.expected.check_sites).sum();
    let obligations: usize = corpus.cases.iter().map(|c| c.obligations).sum();
    assert_eq!(corpus.expected.check_sites, sites);
    assert_eq!(corpus.obligations, obligations);
    assert_eq!(
        corpus.expected.check_sites,
        corpus.expected.proven_sites + corpus.expected.residual_sites,
        "every check site is either proven or residual"
    );
}

#[test]
fn batch_merged_report_is_worker_count_invariant() {
    // The same corpus through `check_batch` at jobs=1 and jobs=4 must
    // render identical merged reports modulo the volatile timing/cache
    // lines — the `--jobs N` byte-identity contract at the library level.
    let corpus = gen_scale_corpus(&ScaleConfig::new(3, 200).files(3));
    let entries: Vec<BatchEntry> = corpus
        .cases
        .iter()
        .map(|c| BatchEntry { name: format!("{}.dml", c.name), source: c.source.clone() })
        .collect();
    let seq = check_batch(&Compiler::new(), &entries, 1);
    let par = check_batch(&Compiler::new(), &entries, 4);
    assert!(seq.ok() && par.ok());
    assert_eq!(
        stable_body(&seq.merged_report()),
        stable_body(&par.merged_report()),
        "jobs=1 vs jobs=4 merged reports diverged"
    );
    assert_eq!(seq.summary.goals, par.summary.goals);
    assert_eq!(seq.summary.constraints, par.summary.constraints);
}
