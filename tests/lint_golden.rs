//! Golden lint results over the paper's benchmark programs and the
//! deliberately-flawed showcase example.
//!
//! The paper suite is the no-false-positive baseline: every benchmark the
//! evaluation (§4) type-checks must come out of the lint pass clean — in
//! particular the dead-branch lint must NOT fire on binary search or quick
//! sort, whose `if` conditions are all contingent. `examples/lints.dml` is
//! the other direction: each of its functions triggers exactly the lint it
//! was written for.

fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

fn lint_codes(src: &str) -> Vec<&'static str> {
    compile(src).expect("benchmark compiles").lints().iter().map(|f| f.code).collect()
}

#[test]
fn paper_benchmarks_are_lint_clean() {
    for p in dml_programs::all_programs() {
        let codes = lint_codes(p.source);
        assert!(codes.is_empty(), "`{}` should be lint-clean, got {codes:?}", p.name);
    }
}

/// The two table benchmarks with the most interesting branch structure,
/// called out explicitly: their guards are contingent, so the
/// solver-backed dead-branch lint stays quiet.
#[test]
fn dead_branch_does_not_fire_on_bsearch_or_quicksort() {
    for p in [dml_programs::bsearch::PROGRAM, dml_programs::quicksort::PROGRAM] {
        let codes = lint_codes(p.source);
        assert!(!codes.contains(&"DML001"), "`{}` has no dead branches, got {codes:?}", p.name);
    }
}

#[test]
fn showcase_example_triggers_every_lint() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/lints.dml"))
        .expect("examples/lints.dml exists");
    let compiled = compile(&src).expect("the showcase compiles (no hard errors)");
    let codes = lint_codes(&src);
    assert_eq!(
        codes,
        vec!["DML001", "DML002", "DML003", "DML004", "DML004", "DML005", "DML006"],
        "golden finding sequence"
    );
    // The findings are warnings, so the example still "passes" a plain
    // lint run...
    assert!(compiled.lints().iter().all(|f| f.severity == dml::Severity::Warning));
    // ...but it is intentionally NOT fully verified (the nonlinear index
    // equation stays unproven).
    assert!(!compiled.fully_verified());
}

/// DML007 closes the loop with `dmlc infer`: linting an unannotated
/// program whose residual checks inference can discharge produces one
/// inferable-annotation finding per accepted annotation, each carrying a
/// machine-applicable fix that renders as a SARIF `fixes` insertion.
#[test]
fn inferable_annotation_fires_with_sarif_fix() {
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/asum_bare.dml"))
            .expect("examples/asum_bare.dml exists");
    let compiled = compile(&src).expect("compiles");
    let findings = compiled.lints();
    let dml7: Vec<_> = findings.iter().filter(|f| f.code == "DML007").collect();
    assert_eq!(dml7.len(), 2, "outer `asum` + local `loop`: {findings:?}");
    assert!(dml7.iter().all(|f| f.severity == dml::Severity::Note), "advisory severity");
    for f in &dml7 {
        let fix = f.fix.as_ref().expect("DML007 carries a fix");
        assert!(fix.text.starts_with("\nwhere "), "fix is a where-clause: {}", fix.text);
        assert!((fix.insert_at as usize) <= src.len());
    }
    // SARIF schema: the fix renders as a zero-length-deletion replacement
    // (the SARIF encoding of a pure insertion) under `fixes`.
    let sarif = dml::render::sarif(&findings, &src, "examples/asum_bare.dml");
    assert!(sarif.contains("\"id\": \"DML007\""), "{sarif}");
    assert!(sarif.contains("\"fixes\": ["), "{sarif}");
    assert!(sarif.contains("\"charLength\": 0"), "{sarif}");
    assert!(sarif.contains("\"insertedContent\""), "{sarif}");
    // Applying every fix textually yields a residual-free program — the
    // lint's suggestion really is the `dmlc infer` result.
    let mut patched = src.clone();
    let mut fixes: Vec<_> = dml7.iter().map(|f| f.fix.as_ref().unwrap()).collect();
    fixes.sort_by_key(|f| std::cmp::Reverse(f.insert_at));
    for f in fixes {
        patched.insert_str(f.insert_at as usize, &f.text);
    }
    let recompiled = compile(&patched).expect("patched source compiles");
    assert!(recompiled.residual_checks().is_empty(), "{patched}");
}

/// Guarded-vs-unguarded pair over a real benchmark shape: adding a
/// redundant defensive bound test to bcopy's inner access makes DML001
/// fire; the original does not.
#[test]
fn defensive_recheck_is_reported_as_dead_branch() {
    let original = r#"
fun cap(v, i) = sub(v, i)
where cap <| {n:nat, i:nat | i < n} int array(n) * int(i) -> int
"#;
    assert!(lint_codes(original).is_empty());
    let defensive = r#"
fun cap(v, i) = if i < length(v) then sub(v, i) else 0
where cap <| {n:nat, i:nat | i < n} int array(n) * int(i) -> int
"#;
    let codes = lint_codes(defensive);
    assert_eq!(codes, vec!["DML001"], "the recheck is provably always true");
}
