//! Replays every checked-in regression constraint system in
//! `tests/corpus/*.goal` — divergences found while building the
//! differential oracle plus the tricky tightening cases from PAPER.md §5.
//!
//! Each file pins the solver's collapsed verdict via its `expect` line,
//! and the oracle must never *contradict* the solver: an enumerated
//! countermodel forbids `proven`, a rational unsatisfiability proof
//! forbids `refuted`.

use dml_index::VarGen;
use dml_oracle::{decide, parse_goal, OracleVerdict, DEFAULT_BOUND};
use dml_solver::{Solver, SolverOptions, SolverStats};

#[test]
fn corpus_cases_replay_to_their_pinned_verdicts() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "goal"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");

    let solver = Solver::new(SolverOptions::default().with_workers(Some(1)));
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut gen = VarGen::new();
        let case = parse_goal(&text, &mut gen).unwrap_or_else(|e| panic!("{name}: {e}"));
        let expect = case.expect.as_deref().unwrap_or_else(|| panic!("{name}: missing expect"));

        let mut stats = SolverStats::default();
        let verdict = solver.decide(&case.goal, &mut gen, &mut stats);
        let collapsed = if verdict.is_proven() {
            "proven"
        } else if verdict.is_refuted() {
            "refuted"
        } else {
            "unknown"
        };
        assert_eq!(collapsed, expect, "{name}: solver said `{verdict}`\n{text}");

        match decide(&case.goal, DEFAULT_BOUND) {
            OracleVerdict::Refuted(model) => assert_ne!(
                collapsed, "proven",
                "{name}: oracle countermodel {model:?} contradicts proven"
            ),
            OracleVerdict::Proven => assert_ne!(
                collapsed, "refuted",
                "{name}: rational unsatisfiability contradicts refuted"
            ),
            OracleVerdict::Unknown => {}
        }
    }
}

#[test]
fn corpus_covers_all_three_verdicts() {
    // The corpus is only a regression net if it exercises every verdict.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut seen = std::collections::BTreeSet::new();
    for e in std::fs::read_dir(dir).unwrap() {
        let p = e.unwrap().path();
        if p.extension().is_some_and(|x| x == "goal") {
            let text = std::fs::read_to_string(&p).unwrap();
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("expect ") {
                    seen.insert(v.trim().to_string());
                }
            }
        }
    }
    for v in ["proven", "refuted", "unknown"] {
        assert!(seen.contains(v), "corpus lacks an `expect {v}` case");
    }
}
