//! Fuel-monotonicity of the three-way verdict lattice.
//!
//! The budgeted solver must be *monotone in fuel*: granting a goal more
//! fuel may upgrade `Unknown` to `Proven` or `Refuted`, but can never
//! flip a decided verdict (`Proven` ↔ `Refuted`) or downgrade one back
//! to `Unknown`. The property must hold identically across worker
//! counts and with the verdict cache on or off — budgets partition the
//! cache key, so a cached low-fuel `Unknown` may never impersonate an
//! unlimited-fuel verdict.

use dml::{Compiler, Verdict};

/// Sources covering all three verdicts: fully-verified benchmarks
/// (Proven), an out-of-bounds access (Refuted), and a nonlinear index
/// (Unknown at every finite or infinite budget).
fn sources() -> Vec<(&'static str, String)> {
    let residual =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/residual.dml"))
            .expect("examples/residual.dml exists");
    vec![
        ("dotprod", dml_programs::dotprod::SOURCE.to_string()),
        ("bsearch", dml_programs::bsearch::SOURCE.to_string()),
        (
            "oob",
            "fun oops(v) = sub(v, length v)\nwhere oops <| {n:nat} int array(n) -> int\n"
                .to_string(),
        ),
        ("residual", residual),
    ]
}

fn configs() -> Vec<(usize, bool)> {
    vec![(1, true), (1, false), (4, true), (4, false)]
}

/// Per-obligation verdicts at a given fuel level, in pipeline order.
fn verdicts(src: &str, fuel: Option<u64>, workers: usize, cache: bool) -> Vec<Verdict> {
    let mut c = Compiler::new().workers(workers).cache(cache);
    if let Some(f) = fuel {
        c = c.fuel(f);
    }
    let compiled = c.compile(src).expect("permissive mode always compiles");
    compiled.obligations().iter().map(|(_, v)| v.clone()).collect()
}

fn decided(v: &Verdict) -> bool {
    matches!(v, Verdict::Proven | Verdict::Refuted)
}

const FUELS: [u64; 6] = [0, 1, 2, 4, 16, 128];

#[test]
fn verdicts_move_only_from_unknown_toward_decided_as_fuel_grows() {
    for (name, src) in sources() {
        for (workers, cache) in configs() {
            let ladder: Vec<Vec<Verdict>> = FUELS
                .iter()
                .map(|&f| verdicts(&src, Some(f), workers, cache))
                .chain(std::iter::once(verdicts(&src, None, workers, cache)))
                .collect();
            for pair in ladder.windows(2) {
                let (lo, hi) = (&pair[0], &pair[1]);
                assert_eq!(lo.len(), hi.len(), "{name}: obligation count is fuel-independent");
                for (a, b) in lo.iter().zip(hi) {
                    if decided(a) {
                        assert_eq!(
                            a, b,
                            "{name} (workers={workers}, cache={cache}): decided verdict \
                             changed under more fuel"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn verdicts_agree_across_workers_and_cache_at_every_fuel_level() {
    for (name, src) in sources() {
        for fuel in FUELS.iter().map(|&f| Some(f)).chain(std::iter::once(None)) {
            let reference = verdicts(&src, fuel, 1, true);
            for (workers, cache) in configs() {
                let got = verdicts(&src, fuel, workers, cache);
                assert_eq!(
                    got, reference,
                    "{name} at fuel {fuel:?}: workers={workers}, cache={cache} must agree \
                     with the sequential cached run"
                );
            }
        }
    }
}

#[test]
fn unlimited_fuel_never_reports_a_budget_reason() {
    // With no budget, any remaining Unknown must blame the goal itself
    // (nonlinearity, possible falsifiability) — never a resource limit.
    for (name, src) in sources() {
        for v in verdicts(&src, None, 1, true) {
            if let Verdict::Unknown(r) = &v {
                assert!(
                    !matches!(r, dml::UnknownReason::FuelExhausted | dml::UnknownReason::Deadline),
                    "{name}: budget reason at unlimited fuel: {v:?}"
                );
            }
        }
    }
}
