//! SML-semantics edge cases for the interpreter: sharing, shadowing,
//! evaluation order, first-match clause selection, and exception
//! propagation through the tail-call machinery.

use dml::{Mode, Value};
fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

use std::rc::Rc;

fn machine(src: &str) -> dml::Machine {
    compile(src).unwrap().machine(Mode::Checked)
}

fn pair(a: Value, b: Value) -> Value {
    Value::Tuple(Rc::new(vec![a, b]))
}

#[test]
fn arrays_are_shared_by_reference() {
    // A closure captures the array; external mutation is visible.
    let src = r#"
fun make_reader(v) = fn i => subCK(v, i)
fun poke(v) = update(v, 0, 99)
where poke <| {n:nat | n > 0} int array(n) -> unit
"#;
    let mut m = machine(src);
    let v = Value::int_array([1, 2]);
    let reader = m.call("make_reader", vec![v.clone()]).unwrap();
    let before = m.apply(reader.clone(), Value::Int(0), Default::default()).unwrap();
    assert_eq!(before.as_int(), Some(1));
    m.call("poke", vec![v]).unwrap();
    let after = m.apply(reader, Value::Int(0), Default::default()).unwrap();
    assert_eq!(after.as_int(), Some(99), "the closure sees the mutation");
}

#[test]
fn clause_selection_is_first_match() {
    let src = r#"
fun classify(0) = 100
  | classify(1) = 200
  | classify(n) = n
"#;
    let mut m = machine(src);
    assert_eq!(m.call("classify", vec![Value::Int(0)]).unwrap().as_int(), Some(100));
    assert_eq!(m.call("classify", vec![Value::Int(1)]).unwrap().as_int(), Some(200));
    assert_eq!(m.call("classify", vec![Value::Int(7)]).unwrap().as_int(), Some(7));
}

#[test]
fn evaluation_order_left_to_right() {
    // Side effects in a tuple happen left to right: (update; read) pairs.
    let src = r#"
fun probe(v) = ((update(v, 0, 1); subCK(v, 0)), (update(v, 0, 2); subCK(v, 0)))
"#;
    let mut m = machine(src);
    let v = Value::int_array([0]);
    let r = m.call("probe", vec![v]).unwrap();
    match r {
        Value::Tuple(vs) => {
            assert_eq!(vs[0].as_int(), Some(1));
            assert_eq!(vs[1].as_int(), Some(2));
        }
        other => panic!("expected tuple, got {other}"),
    }
}

#[test]
fn shadowing_in_nested_lets() {
    let src = r#"
fun f(x) = let
  val y = x + 1
in
  let val y = y * 10 in y + x end
end
"#;
    let mut m = machine(src);
    assert_eq!(m.call("f", vec![Value::Int(3)]).unwrap().as_int(), Some(43));
}

#[test]
fn partial_applications_are_independent() {
    let src = "fun add x y = x + y";
    let mut m = machine(src);
    let add = m.global("add").unwrap();
    let inc = m.apply(add.clone(), Value::Int(1), Default::default()).unwrap();
    let dec = m.apply(add, Value::Int(-1), Default::default()).unwrap();
    let a = m.apply(inc.clone(), Value::Int(10), Default::default()).unwrap();
    let b = m.apply(dec, Value::Int(10), Default::default()).unwrap();
    let c = m.apply(inc, Value::Int(100), Default::default()).unwrap();
    assert_eq!(a.as_int(), Some(11));
    assert_eq!(b.as_int(), Some(9));
    assert_eq!(c.as_int(), Some(101), "partials do not share argument state");
}

#[test]
fn exceptions_propagate_through_deep_tail_recursion() {
    let src = r#"
exception Found
fun hunt(i, n) = if i = n then raise Found else hunt(i + 1, n)
fun search(n) = (hunt(0, n); 0) handle Found => 1
"#;
    let mut m = machine(src);
    // 500k tail-recursive frames, then the exception unwinds cleanly.
    let r = m.call("search", vec![Value::Int(500_000)]).unwrap();
    assert_eq!(r.as_int(), Some(1));
}

#[test]
fn handler_restores_normal_control_flow() {
    let src = r#"
fun risky(v, i) = sub(v, i) handle Subscript => 0
fun total(v) = let
  fun go(i, acc) = if i < 6 then go(i + 1, acc + risky(v, i)) else acc
in
  go(0, 0)
end
"#;
    let mut m = machine(src);
    let v = Value::int_array([10, 20, 30]);
    // Indices 0..2 read values; 3..5 are caught and contribute 0.
    let r = m.call("total", vec![v]).unwrap();
    assert_eq!(r.as_int(), Some(60));
}

#[test]
fn wrapping_arithmetic_matches_machine_ints() {
    let src = "fun mul(a, b) = a * b";
    let mut m = machine(src);
    let r = m.call("mul", vec![pair(Value::Int(i64::MAX), Value::Int(2))]).unwrap();
    assert_eq!(r.as_int(), Some(i64::MAX.wrapping_mul(2)));
}

#[test]
fn nested_handles_choose_innermost() {
    let src = r#"
exception A
exception B
fun f(x) =
  ((if x = 0 then raise A else raise B) handle A => 1) handle B => 2
"#;
    let mut m = machine(src);
    assert_eq!(m.call("f", vec![Value::Int(0)]).unwrap().as_int(), Some(1));
    assert_eq!(m.call("f", vec![Value::Int(5)]).unwrap().as_int(), Some(2));
}
