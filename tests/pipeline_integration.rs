//! End-to-end pipeline tests over every benchmark program: compile,
//! verify, run in both modes **with validation enabled**, and compare
//! results. Validation turns any out-of-bounds access at an "eliminated"
//! site into a hard error, so these tests are the soundness net for the
//! whole system.

use dml::experiments::{bench_source, benchmarks, compile_bench};
use dml::{CheckConfig, Mode, Value};
use dml_programs as progs;

#[test]
fn every_benchmark_fully_verifies_and_eliminates() {
    for b in benchmarks() {
        let compiled = compile_bench(&b);
        assert!(
            compiled.fully_verified(),
            "{}:\n{}",
            b.program.name,
            compiled
                .failures()
                .map(|(o, r)| format!("{o} -- {r:?}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(!compiled.proven_sites().is_empty(), "{}", b.program.name);
        assert!(
            compiled.unproven_sites().is_empty(),
            "{} has unproven check sites",
            b.program.name
        );
    }
}

#[test]
fn eliminated_runs_validate_and_agree_with_checked_runs() {
    for b in benchmarks() {
        let compiled = compile_bench(&b);
        let mut checked = compiled.machine(Mode::Checked);
        let checked_sum = (b.run)(&mut checked, 1);

        // Validation mode: even "eliminated" accesses verify their bounds
        // and abort with `UnsoundElimination` on violation.
        let mut validated =
            compiled.machine_with(CheckConfig::eliminated(Default::default()).with_validation());
        let eliminated_sum = (b.run)(&mut validated, 1);

        assert_eq!(checked_sum, eliminated_sum, "{} results differ", b.program.name);
        assert!(validated.counters.eliminated() > 0, "{} eliminated no checks", b.program.name);
        assert_eq!(
            checked.counters.executed(),
            validated.counters.eliminated() + validated.counters.executed(),
            "{}: every check is either executed or eliminated",
            b.program.name
        );
    }
}

#[test]
fn check_counts_scale_with_workload() {
    let b = benchmarks().remove(7); // list access
    assert_eq!(b.program.name, "list access");
    let compiled = compile_bench(&b);
    let mut m1 = compiled.machine(Mode::Checked);
    (b.run)(&mut m1, 1);
    let mut m2 = compiled.machine(Mode::Checked);
    (b.run)(&mut m2, 2);
    assert_eq!(m2.counters.tag_checks_executed, 2 * m1.counters.tag_checks_executed);
}

#[test]
fn kmp_eliminates_scan_but_not_prefix_residue() {
    let compiled = dml::Compiler::new().compile(progs::kmp::SOURCE).unwrap();
    assert!(compiled.fully_verified());
    let pat = [0, 1, 0, 1, 1];
    let text = progs::kmp::workload(2000, &pat, Some(1500), 9);

    let mut m =
        compiled.machine_with(CheckConfig::eliminated(Default::default()).with_validation());
    let got = m.call("kmpMatch", vec![progs::kmp::args(&text, &pat)]).unwrap().as_int().unwrap();
    assert_eq!(got, progs::kmp::reference(&text, &pat));
    assert!(m.counters.array_checks_eliminated > 0, "scan loop eliminated");
    assert!(m.counters.array_checks_executed > 0, "subCK residue still checked");
    assert!(
        m.counters.array_checks_eliminated > 4 * m.counters.array_checks_executed,
        "most checks are eliminated ({} vs {})",
        m.counters.array_checks_eliminated,
        m.counters.array_checks_executed
    );
}

#[test]
fn tampered_program_is_caught_not_eliminated() {
    // Deliberately break dotprod's loop bound: i <= n becomes i <= n+1,
    // which would allow one out-of-bounds access.
    let src = progs::dotprod::SOURCE
        .replace("{i:nat | i <= n}", "{i:nat | i <= n+1}")
        .replace("if i = n then sum", "if i = n+1 then sum");
    let compiled = dml::Compiler::new().compile(&src).unwrap();
    assert!(!compiled.fully_verified(), "the solver must reject the out-of-bounds variant");
    assert!(compiled.proven_sites().is_empty(), "no elimination when verification fails");
    // In checked mode the faulty program traps instead of reading OOB.
    let mut m = compiled.machine(Mode::Checked);
    let (v1, v2) = progs::dotprod::workload(8, 1);
    let err = m.call("dotprod", vec![progs::dotprod::args(&v1, &v2)]).unwrap_err();
    assert!(matches!(err, dml_eval::EvalError::BoundsViolation { .. }));
}

#[test]
fn expository_programs_verify_and_run() {
    // dotprod
    let c = dml::Compiler::new().compile(progs::dotprod::SOURCE).unwrap();
    assert!(c.fully_verified());
    let (v1, v2) = progs::dotprod::workload(64, 5);
    let mut m = c.machine(Mode::Eliminated);
    let r = m.call("dotprod", vec![progs::dotprod::args(&v1, &v2)]).unwrap();
    assert_eq!(r.as_int(), Some(progs::dotprod::reference(&v1, &v2)));

    // reverse
    let c = dml::Compiler::new().compile(progs::reverse::SOURCE).unwrap();
    assert!(c.fully_verified());
    let mut m = c.machine(Mode::Eliminated);
    let r = m.call("reverse", vec![progs::reverse::workload(10)]).unwrap();
    let out: Vec<i64> = r.list_to_vec().unwrap().iter().map(|v| v.as_int().unwrap()).collect();
    assert_eq!(out, (0..10).rev().collect::<Vec<i64>>());

    // filter (existential result length)
    let c = dml::Compiler::new().compile(progs::filter::SOURCE).unwrap();
    assert!(c.fully_verified());
}

#[test]
fn table_source_compiles_via_bench_source() {
    for b in benchmarks() {
        let src = bench_source(&b.program);
        assert!(dml::Compiler::new().compile(&src).is_ok(), "{}", b.program.name);
    }
}

#[test]
fn proven_site_spans_match_actual_prim_applications() {
    let compiled = dml::Compiler::new().compile(progs::bsearch::SOURCE).unwrap();
    // The single proven site must be inside the program text and cover a
    // `sub` application.
    for span in compiled.proven_sites() {
        let text = span.slice(progs::bsearch::SOURCE);
        assert!(text.starts_with("sub"), "site text: {text}");
    }
}

#[test]
fn values_round_trip_through_machine() {
    let src = "fun id(x) = x";
    let compiled = dml::Compiler::new().compile(src).unwrap();
    let mut m = compiled.machine(Mode::Checked);
    for v in [
        Value::Int(42),
        Value::Bool(true),
        Value::Unit,
        Value::list([Value::Int(1), Value::Int(2)]),
        Value::int_array([3, 4, 5]),
    ] {
        let r = m.call("id", vec![v.clone()]).unwrap();
        assert!(dml_eval::value::value_eq(&r, &v), "{v} round-trips");
    }
}

#[test]
fn extra_library_programs_fully_verify() {
    for p in dml_programs::extra::all() {
        let c =
            dml::Compiler::new().compile(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(c.fully_verified(), "{}:\n{}", p.name, c.explain_failures(p.source));
    }
}

#[test]
fn extra_programs_run_eliminated_with_validation() {
    use dml_programs::extra;
    // array reverse, validated elimination
    let c = dml::Compiler::new().compile(extra::ARRAY_REVERSE).unwrap();
    let mut m = c.machine_with(CheckConfig::eliminated(Default::default()).with_validation());
    let v = Value::int_array([1, 2, 3, 4]);
    m.call("arev", vec![v.clone()]).unwrap();
    assert_eq!(v.int_array_to_vec().unwrap(), vec![4, 3, 2, 1]);
    assert!(m.counters.array_checks_eliminated > 0);
    assert_eq!(m.counters.array_checks_executed, 0);

    // lower_bound, validated elimination
    let c = dml::Compiler::new().compile(extra::LOWER_BOUND).unwrap();
    let mut m = c.machine_with(CheckConfig::eliminated(Default::default()).with_validation());
    let v = Value::int_array([2, 4, 6, 8]);
    let arg = Value::Tuple(std::rc::Rc::new(vec![v, Value::Int(5)]));
    let r = m.call("lower_bound", vec![arg]).unwrap();
    assert_eq!(r.as_int(), Some(2));
}

#[test]
fn ops_counter_is_deterministic() {
    let b = &benchmarks()[1]; // binary search
    let compiled = compile_bench(b);
    let mut a = compiled.machine(Mode::Checked);
    let mut c = compiled.machine(Mode::Checked);
    (b.run)(&mut a, 1);
    (b.run)(&mut c, 1);
    assert_eq!(a.ops, c.ops, "abstract op count is bit-for-bit reproducible");
    assert!(a.ops > 0);
}
