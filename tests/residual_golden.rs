//! Golden test for `examples/residual.dml`: the graceful-degradation
//! showcase must keep compiling permissively, fail strictly, and count
//! its residual check at run time — across both the nonlinear fallback
//! (default budgets) and the fuel-exhaustion path (`fuel = 0`).

use dml::{Compiler, Mode, PipelineError, UnknownReason, Value};

fn source() -> String {
    std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/residual.dml"))
        .expect("examples/residual.dml exists")
}

#[test]
fn permissive_compile_leaves_one_nonlinear_residual() {
    let src = source();
    let compiled = Compiler::new().compile(&src).expect("permissive mode compiles");
    assert!(!compiled.fully_verified());
    assert_eq!(compiled.proven_sites().len(), 1, "`first` is proven");

    let residual = compiled.residual_checks();
    assert_eq!(residual.len(), 1, "only `middle`'s bound survives");
    let rc = &residual[0];
    assert_eq!(rc.in_fun, "middle");
    assert!(
        matches!(&rc.reason, UnknownReason::Nonlinear(e) if e == "i * j"),
        "nonlinear fallback: {:?}",
        rc.reason
    );
    let line = rc.to_string();
    assert!(line.contains("residual array bound check for `sub` in middle"), "{line}");
    assert!(line.contains("non-linear constraint: i * j"), "{line}");
}

#[test]
fn strict_compile_rejects_the_nonlinear_bound() {
    let src = source();
    match Compiler::new().strict(true).compile(&src) {
        Err(PipelineError::Unproven(obs)) => {
            assert_eq!(obs.len(), 1, "exactly the `middle` bound");
            assert_eq!(obs[0].0.in_fun, "middle");
        }
        other => panic!("expected Unproven, got {:?}", other.map(|_| "Ok")),
    }
}

#[test]
fn fuel_exhaustion_adds_a_second_residual() {
    let src = source();
    let compiled = Compiler::new().fuel(0).compile(&src).expect("still permissive");
    let residual = compiled.residual_checks();
    assert_eq!(residual.len(), 2, "both bounds stay at fuel 0");
    assert!(
        residual
            .iter()
            .any(|rc| rc.in_fun == "first" && matches!(rc.reason, UnknownReason::FuelExhausted)),
        "`first` exhausts its budget: {residual:?}"
    );
    assert!(
        residual
            .iter()
            .any(|rc| rc.in_fun == "middle" && matches!(rc.reason, UnknownReason::Nonlinear(_))),
        "`middle` stays nonlinear: {residual:?}"
    );
}

#[test]
fn residual_check_executes_and_is_counted_at_runtime() {
    let src = source();
    let compiled = Compiler::new().compile(&src).expect("compiles");
    let mut machine = compiled.machine(Mode::Eliminated);
    let r = machine.call("demo", vec![Value::Int(3)]).expect("runs");
    assert_eq!(r.as_int(), Some(14));
    assert_eq!(machine.counters.array_checks_eliminated, 1, "`first`'s check is gone");
    assert_eq!(machine.counters.array_checks_executed, 1, "`middle`'s check ran");
    assert_eq!(machine.counters.array_checks_residual, 1, "…and was counted residual");
    assert_eq!(machine.counters.residual(), 1);
}
