//! Differential property suite: the production solver against the
//! independent oracle (`dml-oracle`) across the full configuration
//! matrix — {workers 1,4} × {cache on,off} × {fuel limited,unlimited} —
//! via the fuzz harness. Any Proven/Refuted flip between configurations,
//! or a decided disagreement with either reference decider, fails with a
//! minimized, replayable repro in the assertion message.

use dml_oracle::{run_fuzz, FuzzConfig};

#[test]
fn no_divergences_across_seeds() {
    for seed in [1, 2, 3] {
        let report =
            run_fuzz(&FuzzConfig { seed, iters: 250, programs: false, ..FuzzConfig::default() });
        assert!(report.ok(), "seed {seed}:\n{}", report.render_human());
    }
}

#[test]
fn fixed_seed_runs_are_bit_identical() {
    let cfg = FuzzConfig { seed: 42, iters: 120, programs: false, ..FuzzConfig::default() };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert!(a.ok(), "{}", a.render_human());
    assert_eq!(a.digest, b.digest, "verdict digests differ for the same seed");
    assert_eq!(a.render_json(), b.render_json(), "full reports differ for the same seed");
}

#[test]
fn generator_exercises_every_verdict() {
    // A degenerate generator (everything proven, or everything unknown)
    // would make the differential comparison vacuous.
    let report =
        run_fuzz(&FuzzConfig { seed: 5, iters: 300, programs: false, ..FuzzConfig::default() });
    assert!(report.ok(), "{}", report.render_human());
    assert!(report.proven > 0, "no proven goals in 300 iterations");
    assert!(report.refuted > 0, "no refuted goals in 300 iterations");
    assert!(report.oracle_proven > 0, "oracle never proved");
    assert!(report.oracle_refuted > 0, "oracle never refuted");
    assert!(report.metamorphic_checks > 0);
    assert!(report.worker_checked_goals > 0);
}
