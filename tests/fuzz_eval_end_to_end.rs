//! End-to-end properties over generated DML programs: every case
//! compiles permissively and strictly, runs under checked and
//! eliminated-with-validation interpreters, and must produce identical
//! results with coherent check counters (residual checks never
//! undercount actual array accesses). See `dml_oracle::program` for the
//! exact property list.

use dml_oracle::program::check_program_case;
use dml_oracle::{run_fuzz, FuzzConfig, OracleRng};

#[test]
fn generated_programs_agree_across_modes() {
    for seed in [5, 17, 29] {
        let mut rng = OracleRng::new(seed);
        for case in 0..40 {
            if let Err(e) = check_program_case(&mut rng) {
                panic!("seed {seed} case {case} diverged:\n{e}");
            }
        }
    }
}

#[test]
fn harness_runs_program_cases_inline() {
    let report = run_fuzz(&FuzzConfig { seed: 8, iters: 64, ..FuzzConfig::default() });
    assert!(report.ok(), "{}", report.render_human());
    assert_eq!(report.program_cases, 8, "one program case per 8 goal iterations");
}
