//! Adversarial soundness tests for check elimination.
//!
//! Template programs with exhaustively enumerated offsets are pushed
//! through the pipeline. The contract under test:
//!
//! * **Soundness** (must always hold): if the pipeline verifies a program
//!   and eliminates its checks, running it in eliminated mode with
//!   validation enabled never observes an out-of-bounds access.
//! * **Precision** (should hold for this fragment): the solver verifies a
//!   template instance *iff* it is actually safe — linear off-by-N facts
//!   are exactly what Fourier–Motzkin decides.

/// `loop` reads `v[i + off]` while `i <= n - bound`; safe iff `off < bound`
/// ... precisely: accesses i+off for 0 ≤ i ≤ n−bound need i+off < n, i.e.
/// off ≤ bound−1 (given the loop also requires n ≥ bound to iterate).
fn offset_walk(off: i64, bound: i64) -> String {
    format!(
        r#"
fun f(v) = let
  val n = length v
  fun loop(i, acc) =
    if i <= n - {bound} then loop(i+1, acc + sub(v, i + {off})) else acc
  where loop <| {{i:nat}} int(i) * int -> int
in
  loop(0, 0)
end
where f <| {{m:nat}} int array(m) -> int
"#
    )
}

/// Reads `v[n div d + off]` guarded by `n > guard`; safe iff
/// `m/d + off < m` for all `m > guard` — for d ≥ 2 this is
/// `off < guard − guard div d` territory; we let the solver and brute
/// force fight it out.
fn div_probe(d: i64, off: i64, guard: i64) -> String {
    // SML negative literals use `~`.
    let off_lit = if off < 0 { format!("(~{})", -off) } else { off.to_string() };
    format!(
        r#"
fun g(v) = let
  val n = length v
in
  if n > {guard} then sub(v, n div {d} + {off_lit}) else 0
end
where g <| {{m:nat}} int array(m) -> int
"#
    )
}

/// Ground truth for `offset_walk`: is every dynamic access in bounds, for
/// every array length?
fn offset_walk_safe(off: i64, bound: i64) -> bool {
    // The loop runs i = 0 .. n−bound (inclusive) whenever n ≥ bound;
    // accesses i+off must satisfy 0 ≤ i+off < n. Worst case i = n−bound:
    // need n−bound+off < n ⇔ off < bound, and i=0: off ≥ 0.
    off >= 0 && off < bound
}

/// Ground truth for `div_probe` by brute force over lengths.
fn div_probe_safe(d: i64, off: i64, guard: i64) -> bool {
    (0..=200i64).filter(|m| *m > guard).all(|m| {
        let idx = m.div_euclid(d) + off;
        (0..m).contains(&idx)
    })
}

fn run_validated(src: &str, compiled: &dml::Compiled, len: usize, fun: &str) {
    let mut m =
        compiled.machine_with(dml::CheckConfig::eliminated(Default::default()).with_validation());
    let v = dml::Value::int_array(0..len as i64);
    match m.call(fun, vec![v]) {
        Ok(_) => {}
        Err(dml_eval::EvalError::UnsoundElimination { .. }) => {
            panic!("UNSOUND ELIMINATION on:\n{src}\nlen = {len}")
        }
        // Checked-trap or other runtime errors are fine for unverified
        // programs, but a verified one must not trap either.
        Err(e) => {
            if compiled.fully_verified() {
                panic!("verified program trapped: {e}\n{src}\nlen = {len}");
            }
        }
    }
}

/// Exhaustive over the full parameter grid (25 instances) — no sampling
/// needed at this size.
#[test]
fn offset_walk_verification_is_exact() {
    for off in 0i64..5 {
        for bound in 1i64..6 {
            let src = offset_walk(off, bound);
            let compiled = dml::Compiler::new().compile(&src).unwrap();
            let safe = offset_walk_safe(off, bound);
            assert_eq!(compiled.fully_verified(), safe, "off={off} bound={bound} src:\n{src}");
            // Soundness net regardless of the verdict.
            for len in [0usize, 1, 2, 3, 5, 9] {
                run_validated(&src, &compiled, len, "f");
            }
        }
    }
}

/// Exhaustive over d × off × guard (108 instances).
#[test]
fn div_probe_soundness() {
    for d in 2i64..5 {
        for off in -2i64..4 {
            for guard in 0i64..6 {
                let src = div_probe(d, off, guard);
                let compiled = dml::Compiler::new().compile(&src).unwrap();
                let safe = div_probe_safe(d, off, guard);
                // Precision may be lost on div-heavy goals; soundness may
                // not: a verified program must actually be safe.
                if compiled.fully_verified() {
                    assert!(safe, "verified an unsafe probe: d={d} off={off} guard={guard}\n{src}");
                }
                for len in [0usize, 1, 2, 4, 7, 12, 33] {
                    run_validated(&src, &compiled, len, "g");
                }
            }
        }
    }
}

#[test]
fn division_probe_spot_checks() {
    // n div 2 is always < n for n ≥ 1: verified and safe.
    let src = div_probe(2, 0, 0);
    let c = dml::Compiler::new().compile(&src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(&src));

    // n div 2 + 1 can equal n (n = 1, 2): must NOT verify.
    let src = div_probe(2, 1, 0);
    let c = dml::Compiler::new().compile(&src).unwrap();
    assert!(!c.fully_verified());

    // ...but guarding n > 2 makes it safe again (n/2 + 1 < n for n ≥ 3).
    let src = div_probe(2, 1, 2);
    let c = dml::Compiler::new().compile(&src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(&src));
}

/// Thread-safety expectations per crate (API guideline C-SEND-SYNC): the
/// front-end types are `Send + Sync`; the interpreter is deliberately
/// single-threaded (`Rc`-based values).
#[test]
fn front_end_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<dml_index::Var>();
    assert_send_sync::<dml_index::IExp>();
    assert_send_sync::<dml_index::Prop>();
    assert_send_sync::<dml_index::Constraint>();
    assert_send_sync::<dml_index::Linear>();
    assert_send_sync::<dml_solver::Goal>();
    assert_send_sync::<dml_solver::System>();
    assert_send_sync::<dml_types::Ty>();
    assert_send_sync::<dml_types::MlTy>();
    assert_send_sync::<dml_elab::Obligation>();
    assert_send_sync::<dml_syntax::ast::Program>();
}
