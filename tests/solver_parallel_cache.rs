//! Property test: the solve phase is configuration-independent. For
//! randomized goal sets, every combination of {workers = 1, 4, auto} ×
//! {cache on, off} × {pool cold, pool warm} must produce identical
//! `Verdict`s in identical order, with identical proven/not-proven
//! counts. "Pool cold" is the pass whose first parallel batch spawns the
//! persistent worker pool's helper threads; "pool warm" re-runs the same
//! matrix against the already-parked helpers.
//!
//! The generator stays inside the solver's total fragment (linear atoms
//! plus `div`/`mod` by positive literals and `min`/`max`/`abs`), so no
//! verdict carries a pretty-printed payload — results compare structurally.
//!
//! Inputs come from the deterministic in-repo generator (`dml_repro::qc`),
//! so every run explores the same goal sets.

use dml_index::{Cmp, Constraint, IExp, Prop, Sort, Var, VarGen};
use dml_repro::qc::Rng;
use dml_solver::{pool, prove_all, Outcome, Solver, SolverOptions, Verdict};
use std::sync::Once;

/// The configuration matrix covers the persistent worker pool, but a
/// single-core machine gets a pool with zero helpers (the submitting
/// thread works every batch alone). Forcing helpers into existence makes
/// the parallel configurations run under real thread interleavings
/// everywhere. Must run before anything touches the pool's one-time
/// initializer, so every test in this binary calls it first.
static FORCE_HELPERS: Once = Once::new();

fn force_helpers() {
    FORCE_HELPERS.call_once(|| {
        std::env::set_var("DML_SOLVER_HELPERS", "3");
    });
}

fn random_iexp(rng: &mut Rng, vars: &[Var], depth: usize) -> IExp {
    if depth == 0 || rng.usize_in(0, 2) == 0 {
        return if rng.usize_in(0, 1) == 0 {
            IExp::var(rng.pick(vars).clone())
        } else {
            IExp::lit(rng.i64_in(-8, 8))
        };
    }
    let a = random_iexp(rng, vars, depth - 1);
    let b = random_iexp(rng, vars, depth - 1);
    match rng.usize_in(0, 6) {
        0 => a + b,
        1 => a - b,
        2 => IExp::lit(rng.i64_in(-3, 3)) * a,
        3 => a.div(IExp::lit(rng.i64_in(2, 4))),
        4 => a.modulo(IExp::lit(rng.i64_in(2, 4))),
        5 => a.min(b),
        _ => a.max(b),
    }
}

fn random_prop(rng: &mut Rng, vars: &[Var]) -> Prop {
    let a = random_iexp(rng, vars, 2);
    let b = random_iexp(rng, vars, 2);
    let op = *rng.pick(&[Cmp::Le, Cmp::Lt, Cmp::Ge, Cmp::Gt, Cmp::Eq, Cmp::Ne]);
    Prop::cmp(op, a, b)
}

/// A random `∀x0..xk. hyps ⊃ concl` constraint. Variables are freshly
/// numbered per constraint but consistently named, so alpha-variants of
/// earlier constraints occur naturally and exercise the cache.
fn random_constraint(rng: &mut Rng, gen: &mut VarGen) -> Constraint {
    let nvars = rng.usize_in(1, 3);
    let vars: Vec<Var> = (0..nvars).map(|i| gen.fresh(&format!("x{i}"))).collect();
    let concl = random_prop(rng, &vars);
    let mut body = Constraint::Prop(concl);
    for _ in 0..rng.usize_in(0, 3) {
        body = Constraint::Implies(random_prop(rng, &vars), Box::new(body));
    }
    for v in vars.iter().rev() {
        body = Constraint::Forall(v.clone(), Sort::Int, Box::new(body));
    }
    body
}

type Observation = (Vec<Vec<Verdict>>, Vec<(usize, usize)>);

fn verdict_matrix(outcomes: &[Outcome]) -> Vec<Vec<Verdict>> {
    outcomes.iter().map(|o| o.results.iter().map(|(_, r)| r.clone()).collect()).collect()
}

fn counts(outcomes: &[Outcome]) -> Vec<(usize, usize)> {
    outcomes.iter().map(|o| (o.stats.proven, o.stats.not_proven)).collect()
}

#[test]
fn solve_phase_is_configuration_independent() {
    force_helpers();
    let mut rng = Rng::new(0xCAC4E);
    for round in 0..8 {
        let mut gen = VarGen::new();
        let mut constraints: Vec<Constraint> =
            (0..40).map(|_| random_constraint(&mut rng, &mut gen)).collect();
        // Inject exact duplicates so repeated obligations (guaranteed
        // cache hits) are part of every round.
        for _ in 0..8 {
            let i = rng.usize_in(0, constraints.len() - 1);
            constraints.push(constraints[i].clone());
        }
        let refs: Vec<&Constraint> = constraints.iter().collect();

        // `None` is `workers=auto`; on a single-core runner it resolves to
        // the sequential path, elsewhere to the full pool — either way it
        // must agree with every pinned worker count.
        let configs: [(Option<usize>, bool); 6] = [
            (Some(1), true),
            (Some(1), false),
            (Some(4), true),
            (Some(4), false),
            (None, true),
            (None, false),
        ];
        let mut baseline: Option<Observation> = None;
        // Pass 0 runs against a pool that (on the process's first round)
        // has yet to spawn its helpers; pass 1 repeats the matrix against
        // the warm pool, with helpers parked on the condvar.
        for pass in ["pool cold", "pool warm"] {
            for (workers, cache) in configs {
                let opts = SolverOptions::default().with_workers(workers).with_cache(cache);
                let mut gen = gen.clone();
                let solver = Solver::new(opts);
                let outcomes = prove_all(&solver, &refs, &mut gen);
                assert_eq!(outcomes.len(), refs.len());
                let current = (verdict_matrix(&outcomes), counts(&outcomes));
                match &baseline {
                    None => {
                        // The baseline config must exercise both verdicts
                        // and the cache (duplicates guarantee hits when
                        // enabled).
                        assert!(solver.cache().hits() > 0, "round {round}: no cache reuse");
                        baseline = Some(current);
                    }
                    Some(base) => {
                        assert_eq!(
                            base.0, current.0,
                            "round {round} ({pass}): verdicts differ under {opts:?}"
                        );
                        assert_eq!(
                            base.1, current.1,
                            "round {round} ({pass}): counts differ under {opts:?}"
                        );
                    }
                }
            }
            assert!(pool::is_warm(), "round {round}: a parallel batch initialized the pool");
        }
        let (matrix, _) = baseline.unwrap();
        let flat: Vec<&Verdict> = matrix.iter().flatten().collect();
        assert!(flat.iter().any(|r| r.is_proven()), "round {round}: no proven goal generated");
        assert!(flat.iter().any(|r| !r.is_proven()), "round {round}: no unproven goal generated");
    }
}
