//! Property test: the solve phase is configuration-independent. For
//! randomized goal sets, every combination of {workers = 1, N} ×
//! {cache on, off} must produce identical `Verdict`s in identical
//! order, with identical proven/not-proven counts.
//!
//! The generator stays inside the solver's total fragment (linear atoms
//! plus `div`/`mod` by positive literals and `min`/`max`/`abs`), so no
//! verdict carries a pretty-printed payload — results compare structurally.
//!
//! Inputs come from the deterministic in-repo generator (`dml_repro::qc`),
//! so every run explores the same goal sets.

use dml_index::{Cmp, Constraint, IExp, Prop, Sort, Var, VarGen};
use dml_repro::qc::Rng;
use dml_solver::{prove_all, Outcome, Solver, SolverOptions, Verdict};

fn random_iexp(rng: &mut Rng, vars: &[Var], depth: usize) -> IExp {
    if depth == 0 || rng.usize_in(0, 2) == 0 {
        return if rng.usize_in(0, 1) == 0 {
            IExp::var(rng.pick(vars).clone())
        } else {
            IExp::lit(rng.i64_in(-8, 8))
        };
    }
    let a = random_iexp(rng, vars, depth - 1);
    let b = random_iexp(rng, vars, depth - 1);
    match rng.usize_in(0, 6) {
        0 => a + b,
        1 => a - b,
        2 => IExp::lit(rng.i64_in(-3, 3)) * a,
        3 => a.div(IExp::lit(rng.i64_in(2, 4))),
        4 => a.modulo(IExp::lit(rng.i64_in(2, 4))),
        5 => a.min(b),
        _ => a.max(b),
    }
}

fn random_prop(rng: &mut Rng, vars: &[Var]) -> Prop {
    let a = random_iexp(rng, vars, 2);
    let b = random_iexp(rng, vars, 2);
    let op = *rng.pick(&[Cmp::Le, Cmp::Lt, Cmp::Ge, Cmp::Gt, Cmp::Eq, Cmp::Ne]);
    Prop::cmp(op, a, b)
}

/// A random `∀x0..xk. hyps ⊃ concl` constraint. Variables are freshly
/// numbered per constraint but consistently named, so alpha-variants of
/// earlier constraints occur naturally and exercise the cache.
fn random_constraint(rng: &mut Rng, gen: &mut VarGen) -> Constraint {
    let nvars = rng.usize_in(1, 3);
    let vars: Vec<Var> = (0..nvars).map(|i| gen.fresh(&format!("x{i}"))).collect();
    let concl = random_prop(rng, &vars);
    let mut body = Constraint::Prop(concl);
    for _ in 0..rng.usize_in(0, 3) {
        body = Constraint::Implies(random_prop(rng, &vars), Box::new(body));
    }
    for v in vars.iter().rev() {
        body = Constraint::Forall(v.clone(), Sort::Int, Box::new(body));
    }
    body
}

type Observation = (Vec<Vec<Verdict>>, Vec<(usize, usize)>);

fn verdict_matrix(outcomes: &[Outcome]) -> Vec<Vec<Verdict>> {
    outcomes.iter().map(|o| o.results.iter().map(|(_, r)| r.clone()).collect()).collect()
}

fn counts(outcomes: &[Outcome]) -> Vec<(usize, usize)> {
    outcomes.iter().map(|o| (o.stats.proven, o.stats.not_proven)).collect()
}

#[test]
fn solve_phase_is_configuration_independent() {
    let mut rng = Rng::new(0xCAC4E);
    for round in 0..8 {
        let mut gen = VarGen::new();
        let mut constraints: Vec<Constraint> =
            (0..40).map(|_| random_constraint(&mut rng, &mut gen)).collect();
        // Inject exact duplicates so repeated obligations (guaranteed
        // cache hits) are part of every round.
        for _ in 0..8 {
            let i = rng.usize_in(0, constraints.len() - 1);
            constraints.push(constraints[i].clone());
        }
        let refs: Vec<&Constraint> = constraints.iter().collect();

        let configs = [
            SolverOptions::default().with_workers(Some(1)).with_cache(true),
            SolverOptions::default().with_workers(Some(1)).with_cache(false),
            SolverOptions::default().with_workers(Some(4)).with_cache(true),
            SolverOptions::default().with_workers(Some(4)).with_cache(false),
        ];
        let mut baseline: Option<Observation> = None;
        for opts in configs {
            let mut gen = gen.clone();
            let solver = Solver::new(opts);
            let outcomes = prove_all(&solver, &refs, &mut gen);
            assert_eq!(outcomes.len(), refs.len());
            let current = (verdict_matrix(&outcomes), counts(&outcomes));
            match &baseline {
                None => {
                    // The baseline config must exercise both verdicts and
                    // the cache (duplicates guarantee hits when enabled).
                    assert!(solver.cache().hits() > 0, "round {round}: no cache reuse");
                    baseline = Some(current);
                }
                Some(base) => {
                    assert_eq!(base.0, current.0, "round {round}: verdicts differ under {opts:?}");
                    assert_eq!(base.1, current.1, "round {round}: counts differ under {opts:?}");
                }
            }
        }
        let (matrix, _) = baseline.unwrap();
        let flat: Vec<&Verdict> = matrix.iter().flatten().collect();
        assert!(flat.iter().any(|r| r.is_proven()), "round {round}: no proven goal generated");
        assert!(flat.iter().any(|r| !r.is_proven()), "round {round}: no unproven goal generated");
    }
}
