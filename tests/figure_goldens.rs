//! Golden tests tying the reproduction back to the paper's figures.

use dml::experiments::figure4;
use dml_programs as progs;

/// Figure 4 lists five constraints for `look`, all involving the guard
/// bounds of the quantifiers and the `div 2` midpoint. Our obligation set
/// is generated mechanically, so the exact count differs, but the shape
/// must match: universally quantified implications mentioning `size`,
/// `div`, and the `0 <= ...`/`... <= size` bounds — all valid.
#[test]
fn figure4_shape() {
    let lines = figure4();
    assert!(lines.len() >= 5, "{lines:#?}");
    for line in &lines {
        assert!(line.contains("(valid)"), "all Figure 4 constraints solve: {line}");
    }
    assert!(lines.iter().any(|l| l.contains("forall")), "{lines:#?}");
    assert!(lines.iter().any(|l| l.contains("==>")), "{lines:#?}");
    // After existential elimination the midpoint division appears
    // literally, as in the published figure.
    assert!(lines.iter().any(|l| l.contains("div 2")), "midpoint division: {lines:#?}");
    // The paper's `size` bound appears through the array-length universal
    // (named after the `arr` parameter) in the guards `... <= arr`.
    assert!(lines.iter().any(|l| l.contains("hi + 1 <= arr")), "{lines:#?}");
    assert!(
        lines.iter().any(|l| l.contains("array bound check for `sub`")),
        "the sub access must be among them: {lines:#?}"
    );
}

/// Figure 1 (dotprod): the `where` annotations are small relative to the
/// code, as the paper stresses in §4.
#[test]
fn figure1_annotation_overhead_is_small() {
    let p = progs::dotprod::PROGRAM;
    assert!(p.annotation_lines() * 3 <= p.line_count(), "annotations stay a small fraction");
}

/// §3.1's reverse example: the generated constraint for the first clause
/// has the published form ∀…∃M∃N.(M = 0 ∧ N = n ⊃ M + N = n) — after our
/// defining-equation classification, the `M + N = n` conclusion survives
/// as an obligation whose constraint text carries the hypothesis equations.
#[test]
fn reverse_first_clause_constraint_shape() {
    let c = dml::Compiler::new().compile(progs::reverse::SOURCE).unwrap();
    assert!(c.fully_verified());
    let texts: Vec<String> =
        c.obligations().iter().map(|(o, _)| o.constraint.to_string()).collect();
    // Result-type equation of the nil clause: contains a `+` equation
    // implied by a 0-equation hypothesis.
    assert!(
        texts.iter().any(|t| t.contains("0 =") && t.contains("==>") && t.contains("+")),
        "{texts:#?}"
    );
}

/// Every figure/table artifact of the paper is reachable from the public
/// API (the per-experiment index of DESIGN.md).
#[test]
fn experiment_index_is_complete() {
    // Figures 1-3, 5: programs.
    for p in [
        progs::dotprod::PROGRAM,
        progs::reverse::PROGRAM,
        progs::bsearch::PROGRAM,
        progs::kmp::PROGRAM,
    ] {
        assert!(dml::Compiler::new().compile(p.source).unwrap().fully_verified(), "{}", p.name);
    }
    // Figure 4.
    assert!(!figure4().is_empty());
    // Tables 1-3.
    assert_eq!(dml::experiments::table1().len(), 8);
    // (table2/table3 are exercised by the slower integration tests and the
    // bench harness; compiling their benchmarks is covered above.)
}
