//! Conservativity of `Compiler::infer`: turning inference on may only
//! *add* proofs, never lose or fabricate them.
//!
//! Spans survive annotation patching (candidates are applied to the parsed
//! AST, never to re-parsed source), so check sites are comparable across
//! the baseline and inferred compiles of the same source:
//!
//! * every site the baseline proves stays proven with inference on;
//! * every site the baseline *refutes* (a definitely-unsafe access) stays
//!   residual — an inferred annotation must never talk the solver into
//!   eliminating a falsifiable check;
//! * the set of failing non-check obligations is unchanged — inference
//!   cannot make a well-typed program ill-typed (or vice versa);
//! * the properties hold identically across solver configurations
//!   (workers 1/4 × cache on/off).

use dml::Compiled;
use dml_syntax::Span;
use std::collections::BTreeSet;
use std::fs;

const BARE_EXAMPLES: [&str; 5] = [
    "examples/asum_bare.dml",
    "examples/amax_bare.dml",
    "examples/bsearch_bare.dml",
    "examples/dotprod_bare.dml",
    "examples/bcopy_bare.dml",
];

fn compile(src: &str, infer: bool, workers: usize, cache: bool) -> Compiled {
    dml::Compiler::new().infer(infer).workers(workers).cache(cache).compile(src).expect("compiles")
}

fn residual_sites(c: &Compiled) -> BTreeSet<Span> {
    c.residual_checks().iter().map(|r| r.site).collect()
}

fn refuted_check_sites(c: &Compiled) -> BTreeSet<Span> {
    c.obligations()
        .iter()
        .filter(|(o, v)| o.kind.is_check() && v.is_refuted())
        .map(|(o, _)| o.site)
        .collect()
}

fn non_check_failures(c: &Compiled) -> usize {
    c.failures().filter(|(o, _)| !o.kind.is_check()).count()
}

#[track_caller]
fn assert_conservative(name: &str, src: &str, workers: usize, cache: bool) {
    let base = compile(src, false, workers, cache);
    let inferred = compile(src, true, workers, cache);

    // Proven stays proven.
    for site in base.proven_sites() {
        assert!(
            inferred.proven_sites().contains(site),
            "{name} (workers={workers} cache={cache}): inference lost proof at {site}"
        );
    }
    // Residuals only shrink.
    let br = residual_sites(&base);
    let ir = residual_sites(&inferred);
    assert!(
        ir.is_subset(&br),
        "{name} (workers={workers} cache={cache}): inference added residuals {:?}",
        ir.difference(&br).collect::<Vec<_>>()
    );
    // A refuted (definitely unsafe) check never becomes eliminated.
    for site in refuted_check_sites(&base) {
        assert!(
            !inferred.proven_sites().contains(&site),
            "{name} (workers={workers} cache={cache}): refuted check at {site} was eliminated"
        );
    }
    // Type-correctness is untouched.
    assert_eq!(
        non_check_failures(&base),
        non_check_failures(&inferred),
        "{name} (workers={workers} cache={cache}): non-check failures changed"
    );
}

#[test]
fn bare_corpus_is_conservative_across_configs() {
    for path in BARE_EXAMPLES {
        let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        for workers in [1usize, 4] {
            for cache in [true, false] {
                assert_conservative(path, &src, workers, cache);
            }
        }
    }
}

#[test]
fn stripped_seed_benchmarks_are_conservative() {
    for p in dml_programs::all_programs() {
        let stripped = dml::strip_annotations(p.source).expect("strips");
        assert_conservative(p.name, &stripped, 1, true);
    }
}

/// A program with a *refuted* bound check (a definitely-unsafe constant
/// access) plus an inferable loop: inference still eliminates the loop's
/// check but must leave the refuted one at run time.
#[test]
fn refuted_site_survives_next_to_an_inferable_one() {
    let src = "\
fun first (v) = let
  fun go (i, n, s) = if i = n then s else go (i + 1, n, s + sub(v, i))
  val bad = sub(v, 0 - 1)
in
  go (0, length v, bad)
end
";
    let base = compile(src, false, 1, true);
    let refuted = refuted_check_sites(&base);
    assert_eq!(refuted.len(), 1, "the constant access is refuted: {:?}", base.obligations());
    assert_conservative("refuted-mix", src, 1, true);
    let inferred = compile(src, true, 1, true);
    assert!(residual_sites(&inferred).is_superset(&refuted), "the refuted site stays residual");
    assert!(
        residual_sites(&inferred).len() < residual_sites(&base).len(),
        "the inferable loop check is still eliminated"
    );
}
