//! Cross-crate tests of individual language features: singleton types,
//! existential packages, boolean-indexed refinement, user typerefs,
//! higher-order functions, and polymorphism.

use dml::{Mode, Value};
fn compile(src: &str) -> Result<dml::Compiled, dml::PipelineError> {
    dml::Compiler::new().compile(src)
}

use std::rc::Rc;

fn pair(a: Value, b: Value) -> Value {
    Value::Tuple(Rc::new(vec![a, b]))
}

#[test]
fn singleton_arithmetic_tracks_exact_values() {
    // int(m) * int(n) -> int(m+n): the result type is provable.
    let src = r#"
fun plus3(x) = x + 3
where plus3 <| {n:int} int(n) -> int(n+3)
fun check(x) = plus3(plus3(x))
where check <| {n:int} int(n) -> int(n+6)
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{:?}", c.failures().collect::<Vec<_>>());
}

#[test]
fn wrong_singleton_result_rejected() {
    let src = r#"
fun plus3(x) = x + 3
where plus3 <| {n:int} int(n) -> int(n+4)
"#;
    let c = compile(src).unwrap();
    assert!(!c.fully_verified());
}

#[test]
fn user_typeref_datatype() {
    // A user-defined size-indexed stack.
    let src = r#"
datatype 'a stack = EMPTY | PUSH of 'a * 'a stack
typeref 'a stack of nat with
  EMPTY <| 'a stack(0)
| PUSH <| {n:nat} 'a * 'a stack(n) -> 'a stack(n+1)

fun depth(s) = case s of EMPTY => 0 | PUSH(_, rest) => 1 + depth(rest)
where depth <| {n:nat} 'a stack(n) -> int(n)

fun pop2(s) = case s of PUSH(_, PUSH(_, rest)) => rest
where pop2 <| {n:nat | n >= 2} 'a stack(n) -> 'a stack(n-2)
"#;
    // The match is non-exhaustive syntactically, but the index refinement
    // `n >= 2` guarantees the scrutinee matches at run time — exactly the
    // paper's list-tag-check elimination story.
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Eliminated);
    let s = Value::Con(
        "PUSH".into(),
        Some(Rc::new(pair(
            Value::Int(1),
            Value::Con(
                "PUSH".into(),
                Some(Rc::new(pair(Value::Int(2), Value::Con("EMPTY".into(), None)))),
            ),
        ))),
    );
    let d = m.call("depth", vec![s]).unwrap();
    assert_eq!(d.as_int(), Some(2));
}

#[test]
fn typeref_violating_clause_rejected() {
    // `pop2` claims n-2 but drops only one element.
    let src = r#"
datatype 'a stack = EMPTY | PUSH of 'a * 'a stack
typeref 'a stack of nat with
  EMPTY <| 'a stack(0)
| PUSH <| {n:nat} 'a * 'a stack(n) -> 'a stack(n+1)

fun pop2(s) = case s of PUSH(_, rest) => rest | EMPTY => EMPTY
where pop2 <| {n:nat | n >= 2} 'a stack(n) -> 'a stack(n-2)
"#;
    let c = compile(src).unwrap();
    assert!(!c.fully_verified());
}

#[test]
fn boolean_singleton_flows_through_comparisons() {
    let src = r#"
fun clamp(v, i) =
  if 0 <= i then (if i < length v then sub(v, i) else 0) else 0
where clamp <| int array * int -> int
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Eliminated);
    let v = Value::int_array([10, 20, 30]);
    assert_eq!(m.call("clamp", vec![pair(v.clone(), Value::Int(1))]).unwrap().as_int(), Some(20));
    assert_eq!(m.call("clamp", vec![pair(v.clone(), Value::Int(-5))]).unwrap().as_int(), Some(0));
    assert_eq!(m.call("clamp", vec![pair(v, Value::Int(99))]).unwrap().as_int(), Some(0));
    assert_eq!(m.counters.array_checks_eliminated, 1, "only the in-range probe accessed");
}

#[test]
fn existential_package_round_trip() {
    // A function returning an unknown-length list that is still bounded.
    let src = r#"
fun take2(l) = case l of
    nil => nil
  | x :: xs => (case xs of nil => x :: nil | y :: _ => x :: y :: nil)
where take2 <| {n:nat} 'a list(n) -> [m:nat | m <= 2] 'a list(m)
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
}

#[test]
fn existential_overflow_rejected() {
    // Claims at most 1 element but can return 2.
    let src = r#"
fun take2(l) = case l of
    nil => nil
  | x :: xs => (case xs of nil => x :: nil | y :: _ => x :: y :: nil)
where take2 <| {n:nat} 'a list(n) -> [m:nat | m <= 1] 'a list(m)
"#;
    let c = compile(src).unwrap();
    assert!(!c.fully_verified());
}

#[test]
fn polymorphic_functions_preserve_indices() {
    // `apply` is polymorphic; the array index flows through 'a.
    let src = r#"
fun apply f x = f x
fun first(v) = sub(v, 0)
where first <| {n:nat | n > 0} int array(n) -> int
fun go(v) = apply first v
where go <| {n:nat | n > 0} int array(n) -> int
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Eliminated);
    let r = m.call("go", vec![Value::int_array([7, 8])]).unwrap();
    assert_eq!(r.as_int(), Some(7));
}

#[test]
fn min_max_abs_in_annotations() {
    let src = r#"
fun clampidx(v, i) = sub(v, imin(imax(i, 0), length v - 1))
where clampidx <| {n:nat | n > 0} int array(n) * int -> int
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Eliminated);
    let v = Value::int_array([1, 2, 3]);
    assert_eq!(
        m.call("clampidx", vec![pair(v.clone(), Value::Int(-9))]).unwrap().as_int(),
        Some(1)
    );
    assert_eq!(m.call("clampidx", vec![pair(v, Value::Int(9))]).unwrap().as_int(), Some(3));
}

#[test]
fn mutual_recursion_with_annotations() {
    let src = r#"
fun even(n) = if n = 0 then true else odd(n - 1)
where even <| {k:nat} int(k) -> bool
and odd(n) = if n = 0 then false else even(n - 1)
where odd <| {k:nat} int(k) -> bool
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Checked);
    assert_eq!(m.call("even", vec![Value::Int(42)]).unwrap().as_bool(), Some(true));
}

#[test]
fn list_length_primitive_refines() {
    let src = r#"
fun safe_nth(l, i) =
  if 0 <= i andalso i < llength l then nth(l, i) else 0
where safe_nth <| int list * int -> int
"#;
    let c = compile(src).unwrap();
    assert!(
        c.fully_verified(),
        "{:?}",
        c.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
    );
    let mut m = c.machine(Mode::Eliminated);
    let l = Value::list([Value::Int(5), Value::Int(6)]);
    assert_eq!(m.call("safe_nth", vec![pair(l.clone(), Value::Int(1))]).unwrap().as_int(), Some(6));
    assert_eq!(m.call("safe_nth", vec![pair(l, Value::Int(5))]).unwrap().as_int(), Some(0));
    assert_eq!(m.counters.tag_checks_eliminated, 1);
}

#[test]
fn user_assert_with_check_kind_inheritance() {
    // A user-asserted `subRow` behaves like `sub` for elimination.
    let src = r#"
assert subRow <| {n:nat} {i:nat | i < n} 'a array(n) * int(i) -> 'a
fun f(v) = sub(v, 0)
where f <| {n:nat | n > 0} int array(n) -> int
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified());
}

#[test]
fn shadowing_of_primitives_by_locals() {
    // A local value named `length` shadows the primitive.
    let src = r#"
fun f(v) = let
  val length = 99
in
  length
end
"#;
    let c = compile(src).unwrap();
    let mut m = c.machine(Mode::Checked);
    let r = m.call("f", vec![Value::int_array([1])]).unwrap();
    assert_eq!(r.as_int(), Some(99));
}

#[test]
fn deep_tail_recursion_is_stack_safe() {
    let src = r#"
fun count(i, n, acc) = if i = n then acc else count(i + 1, n, acc + 1)
where count <| {k:nat} {i:nat | i <= k} int(i) * int(k) * int -> int
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified());
    let mut m = c.machine(Mode::Checked);
    let arg = Value::Tuple(Rc::new(vec![Value::Int(0), Value::Int(2_000_000), Value::Int(0)]));
    let r = m.call("count", vec![arg]).unwrap();
    assert_eq!(r.as_int(), Some(2_000_000));
}

#[test]
fn refined_match_exhaustiveness() {
    // pop2's single arm is proven exhaustive by `n >= 2`.
    let src = r#"
datatype 'a stack = EMPTY | PUSH of 'a * 'a stack
typeref 'a stack of nat with
  EMPTY <| 'a stack(0)
| PUSH <| {n:nat} 'a * 'a stack(n) -> 'a stack(n+1)

fun top(s) = case s of PUSH(x, _) => x
where top <| {n:nat | n >= 1} 'a stack(n) -> 'a
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    assert!(
        c.match_warnings().is_empty(),
        "the EMPTY arm is provably impossible: {:?}",
        c.match_warnings()
    );
}

#[test]
fn unrefined_partial_match_warns() {
    let src = r#"
datatype 'a stack = EMPTY | PUSH of 'a * 'a stack

fun top(s) = case s of PUSH(x, _) => x
"#;
    let c = compile(src).unwrap();
    let warnings = c.match_warnings();
    assert_eq!(warnings.len(), 1, "{warnings:?}");
    assert_eq!(warnings[0].1, "EMPTY");
    // Warnings never block verification of the rest of the program.
    assert!(c.fully_verified());
}

#[test]
fn nonempty_list_match_needs_no_nil_arm() {
    let src = r#"
fun head(l) = case l of x :: _ => x
where head <| {n:nat | n > 0} 'a list(n) -> 'a
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    assert!(c.match_warnings().is_empty(), "{:?}", c.match_warnings());
}

#[test]
fn catch_all_suppresses_warnings() {
    let src = r#"
datatype t = A | B | C
fun f(x) = case x of A => 1 | _ => 2
"#;
    let c = compile(src).unwrap();
    assert!(c.match_warnings().is_empty());
}

#[test]
fn covered_match_has_no_warnings() {
    let src = r#"
fun len2(l) = case l of nil => 0 | _ :: _ => 1
where len2 <| {n:nat} 'a list(n) -> int
"#;
    let c = compile(src).unwrap();
    assert!(c.match_warnings().is_empty(), "{:?}", c.match_warnings());
}

#[test]
fn boolean_indexed_datatype() {
    // A datatype indexed by a *boolean*: a door that is provably open.
    let src = r#"
datatype door = OPEN | CLOSED
typeref door of bool with
  OPEN <| door(true)
| CLOSED <| door(false)

fun walk_through(d) = case d of OPEN => 1
where walk_through <| door(true) -> int
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    assert!(
        c.match_warnings().is_empty(),
        "CLOSED is impossible for door(true): {:?}",
        c.match_warnings()
    );
    let mut m = c.machine(Mode::Checked);
    let r = m.call("walk_through", vec![Value::Con("OPEN".into(), None)]).unwrap();
    assert_eq!(r.as_int(), Some(1));
}

#[test]
fn fun_clause_exhaustiveness() {
    // Figure 2's rev covers both list constructors: no warnings.
    let c = compile(dml_programs::reverse::SOURCE).unwrap();
    assert!(c.match_warnings().is_empty(), "{:?}", c.match_warnings());

    // A clause group missing `nil` on an unrefined list warns...
    let src = "fun hd(x :: _) = x";
    let c = compile(src).unwrap();
    let w = c.match_warnings();
    assert_eq!(w.len(), 1, "{w:?}");
    assert_eq!(w[0].1, "nil");

    // ...but not when the refinement rules the empty list out.
    let src = r#"
fun hd(x :: _) = x
where hd <| {n:nat | n > 0} 'a list(n) -> 'a
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    assert!(c.match_warnings().is_empty(), "{:?}", c.match_warnings());
}

#[test]
fn fun_clause_exhaustiveness_through_tuples() {
    // The scrutinee sits inside a tuple parameter, as in rev.
    let src = r#"
fun second((_ :: x :: _, _)) = x
where second <| {n:nat | n >= 2} 'a list(n) * int -> 'a
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    assert!(c.match_warnings().is_empty(), "{:?}", c.match_warnings());
}

#[test]
fn multi_scrutinee_clauses_are_skipped_conservatively() {
    // Two constructor positions: the analysis stays silent rather than
    // reasoning about pattern combinations.
    let src = r#"
fun both(l1, l2) = case l1 of
    nil => 0
  | _ :: _ => (case l2 of nil => 1 | _ :: _ => 2)
"#;
    let c = compile(src).unwrap();
    assert!(c.match_warnings().is_empty());
}

#[test]
fn exceptions_raise_and_handle() {
    let src = r#"
exception Empty

fun safe_head(l) = (case l of x :: _ => x) handle Match => ~1

fun head_or_raise(l) = case l of x :: _ => x | nil => raise Empty

fun guarded(l) = head_or_raise(l) handle Empty => 0
"#;
    let c = compile(src).unwrap();
    let mut m = c.machine(Mode::Checked);
    let l = Value::list([Value::Int(7)]);
    assert_eq!(m.call("safe_head", vec![l.clone()]).unwrap().as_int(), Some(7));
    assert_eq!(m.call("safe_head", vec![Value::list([])]).unwrap().as_int(), Some(-1));
    assert_eq!(m.call("guarded", vec![l]).unwrap().as_int(), Some(7));
    assert_eq!(m.call("guarded", vec![Value::list([])]).unwrap().as_int(), Some(0));
    // Unhandled exceptions surface as errors.
    let err = m.call("head_or_raise", vec![Value::list([])]).unwrap_err();
    assert!(matches!(err, dml_eval::EvalError::Raised(ref n, _) if n == "Empty"));
}

#[test]
fn subscript_exception_catchable_on_checked_access() {
    let src = r#"
fun probe(v, i) = sub(v, i) handle Subscript => ~1
"#;
    let c = compile(src).unwrap();
    // The access is unprovable, so it stays checked and raises Subscript
    // out of range — which the handler catches, in both modes.
    for mode in [Mode::Checked, Mode::Eliminated] {
        let mut m = c.machine(mode);
        let v = Value::int_array([10, 20]);
        let arg = |i: i64| Value::Tuple(std::rc::Rc::new(vec![v.clone(), Value::Int(i)]));
        assert_eq!(m.call("probe", vec![arg(1)]).unwrap().as_int(), Some(20));
        assert_eq!(m.call("probe", vec![arg(5)]).unwrap().as_int(), Some(-1));
    }
}

#[test]
fn div_exception_catchable() {
    let src = "fun quot(a, b) = (a div b) handle Div => 0";
    let c = compile(src).unwrap();
    let mut m = c.machine(Mode::Checked);
    let arg = |a: i64, b: i64| Value::Tuple(std::rc::Rc::new(vec![Value::Int(a), Value::Int(b)]));
    assert_eq!(m.call("quot", vec![arg(7, 2)]).unwrap().as_int(), Some(3));
    assert_eq!(m.call("quot", vec![arg(7, 0)]).unwrap().as_int(), Some(0));
}

#[test]
fn unknown_exception_rejected_in_phase1() {
    assert!(matches!(
        dml::Compiler::new().compile("fun f(x) = raise Nope"),
        Err(dml::PipelineError::Infer(_, _))
    ));
    assert!(matches!(
        dml::Compiler::new().compile("fun f(x) = x handle Nope => 0"),
        Err(dml::PipelineError::Infer(_, _))
    ));
}

#[test]
fn raise_checks_against_any_dependent_type() {
    // `raise` inhabits the singleton result type without constraints.
    let src = r#"
exception TooShort
fun first(v) = if length v > 0 then sub(v, 0) else raise TooShort
where first <| {n:nat} int array(n) -> int
"#;
    let c = compile(src).unwrap();
    assert!(c.fully_verified(), "{}", c.explain_failures(src));
    let mut m = c.machine(Mode::Eliminated);
    assert_eq!(m.call("first", vec![Value::int_array([5])]).unwrap().as_int(), Some(5));
    let err = m.call("first", vec![Value::int_array([])]).unwrap_err();
    assert!(matches!(err, dml_eval::EvalError::Raised(ref n, _) if n == "TooShort"));
}
