//! Metamorphic invariances the canonical verdict cache relies on,
//! asserted directly (independently of the fuzz harness):
//!
//! * α-renaming every context variable must preserve the *full* verdict —
//!   the canonical renamer assigns dense ids in first-occurrence order,
//!   so α-variants share one cache key;
//! * permuting or duplicating hypotheses must preserve the *Proven*
//!   status — a proof may never depend on hypothesis order, though the
//!   refuted/unknown split legitimately may (the witness search only
//!   certifies the first satisfiable DNF disjunct, whose identity
//!   follows hypothesis order);
//! * a warm shared cache must give the same answers as a cold solver on
//!   every transformed goal (a canonicalization bug would surface as a
//!   stale cache hit).

use dml_index::{IExp, VarGen, Verdict};
use dml_oracle::{gen_goal, GenConfig, OracleRng};
use dml_solver::{Goal, Solver, SolverOptions, SolverStats};

fn decide(solver: &Solver, goal: &Goal, gen: &mut VarGen) -> Verdict {
    let mut stats = SolverStats::default();
    solver.decide(goal, gen, &mut stats)
}

fn alpha_rename(goal: &Goal, gen: &mut VarGen) -> Goal {
    let mut renamed = goal.clone();
    for i in 0..renamed.ctx.len() {
        let (old, sort) = renamed.ctx[i].clone();
        let fresh = gen.fresh(&format!("{}r", old.name()));
        let replacement = IExp::var(fresh.clone());
        renamed.ctx[i] = (fresh, sort);
        renamed.hyps = renamed.hyps.iter().map(|h| h.subst(&old, &replacement)).collect();
        renamed.concl = renamed.concl.subst(&old, &replacement);
    }
    renamed
}

#[test]
fn verdicts_survive_hypothesis_permutation_duplication_and_renaming() {
    let cfg = GenConfig::default();
    let mut rng = OracleRng::new(23);
    let mut gen = VarGen::new();
    let warm = Solver::new(SolverOptions::default().with_workers(Some(1)));
    for i in 0..200 {
        let goal = gen_goal(&mut rng, &mut gen, &cfg);
        let base = decide(&warm, &goal, &mut gen);

        let mut variants: Vec<(&str, Goal)> = Vec::new();
        let mut reversed = goal.clone();
        reversed.hyps.reverse();
        variants.push(("reversed hyps", reversed));
        if goal.hyps.len() > 1 {
            let mut rotated = goal.clone();
            rotated.hyps.rotate_left(1);
            variants.push(("rotated hyps", rotated));
        }
        if let Some(h) = goal.hyps.first().cloned() {
            let mut duped = goal.clone();
            duped.hyps.push(h);
            variants.push(("duplicated hyp", duped));
        }
        variants.push(("alpha-renamed", alpha_rename(&goal, &mut gen)));

        for (name, variant) in variants {
            let warm_v = decide(&warm, &variant, &mut gen);
            let cold = Solver::new(SolverOptions::default().with_workers(Some(1)));
            let cold_v = decide(&cold, &variant, &mut gen);
            if name == "alpha-renamed" {
                assert_eq!(
                    warm_v, base,
                    "iteration {i}: {name} flipped the verdict on a warm cache\n{goal}\n-- became --\n{variant}"
                );
                assert_eq!(
                    cold_v, base,
                    "iteration {i}: {name} flipped the verdict on a cold solver\n{goal}\n-- became --\n{variant}"
                );
            } else {
                assert_eq!(
                    warm_v.is_proven(),
                    base.is_proven(),
                    "iteration {i}: {name} flipped the proven status on a warm cache \
                     (base {base}, variant {warm_v})\n{goal}\n-- became --\n{variant}"
                );
                assert_eq!(
                    cold_v.is_proven(),
                    base.is_proven(),
                    "iteration {i}: {name} flipped the proven status on a cold solver \
                     (base {base}, variant {cold_v})\n{goal}\n-- became --\n{variant}"
                );
                // Warm and cold must still agree with each other: the
                // variant is one fixed goal, and caching must be invisible.
                assert_eq!(warm_v, cold_v, "iteration {i}: {name} warm/cold disagreement");
            }
        }
    }
}

#[test]
fn renaming_hits_the_cache() {
    // α-equivalent goals should share one cache entry: the canonical
    // renamer assigns dense ids in first-occurrence order, so the fresh
    // ids of the renamed copy must canonicalize away.
    let cfg = GenConfig::default();
    let mut rng = OracleRng::new(31);
    let mut gen = VarGen::new();
    let solver = Solver::new(SolverOptions::default().with_workers(Some(1)));
    let goal = gen_goal(&mut rng, &mut gen, &cfg);
    let mut s1 = SolverStats::default();
    solver.decide(&goal, &mut gen, &mut s1);
    let renamed = alpha_rename(&goal, &mut gen);
    let mut s2 = SolverStats::default();
    solver.decide(&renamed, &mut gen, &mut s2);
    assert_eq!(s2.cache_hits, s1.cache_hits + 1, "renamed goal missed the cache:\n{renamed}");
}
