//! Property tests for the constraint solver: Fourier–Motzkin refutation
//! (with tightening) must agree with brute-force integer search on small
//! random systems, and tightening must preserve integer solutions exactly.

use dml_index::{Linear, Var, VarGen};
use dml_solver::exhaustive;
use dml_solver::system::{FourierOptions, Ineq, RefuteResult, System};
use proptest::prelude::*;

/// A small random system over `nvars` variables with coefficients and
/// constants in [-4, 4].
fn arb_system(nvars: usize, max_ineqs: usize) -> impl Strategy<Value = System> {
    let ineq = proptest::collection::vec(-4i64..=4, nvars + 1);
    proptest::collection::vec(ineq, 1..=max_ineqs).prop_map(move |rows| {
        let mut gen = VarGen::new();
        let vars: Vec<Var> = (0..nvars).map(|i| gen.fresh(&format!("x{i}"))).collect();
        let mut sys = System::new();
        for row in rows {
            let mut lin = Linear::constant(row[nvars]);
            for (v, c) in vars.iter().zip(&row) {
                lin.add_term(v.clone(), *c);
            }
            sys.push(Ineq::le_zero(lin));
        }
        sys
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: if FM (with tightening) refutes a system, brute force
    /// must find no solution in a box large enough to contain one if any
    /// exists for these coefficient ranges.
    #[test]
    fn refutation_implies_no_small_solution(sys in arb_system(3, 5)) {
        let (result, _) = sys.refute(&FourierOptions::default());
        if result == RefuteResult::Refuted {
            prop_assert!(
                exhaustive::find_solution(&sys, 8).is_none(),
                "FM refuted a satisfiable system: {sys}"
            );
        }
    }

    /// If brute force finds a solution, FM must never refute.
    #[test]
    fn satisfiable_systems_never_refuted(sys in arb_system(3, 5)) {
        if let Some(solution) = exhaustive::find_solution(&sys, 4) {
            let (result, _) = sys.refute(&FourierOptions::default());
            prop_assert_ne!(
                result,
                RefuteResult::Refuted,
                "system {} has solution {:?}",
                sys,
                solution
            );
        }
    }

    /// Tightening preserves integer solutions pointwise.
    #[test]
    fn tightening_preserves_integer_points(
        coeffs in proptest::collection::vec(-6i64..=6, 3),
        konst in -12i64..=12,
        point in proptest::collection::vec(-6i64..=6, 3),
    ) {
        let mut gen = VarGen::new();
        let vars: Vec<Var> = (0..3).map(|i| gen.fresh(&format!("v{i}"))).collect();
        let mut lin = Linear::constant(konst);
        for (v, c) in vars.iter().zip(&coeffs) {
            lin.add_term(v.clone(), *c);
        }
        let ineq = Ineq::le_zero(lin);
        let tightened = ineq.tighten();
        let assignment: std::collections::HashMap<Var, i64> =
            vars.iter().cloned().zip(point.iter().copied()).collect();
        let env = |v: &Var| assignment.get(v).copied();
        prop_assert_eq!(
            ineq.holds(&env),
            tightened.holds(&env),
            "tightening changed membership of an integer point: {} vs {}",
            ineq,
            tightened
        );
    }

    /// Tightening never *weakens*: anything violating the original also
    /// violates the tightened form (it only cuts away non-integer space).
    #[test]
    fn tightening_is_monotone(sys in arb_system(2, 4)) {
        let with = sys.refute(&FourierOptions::default()).0;
        let without = sys.refute(&FourierOptions { tighten: false, ..Default::default() }).0;
        // If plain FM refutes (rational infeasibility), tightened FM must
        // refute too.
        if without == RefuteResult::Refuted {
            prop_assert_eq!(with, RefuteResult::Refuted);
        }
    }
}

#[test]
fn strict_vs_nonstrict_encoding() {
    // x < 1 ∧ x > -1 has exactly one integer solution (0); adding x ≠ 0
    // (two systems after Ne expansion) refutes both.
    let mut gen = VarGen::new();
    let x = gen.fresh("x");
    let mut base = System::new();
    base.push(Ineq::lt(Linear::var(x.clone()), Linear::constant(1)));
    base.push(Ineq::lt(Linear::constant(-1), Linear::var(x.clone())));
    assert_eq!(base.refute(&FourierOptions::default()).0, RefuteResult::PossiblySat);

    let mut lt = base.clone();
    lt.push(Ineq::lt(Linear::var(x.clone()), Linear::constant(0)));
    assert_eq!(lt.refute(&FourierOptions::default()).0, RefuteResult::Refuted);

    let mut gt = base.clone();
    gt.push(Ineq::lt(Linear::constant(0), Linear::var(x)));
    assert_eq!(gt.refute(&FourierOptions::default()).0, RefuteResult::Refuted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full-pipeline property: a guarded random access always verifies, and
    /// the proof is honest — running with validation never traps.
    #[test]
    fn guarded_random_access_verifies_and_runs(len in 1usize..20, divisor in 1i64..6) {
        let src = format!(
            "fun pick(v, i) = let val j = i mod {divisor} in \
               if 0 <= j andalso j < length v then sub(v, j) else 0 end\n\
             where pick <| int array * int -> int"
        );
        let compiled = dml::compile(&src).unwrap();
        prop_assert!(compiled.fully_verified(), "{:?}",
            compiled.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>());
        let mut m = compiled.machine_with(
            dml::CheckConfig::eliminated(Default::default()).with_validation(),
        );
        let v = dml::Value::int_array((0..len as i64).map(|x| x * 3));
        for i in -3i64..6 {
            let arg = dml::Value::Tuple(std::rc::Rc::new(vec![v.clone(), dml::Value::Int(i)]));
            let r = m.call("pick", vec![arg]).unwrap();
            prop_assert!(r.as_int().is_some());
        }
    }
}
