//! Property tests for the constraint solver: Fourier–Motzkin refutation
//! (with tightening) must agree with brute-force integer search on small
//! random systems, and tightening must preserve integer solutions exactly.
//!
//! Inputs come from the deterministic in-repo generator (`dml_repro::qc`),
//! so every run explores the same systems.

use dml_index::{Linear, Var, VarGen};
use dml_repro::qc::Rng;
use dml_solver::exhaustive;
use dml_solver::system::{FourierOptions, Ineq, RefuteResult, System};

/// A small random system over `nvars` variables with coefficients and
/// constants in [-4, 4].
fn random_system(rng: &mut Rng, nvars: usize, max_ineqs: usize) -> System {
    let mut gen = VarGen::new();
    let vars: Vec<Var> = (0..nvars).map(|i| gen.fresh(&format!("x{i}"))).collect();
    let mut sys = System::new();
    for _ in 0..rng.usize_in(1, max_ineqs) {
        let mut lin = Linear::constant(rng.i64_in(-4, 4));
        for v in &vars {
            lin.add_term(v.clone(), rng.i64_in(-4, 4));
        }
        sys.push(Ineq::le_zero(lin));
    }
    sys
}

/// Soundness: if FM (with tightening) refutes a system, brute force must
/// find no solution in a box large enough to contain one if any exists for
/// these coefficient ranges.
#[test]
fn refutation_implies_no_small_solution() {
    let mut rng = Rng::new(0xF00D);
    for _ in 0..256 {
        let sys = random_system(&mut rng, 3, 5);
        let (result, _) = sys.refute(&FourierOptions::default());
        if result == RefuteResult::Refuted {
            assert!(
                exhaustive::find_solution(&sys, 8).is_none(),
                "FM refuted a satisfiable system: {sys}"
            );
        }
    }
}

/// If brute force finds a solution, FM must never refute.
#[test]
fn satisfiable_systems_never_refuted() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..256 {
        let sys = random_system(&mut rng, 3, 5);
        if let Some(solution) = exhaustive::find_solution(&sys, 4) {
            let (result, _) = sys.refute(&FourierOptions::default());
            assert_ne!(result, RefuteResult::Refuted, "system {sys} has solution {solution:?}");
        }
    }
}

/// Tightening preserves integer solutions pointwise.
#[test]
fn tightening_preserves_integer_points() {
    let mut rng = Rng::new(0xCAFE);
    for _ in 0..256 {
        let mut gen = VarGen::new();
        let vars: Vec<Var> = (0..3).map(|i| gen.fresh(&format!("v{i}"))).collect();
        let mut lin = Linear::constant(rng.i64_in(-12, 12));
        for v in &vars {
            lin.add_term(v.clone(), rng.i64_in(-6, 6));
        }
        let ineq = Ineq::le_zero(lin);
        let tightened = ineq.tighten();
        let point: Vec<i64> = (0..3).map(|_| rng.i64_in(-6, 6)).collect();
        let assignment: std::collections::HashMap<Var, i64> =
            vars.iter().cloned().zip(point.iter().copied()).collect();
        let env = |v: &Var| assignment.get(v).copied();
        assert_eq!(
            ineq.holds(&env),
            tightened.holds(&env),
            "tightening changed membership of an integer point: {ineq} vs {tightened}"
        );
    }
}

/// Tightening never *weakens*: anything plain FM refutes (rational
/// infeasibility), tightened FM must refute too (it only cuts away
/// non-integer space).
#[test]
fn tightening_is_monotone() {
    let mut rng = Rng::new(0xACE5);
    for _ in 0..256 {
        let sys = random_system(&mut rng, 2, 4);
        let with = sys.refute(&FourierOptions::default()).0;
        let without = sys.refute(&FourierOptions { tighten: false, ..Default::default() }).0;
        if without == RefuteResult::Refuted {
            assert_eq!(with, RefuteResult::Refuted, "system: {sys}");
        }
    }
}

#[test]
fn strict_vs_nonstrict_encoding() {
    // x < 1 ∧ x > -1 has exactly one integer solution (0); adding x ≠ 0
    // (two systems after Ne expansion) refutes both.
    let mut gen = VarGen::new();
    let x = gen.fresh("x");
    let mut base = System::new();
    base.push(Ineq::lt(Linear::var(x.clone()), Linear::constant(1)));
    base.push(Ineq::lt(Linear::constant(-1), Linear::var(x.clone())));
    assert_eq!(base.refute(&FourierOptions::default()).0, RefuteResult::PossiblySat);

    let mut lt = base.clone();
    lt.push(Ineq::lt(Linear::var(x.clone()), Linear::constant(0)));
    assert_eq!(lt.refute(&FourierOptions::default()).0, RefuteResult::Refuted);

    let mut gt = base.clone();
    gt.push(Ineq::lt(Linear::constant(0), Linear::var(x)));
    assert_eq!(gt.refute(&FourierOptions::default()).0, RefuteResult::Refuted);
}

/// Full-pipeline property: a guarded random access always verifies, and the
/// proof is honest — running with validation never traps. Exhaustive over
/// the divisor (the only parameter the source depends on); the array length
/// only affects the run.
#[test]
fn guarded_random_access_verifies_and_runs() {
    for divisor in 1i64..6 {
        let src = format!(
            "fun pick(v, i) = let val j = i mod {divisor} in \
               if 0 <= j andalso j < length v then sub(v, j) else 0 end\n\
             where pick <| int array * int -> int"
        );
        let compiled = dml::Compiler::new().compile(&src).unwrap();
        assert!(
            compiled.fully_verified(),
            "{:?}",
            compiled.failures().map(|(o, r)| format!("{o} {r:?}")).collect::<Vec<_>>()
        );
        for len in [1usize, 2, 5, 19] {
            let mut m = compiled
                .machine_with(dml::CheckConfig::eliminated(Default::default()).with_validation());
            let v = dml::Value::int_array((0..len as i64).map(|x| x * 3));
            for i in -3i64..6 {
                let arg = dml::Value::Tuple(std::rc::Rc::new(vec![v.clone(), dml::Value::Int(i)]));
                let r = m.call("pick", vec![arg]).unwrap();
                assert!(r.as_int().is_some());
            }
        }
    }
}
